//! The continuous-query runtime.
//!
//! A [`ContinuousQuery`] wraps one bound plan containing a single
//! `StreamScan`. Tuples (or, for `<SLICES>` windows, upstream result
//! batches) are pushed in; whenever a window closes, the relational plan
//! runs over the window relation with the window's close timestamp as
//! `cq_close(*)` and — if the plan reads tables — a fresh MVCC snapshot
//! pinned at the boundary (window consistency, §4). Each closed window
//! yields a [`CqOutput`]; the concatenation of outputs is the CQ's result
//! stream (§3.1: "a query that produces a stream never ends").

use std::sync::Arc;

use parking_lot::Mutex;

use streamrel_exec::{execute, ExecContext, RelationSource};
use streamrel_ivm::{lower, IvmState, JoinDelta, Lowering, WindowOutput, IVM_INPUT};
use streamrel_obs::{Counter, Gauge, IvmMetrics};
use streamrel_sql::analyzer::AnalyzedQuery;
use streamrel_sql::plan::{LogicalPlan, WindowSpec};
use streamrel_storage::{Snapshot, StorageEngine};
use streamrel_types::{Error, Relation, Result, Row, Timestamp};

use crate::consistency::{ConsistencyMode, SnapshotSource};
use crate::shared::{extract_shape, MemberId, SharedGroup, SharedRegistry, SHARED_INPUT};
use crate::window::{ClosedWindow, WindowBuffer};

/// One window's result.
#[derive(Debug, Clone)]
pub struct CqOutput {
    /// The window close timestamp (`cq_close(*)`).
    pub close: Timestamp,
    /// The result relation for this window.
    pub relation: Relation,
}

/// One closed window, staged for evaluation off the shard lock.
///
/// Staging captures everything plan execution needs — the plan, the
/// window relation, the close boundary, and (for `QueryStart`
/// consistency) the pinned snapshot — so [`WindowTask::run`] is a pure
/// function of the task: it touches no CQ state and can execute on any
/// thread of a [`crate::WorkerPool`]. The staging thread calls
/// [`ContinuousQuery::finish_window`] with the result, in serial order,
/// to apply stats and emit the `cq.close` trace event deterministically.
pub struct WindowTask {
    plan: LogicalPlan,
    /// Stream name bound to the window relation (`SHARED_INPUT` for the
    /// post-aggregation plan of a shared CQ).
    input: String,
    rel: Relation,
    close: Timestamp,
    engine: Arc<StorageEngine>,
    consistency: ConsistencyMode,
    /// Snapshot pinned at CQ start (`QueryStart` mode only);
    /// `WindowBoundary` pins fresh at run time.
    snapshot: Option<Snapshot>,
    /// IVM stream-table join delta: match counts must resolve against the
    /// same snapshot the post-plan reads, so finalize happens here, not at
    /// staging time.
    delta: Option<Box<JoinDelta>>,
}

impl WindowTask {
    /// The window close timestamp.
    pub fn close(&self) -> Timestamp {
        self.close
    }

    /// Rows in the staged window relation (for trace accounting). For an
    /// IVM join task this is the staged delta entry count.
    pub fn input_rows(&self) -> usize {
        match &self.delta {
            Some(d) => d.len(),
            None => self.rel.len(),
        }
    }

    /// Evaluate the staged window. Side-effect free: reads only the
    /// captured relation and an MVCC snapshot.
    pub fn run(&self) -> Result<CqOutput> {
        let source: SnapshotSource = match self.consistency {
            // Window consistency: a fresh snapshot at this boundary.
            ConsistencyMode::WindowBoundary => SnapshotSource::pin(self.engine.clone()),
            ConsistencyMode::QueryStart => SnapshotSource::with_snapshot(
                self.engine.clone(),
                self.snapshot.clone().expect("pinned at start"),
            ),
        };
        let finalized;
        let input_rel = match &self.delta {
            Some(d) => {
                finalized = d.finalize(&source as &dyn RelationSource)?;
                &finalized
            }
            None => &self.rel,
        };
        let ctx = ExecContext::window(
            &source as &dyn RelationSource,
            &self.input,
            input_rel,
            self.close,
        );
        let relation = execute(&self.plan, &ctx)?;
        Ok(CqOutput {
            close: self.close,
            relation,
        })
    }
}

// Tasks must cross threads into the worker pool.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<WindowTask>();
};

/// Runtime counters for one CQ.
#[derive(Debug, Clone, Copy, Default)]
pub struct CqStats {
    /// Tuples pushed in.
    pub tuples_in: u64,
    /// Windows emitted.
    pub windows_out: u64,
    /// Total result rows emitted.
    pub rows_out: u64,
}

/// How the CQ computes window results.
pub enum ExecMode {
    /// Buffer raw tuples per window; run the whole plan at each close.
    Unshared { buffer: WindowBuffer },
    /// Aggregate into shared slices; at close, compose the aggregate
    /// output from slices and run only the post-aggregation plan.
    Shared {
        group: Arc<Mutex<SharedGroup>>,
        member: MemberId,
        post_plan: LogicalPlan,
        visible: i64,
        advance: i64,
        next_close: Option<Timestamp>,
        max_ts: Timestamp,
    },
    /// Maintain incremental operator state per tuple (delta processing);
    /// at close, compose the anchor output from slices and run only the
    /// post-anchor plan. Unlike `Shared`, the state is private to this CQ
    /// and the CQ folds tuples itself in `stage_tuple`.
    Ivm {
        /// Boxed: slice maps dwarf every other variant's footprint.
        state: Box<IvmState>,
        post_plan: LogicalPlan,
        visible: i64,
        advance: i64,
        next_close: Option<Timestamp>,
        max_ts: Timestamp,
        /// `ivm.delta.rows` counter (cached: no registry lookup per tuple).
        delta_rows: Arc<Counter>,
        /// `ivm.state.bytes` gauge, refreshed at close boundaries.
        state_bytes: Arc<Gauge>,
        /// Rows already reported to `delta_rows`.
        reported: u64,
    },
}

/// A running continuous query.
pub struct ContinuousQuery {
    name: String,
    plan: LogicalPlan,
    stream: String,
    window: WindowSpec,
    cqtime: Option<usize>,
    engine: Arc<StorageEngine>,
    consistency: ConsistencyMode,
    /// Snapshot pinned at CQ start (QueryStart consistency mode only).
    start_snapshot: Option<Snapshot>,
    mode: ExecMode,
    stats: CqStats,
}

impl ContinuousQuery {
    /// Build a CQ from an analyzed continuous query. The plan must contain
    /// exactly one `StreamScan` (enforced by the analyzer).
    pub fn new(
        name: impl Into<String>,
        analyzed: &AnalyzedQuery,
        engine: Arc<StorageEngine>,
        consistency: ConsistencyMode,
    ) -> Result<ContinuousQuery> {
        if !analyzed.is_continuous {
            return Err(Error::stream(
                "snapshot query given to the CQ runtime; execute it directly",
            ));
        }
        let mut scan = None;
        analyzed.plan.visit(&mut |p| {
            if let LogicalPlan::StreamScan {
                stream,
                window,
                cqtime,
                derived,
                ..
            } = p
            {
                scan = Some((stream.clone(), *window, *cqtime, *derived));
            }
        });
        let (stream, window, cqtime, derived) =
            scan.ok_or_else(|| Error::stream("continuous plan has no stream scan"))?;
        let buffer = WindowBuffer::new(window, cqtime, derived)?;
        let start_snapshot = match consistency {
            ConsistencyMode::QueryStart => Some(engine.snapshot()),
            ConsistencyMode::WindowBoundary => None,
        };
        Ok(ContinuousQuery {
            name: name.into(),
            plan: analyzed.plan.clone(),
            stream,
            window,
            cqtime,
            engine,
            consistency,
            start_snapshot,
            mode: ExecMode::Unshared { buffer },
            stats: CqStats::default(),
        })
    }

    /// The CQ's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source stream name.
    pub fn stream(&self) -> &str {
        &self.stream
    }

    /// The window spec.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// Output schema of each window result.
    pub fn output_schema(&self) -> streamrel_sql::plan::SchemaRef {
        self.plan.schema()
    }

    /// Runtime counters.
    pub fn stats(&self) -> CqStats {
        self.stats
    }

    /// True if this CQ runs in shared-slice mode.
    pub fn is_shared(&self) -> bool {
        matches!(self.mode, ExecMode::Shared { .. })
    }

    /// True if this CQ maintains incremental (IVM) state.
    pub fn is_ivm(&self) -> bool {
        matches!(self.mode, ExecMode::Ivm { .. })
    }

    /// Approximate bytes of live IVM state (0 in other modes).
    pub fn ivm_state_bytes(&self) -> usize {
        match &self.mode {
            ExecMode::Ivm { state, .. } => state.state_bytes(),
            _ => 0,
        }
    }

    /// Attempt to lower this CQ to incremental view maintenance. Returns
    /// true on success. Must be called before any tuple flows, and after
    /// [`ContinuousQuery::try_share`] — a shared CQ already processes
    /// tuples once per *group*, which dominates per-CQ IVM state.
    /// Bumps `ivm.lowered` / `ivm.fallback` and records the decision (and
    /// any fallback reason) on the trace ring.
    pub fn try_lower_ivm(&mut self) -> bool {
        if self.stats.tuples_in > 0 || self.is_shared() || self.is_ivm() {
            return false;
        }
        let WindowSpec::Time { visible, advance } = self.window else {
            return false;
        };
        let metrics = IvmMetrics::register(self.engine.metrics());
        match lower(&self.plan) {
            Lowering::Lowered(p) => {
                metrics.lowered.inc();
                self.engine.metrics().trace().record(
                    "cq.ivm",
                    &self.name,
                    format!("visible={visible} advance={advance}"),
                    0,
                );
                self.mode = ExecMode::Ivm {
                    state: Box::new(IvmState::new(&p)),
                    post_plan: p.post_plan,
                    visible: p.visible,
                    advance: p.advance,
                    next_close: None,
                    max_ts: i64::MIN,
                    delta_rows: metrics.delta_rows,
                    state_bytes: metrics.state_bytes,
                    reported: 0,
                };
                true
            }
            Lowering::Fallback(reason) => {
                metrics.fallback.inc();
                self.engine.metrics().trace().record(
                    "cq.ivm.fallback",
                    &self.name,
                    reason.to_string(),
                    0,
                );
                false
            }
        }
    }

    /// Attempt to convert this CQ to shared-slice execution through the
    /// registry. Returns true on success. Must be called before any tuple
    /// flows (re-slicing live groups is refused).
    pub fn try_share(&mut self, registry: &mut SharedRegistry) -> bool {
        if self.stats.tuples_in > 0 {
            return false;
        }
        let WindowSpec::Time { visible, advance } = self.window else {
            return false;
        };
        let Some((shape, post_plan)) = extract_shape(&self.plan) else {
            return false;
        };
        let group = registry.group_for(shape);
        let member = match group.lock().register(visible, advance) {
            Ok(m) => m,
            Err(_) => return false,
        };
        self.mode = ExecMode::Shared {
            group,
            member,
            post_plan,
            visible,
            advance,
            next_close: None,
            max_ts: i64::MIN,
        };
        self.engine.metrics().trace().record(
            "cq.share",
            &self.name,
            format!("visible={visible} advance={advance}"),
            0,
        );
        true
    }

    /// In shared mode, the group the CQ belongs to (the orchestrator feeds
    /// tuples to each distinct group once).
    pub fn shared_group(&self) -> Option<Arc<Mutex<SharedGroup>>> {
        match &self.mode {
            ExecMode::Shared { group, .. } => Some(group.clone()),
            _ => None,
        }
    }

    /// Push one tuple.
    ///
    /// Unshared mode: the tuple is buffered and any windows it closes are
    /// executed. Shared mode: the tuple is assumed already folded into the
    /// group by the orchestrator (once per group!); this call only advances
    /// this member's window boundaries.
    pub fn on_tuple(&mut self, row: Row) -> Result<Vec<CqOutput>> {
        let tasks = self.stage_tuple(row)?;
        self.run_staged(tasks)
    }

    /// Stage the windows one tuple closes, without evaluating them.
    pub fn stage_tuple(&mut self, row: Row) -> Result<Vec<WindowTask>> {
        self.stats.tuples_in += 1;
        match &mut self.mode {
            ExecMode::Unshared { buffer } => {
                let closes = buffer.push(row)?;
                self.stage_closed(closes)
            }
            ExecMode::Shared { .. } => {
                let ts = match self.cqtime {
                    Some(i) => row
                        .get(i)
                        .ok_or_else(|| Error::stream("row too short for CQTIME"))?
                        .as_timestamp()?,
                    None => return Err(Error::stream("shared CQ requires CQTIME")),
                };
                self.stage_shared(ts)
            }
            ExecMode::Ivm { .. } => {
                let ts = match self.cqtime {
                    Some(i) => row
                        .get(i)
                        .ok_or_else(|| Error::stream("row too short for CQTIME"))?
                        .as_timestamp()?,
                    None => return Err(Error::stream("incremental CQ requires CQTIME")),
                };
                self.stage_ivm(Some(row), ts)
            }
        }
    }

    /// Shared-mode fast path: the orchestrator already folded the tuple
    /// into the group; this member only needs the timestamp to advance its
    /// window boundaries. Avoids cloning the row once per member CQ.
    pub fn note_shared_tuple(&mut self, ts: Timestamp) -> Result<Vec<CqOutput>> {
        let tasks = self.stage_note_shared(ts)?;
        self.run_staged(tasks)
    }

    /// Staging form of [`ContinuousQuery::note_shared_tuple`].
    pub fn stage_note_shared(&mut self, ts: Timestamp) -> Result<Vec<WindowTask>> {
        debug_assert!(self.is_shared());
        self.stats.tuples_in += 1;
        self.stage_shared(ts)
    }

    /// Advance event time without a tuple (heartbeat / punctuation).
    pub fn on_heartbeat(&mut self, ts: Timestamp) -> Result<Vec<CqOutput>> {
        let tasks = self.stage_heartbeat(ts)?;
        self.run_staged(tasks)
    }

    /// Stage the windows a heartbeat closes, without evaluating them.
    pub fn stage_heartbeat(&mut self, ts: Timestamp) -> Result<Vec<WindowTask>> {
        match &mut self.mode {
            ExecMode::Unshared { buffer } => {
                let closes = buffer.advance_to(ts);
                self.stage_closed(closes)
            }
            ExecMode::Shared { .. } => self.stage_shared(ts),
            ExecMode::Ivm { .. } => self.stage_ivm(None, ts),
        }
    }

    /// Push an upstream result batch (CQ over a derived stream).
    pub fn on_batch(&mut self, close: Timestamp, rows: Vec<Row>) -> Result<Vec<CqOutput>> {
        let tasks = self.stage_batch(close, rows)?;
        self.run_staged(tasks)
    }

    /// Stage the windows an upstream result batch closes.
    pub fn stage_batch(&mut self, close: Timestamp, rows: Vec<Row>) -> Result<Vec<WindowTask>> {
        self.stats.tuples_in += rows.len() as u64;
        match &mut self.mode {
            ExecMode::Unshared { buffer } => {
                let closes = buffer.push_batch(close, rows);
                self.stage_closed(closes)
            }
            ExecMode::Shared { .. } => Err(Error::stream(
                "shared mode does not consume derived batches",
            )),
            // Unreachable in practice: the lowering pass refuses derived
            // streams, so a batch-fed CQ never enters IVM mode.
            ExecMode::Ivm { .. } => Err(Error::stream(
                "incremental mode does not consume derived batches",
            )),
        }
    }

    /// Apply a completed window to this CQ's counters and trace. Must be
    /// called exactly once per staged task, in staging order, from the
    /// thread that owns the CQ — this keeps stats and the trace ring
    /// identical to serial execution even when `run` happened on a pool.
    pub fn finish_window(&mut self, in_rows: usize, out: &CqOutput) {
        self.stats.windows_out += 1;
        self.stats.rows_out += out.relation.len() as u64;
        // One trace event per close decision — never per tuple.
        self.engine.metrics().trace().record(
            "cq.close",
            &self.name,
            format!("in_rows={} out_rows={}", in_rows, out.relation.len()),
            out.close,
        );
    }

    /// Inline evaluation of staged tasks (the serial path).
    fn run_staged(&mut self, tasks: Vec<WindowTask>) -> Result<Vec<CqOutput>> {
        let mut outputs = Vec::with_capacity(tasks.len());
        for task in tasks {
            let out = task.run()?;
            self.finish_window(task.input_rows(), &out);
            outputs.push(out);
        }
        Ok(outputs)
    }

    /// Resume after recovery: windows closing at or before `watermark`
    /// were already emitted (their results live in the Active Table).
    /// The next close is re-aligned to the advance grid in both modes —
    /// resuming at `watermark + advance` from an unaligned watermark
    /// would drift every subsequent close off the alignment invariant
    /// (breaking slice sharing and `cq_close` equality joins).
    pub fn resume_after(&mut self, watermark: Timestamp) {
        let next = match &mut self.mode {
            ExecMode::Unshared { buffer } => {
                buffer.resume_after(watermark);
                None
            }
            ExecMode::Shared {
                next_close,
                advance,
                max_ts,
                ..
            }
            | ExecMode::Ivm {
                next_close,
                advance,
                max_ts,
                ..
            } => {
                *next_close = Some(crate::window::align_next_close(watermark, *advance));
                *max_ts = (*max_ts).max(watermark);
                *next_close
            }
        };
        self.engine.metrics().trace().record(
            "cq.resume",
            &self.name,
            match next.or_else(|| self.next_close_hint()) {
                Some(c) => format!("watermark={watermark} next_close={c}"),
                None => format!("watermark={watermark}"),
            },
            watermark,
        );
    }

    /// The next close boundary, if already fixed (trace/debug only).
    fn next_close_hint(&self) -> Option<Timestamp> {
        match &self.mode {
            ExecMode::Unshared { buffer } => buffer.next_close(),
            ExecMode::Shared { next_close, .. } | ExecMode::Ivm { next_close, .. } => *next_close,
        }
    }

    /// Stage shared-mode windows up to `ts`. The aggregate relation is
    /// composed from slices *at staging time* (under the group lock, so
    /// member progress and eviction stay ordered); only the post-plan
    /// execution is deferred to the task.
    fn stage_shared(&mut self, ts: Timestamp) -> Result<Vec<WindowTask>> {
        // Collect the boundary crossings first (cheap, per tuple), and
        // only clone the execution state when a window actually closed.
        let (group, member, post_plan, closes) = match &mut self.mode {
            ExecMode::Shared {
                group,
                member,
                post_plan,
                advance,
                next_close,
                max_ts,
                ..
            } => {
                *max_ts = (*max_ts).max(ts);
                let a = *advance;
                let mut boundary = match *next_close {
                    Some(c) => c,
                    None => (ts.div_euclid(a) + 1) * a,
                };
                if boundary > ts {
                    *next_close = Some(boundary);
                    return Ok(Vec::new());
                }
                let mut closes = Vec::new();
                while boundary <= ts {
                    closes.push(boundary);
                    boundary += a;
                }
                *next_close = Some(boundary);
                (group.clone(), *member, post_plan.clone(), closes)
            }
            _ => unreachable!(),
        };
        let mut tasks = Vec::with_capacity(closes.len());
        for close in closes {
            let agg_rel = {
                let mut g = group.lock();
                let rel = g.window_result(member, close)?;
                g.member_progress(member, close + self.advance_of());
                g.evict();
                rel
            };
            tasks.push(self.make_task(post_plan.clone(), SHARED_INPUT.to_string(), agg_rel, close));
        }
        Ok(tasks)
    }

    /// Stage IVM-mode windows up to `ts`, folding `row` (if any) into the
    /// slice state first. Fold-before-close is safe for the same reason it
    /// is in shared mode: closes are slice boundaries, so a tuple at
    /// `ts >= close` lands in a slice outside the `[close - visible,
    /// close)` compose range. Aggregate/DISTINCT anchors compose at staging
    /// time (`Ready`); stream-table join anchors defer match counting to
    /// the task (`NeedsTable`), where the boundary snapshot is pinned.
    fn stage_ivm(&mut self, row: Option<Row>, ts: Timestamp) -> Result<Vec<WindowTask>> {
        let (post_plan, staged) = match &mut self.mode {
            ExecMode::Ivm {
                state,
                post_plan,
                visible,
                advance,
                next_close,
                max_ts,
                delta_rows,
                state_bytes,
                reported,
            } => {
                if let Some(r) = &row {
                    state.on_tuple(r)?;
                    let folded = state.delta_rows();
                    delta_rows.add(folded - *reported);
                    *reported = folded;
                }
                *max_ts = (*max_ts).max(ts);
                let a = *advance;
                let mut boundary = match *next_close {
                    Some(c) => c,
                    None => (ts.div_euclid(a) + 1) * a,
                };
                if boundary > ts {
                    *next_close = Some(boundary);
                    return Ok(Vec::new());
                }
                let mut staged = Vec::new();
                while boundary <= ts {
                    let out = state.window_result(boundary)?;
                    // Horizon of the *next* window: its low edge is
                    // (boundary + advance) - visible, matching the
                    // unshared buffer's eviction rule.
                    state.evict(boundary + a - *visible);
                    staged.push((boundary, out));
                    boundary += a;
                }
                *next_close = Some(boundary);
                state_bytes.set(state.state_bytes() as i64);
                (post_plan.clone(), staged)
            }
            _ => unreachable!(),
        };
        let mut tasks = Vec::with_capacity(staged.len());
        for (close, out) in staged {
            match out {
                WindowOutput::Ready(rel) => {
                    tasks.push(self.make_task(
                        post_plan.clone(),
                        IVM_INPUT.to_string(),
                        rel,
                        close,
                    ));
                }
                WindowOutput::NeedsTable(delta) => {
                    let schema = stream_scan_schema(&post_plan)
                        .ok_or_else(|| Error::stream("ivm post-plan lost its delta scan"))?;
                    let mut task = self.make_task(
                        post_plan.clone(),
                        IVM_INPUT.to_string(),
                        Relation::empty(schema),
                        close,
                    );
                    task.delta = Some(delta);
                    tasks.push(task);
                }
            }
        }
        Ok(tasks)
    }

    fn advance_of(&self) -> i64 {
        match self.window {
            WindowSpec::Time { advance, .. } => advance,
            _ => 0,
        }
    }

    /// Stage unshared windows: each closed window's rows become a task.
    fn stage_closed(&mut self, closes: Vec<ClosedWindow>) -> Result<Vec<WindowTask>> {
        if closes.is_empty() {
            return Ok(Vec::new());
        }
        let schema = stream_scan_schema(&self.plan)
            .ok_or_else(|| Error::stream("plan lost its stream scan"))?;
        let mut tasks = Vec::with_capacity(closes.len());
        for cw in closes {
            let rel = Relation::new(schema.clone(), cw.rows);
            tasks.push(self.make_task(self.plan.clone(), self.stream.clone(), rel, cw.close));
        }
        Ok(tasks)
    }

    fn make_task(
        &self,
        plan: LogicalPlan,
        input: String,
        rel: Relation,
        close: Timestamp,
    ) -> WindowTask {
        WindowTask {
            plan,
            input,
            rel,
            close,
            engine: self.engine.clone(),
            consistency: self.consistency,
            snapshot: self.start_snapshot.clone(),
            delta: None,
        }
    }
}

fn stream_scan_schema(plan: &LogicalPlan) -> Option<streamrel_sql::plan::SchemaRef> {
    let mut schema = None;
    plan.visit(&mut |p| {
        if let LogicalPlan::StreamScan { schema: s, .. } = p {
            schema = Some(s.clone());
        }
    });
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use streamrel_sql::analyzer::{Analyzer, RelKind, SchemaProvider};
    use streamrel_sql::ast::Statement;
    use streamrel_sql::parser::parse_statement;
    use streamrel_sql::plan::SchemaRef;
    use streamrel_types::time::MINUTES;
    use streamrel_types::{row, Column, DataType, Schema, Value};

    struct Provider {
        rels: HashMap<String, (SchemaRef, RelKind)>,
    }

    impl SchemaProvider for Provider {
        fn relation(&self, name: &str) -> Option<(SchemaRef, RelKind)> {
            self.rels.get(&name.to_ascii_lowercase()).cloned()
        }
    }

    fn url_stream_schema() -> SchemaRef {
        Arc::new(
            Schema::new(vec![
                Column::not_null("url", DataType::Text),
                Column::not_null("atime", DataType::Timestamp),
            ])
            .unwrap(),
        )
    }

    fn setup() -> (Provider, Arc<StorageEngine>) {
        let engine = Arc::new(StorageEngine::in_memory());
        engine
            .create_table(
                "url_dim",
                Schema::new(vec![
                    Column::new("url", DataType::Text),
                    Column::new("category", DataType::Text),
                ])
                .unwrap(),
            )
            .unwrap();
        let mut rels = HashMap::new();
        rels.insert(
            "url_stream".into(),
            (url_stream_schema(), RelKind::Stream { cqtime: Some(1) }),
        );
        rels.insert(
            "url_dim".into(),
            (engine.table_schema("url_dim").unwrap(), RelKind::Table),
        );
        (Provider { rels }, engine)
    }

    fn make_cq(
        provider: &Provider,
        engine: Arc<StorageEngine>,
        sql: &str,
        mode: ConsistencyMode,
    ) -> ContinuousQuery {
        let Statement::Select(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let analyzed = Analyzer::new(provider).analyze(&q).unwrap();
        ContinuousQuery::new("test_cq", &analyzed, engine, mode).unwrap()
    }

    fn tup(url: &str, ts: i64) -> Row {
        row![url, Value::Timestamp(ts)]
    }

    #[test]
    fn paper_example_2_end_to_end() {
        let (p, e) = setup();
        let mut cq = make_cq(
            &p,
            e,
            "SELECT url, count(*) url_count \
             FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
             GROUP by url ORDER by url_count desc LIMIT 10",
            ConsistencyMode::WindowBoundary,
        );
        let mut outputs = Vec::new();
        // /a twice per minute, /b once, for 3 minutes.
        for m in 0..3i64 {
            let base = m * MINUTES;
            outputs.extend(cq.on_tuple(tup("/a", base + 1)).unwrap());
            outputs.extend(cq.on_tuple(tup("/b", base + 2)).unwrap());
            outputs.extend(cq.on_tuple(tup("/a", base + 3)).unwrap());
        }
        outputs.extend(cq.on_heartbeat(3 * MINUTES).unwrap());
        assert_eq!(outputs.len(), 3);
        // Third window covers minutes 0..3 (visible 5m > elapsed).
        let last = &outputs[2];
        assert_eq!(last.close, 3 * MINUTES);
        assert_eq!(last.relation.rows()[0], row!["/a", 6i64]);
        assert_eq!(last.relation.rows()[1], row!["/b", 3i64]);
        assert_eq!(cq.stats().windows_out, 3);
    }

    #[test]
    fn cq_close_column_carries_boundary() {
        let (p, e) = setup();
        let mut cq = make_cq(
            &p,
            e,
            "SELECT count(*) c, cq_close(*) w FROM url_stream \
             <TUMBLING '1 minute'>",
            ConsistencyMode::WindowBoundary,
        );
        cq.on_tuple(tup("/a", 5)).unwrap();
        let outs = cq.on_heartbeat(MINUTES).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(
            outs[0].relation.rows()[0],
            vec![Value::Int(1), Value::Timestamp(MINUTES)]
        );
    }

    #[test]
    fn empty_windows_still_emit() {
        let (p, e) = setup();
        let mut cq = make_cq(
            &p,
            e,
            "SELECT count(*) c FROM url_stream <TUMBLING '1 minute'>",
            ConsistencyMode::WindowBoundary,
        );
        cq.on_tuple(tup("/a", 5)).unwrap();
        let outs = cq.on_heartbeat(3 * MINUTES).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[1].relation.rows()[0], row![0i64]);
    }

    #[test]
    fn stream_table_join_sees_window_boundary_snapshot() {
        let (p, e) = setup();
        let dim = e.table_id("url_dim").unwrap();
        e.with_txn(|x| e.insert(x, dim, row!["/a", "news"]))
            .unwrap();
        let mut cq = make_cq(
            &p,
            e.clone(),
            "SELECT s.url, d.category FROM url_stream <TUMBLING '1 minute'> s \
             JOIN url_dim d ON s.url = d.url",
            ConsistencyMode::WindowBoundary,
        );
        cq.on_tuple(tup("/a", 5)).unwrap();
        let outs = cq.on_heartbeat(MINUTES).unwrap();
        assert_eq!(outs[0].relation.rows()[0], row!["/a", "news"]);
        // Update the dimension between windows; next window sees it.
        e.with_txn(|x| {
            e.delete_all_visible(x, dim)?;
            e.insert(x, dim, row!["/a", "sports"])
        })
        .unwrap();
        cq.on_tuple(tup("/a", MINUTES + 5)).unwrap();
        let outs = cq.on_heartbeat(2 * MINUTES).unwrap();
        assert_eq!(
            outs[0].relation.rows()[0],
            row!["/a", "sports"],
            "window consistency: update visible at next boundary"
        );
    }

    #[test]
    fn query_start_consistency_freezes_tables() {
        let (p, e) = setup();
        let dim = e.table_id("url_dim").unwrap();
        e.with_txn(|x| e.insert(x, dim, row!["/a", "news"]))
            .unwrap();
        let mut cq = make_cq(
            &p,
            e.clone(),
            "SELECT s.url, d.category FROM url_stream <TUMBLING '1 minute'> s \
             JOIN url_dim d ON s.url = d.url",
            ConsistencyMode::QueryStart,
        );
        e.with_txn(|x| {
            e.delete_all_visible(x, dim)?;
            e.insert(x, dim, row!["/a", "sports"])
        })
        .unwrap();
        cq.on_tuple(tup("/a", 5)).unwrap();
        let outs = cq.on_heartbeat(MINUTES).unwrap();
        assert_eq!(
            outs[0].relation.rows()[0],
            row!["/a", "news"],
            "query-start pin never sees later updates"
        );
    }

    #[test]
    fn shared_mode_matches_unshared_results() {
        let (p, e) = setup();
        let sql = "SELECT url, count(*) c FROM url_stream \
                   <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url \
                   ORDER BY c DESC, url";
        let mut unshared = make_cq(&p, e.clone(), sql, ConsistencyMode::WindowBoundary);
        let mut shared = make_cq(&p, e.clone(), sql, ConsistencyMode::WindowBoundary);
        let mut registry = SharedRegistry::new();
        assert!(shared.try_share(&mut registry));
        assert!(shared.is_shared());
        let group = shared.shared_group().unwrap();

        let tuples: Vec<Row> = (0..300)
            .map(|i| tup(if i % 3 == 0 { "/a" } else { "/b" }, i * 1_000_000))
            .collect();
        let mut out_u = Vec::new();
        let mut out_s = Vec::new();
        for t in tuples {
            out_u.extend(unshared.on_tuple(t.clone()).unwrap());
            // Orchestrator folds the tuple into the group once...
            group.lock().on_tuple(&t).unwrap();
            // ...then advances the member.
            out_s.extend(shared.on_tuple(t).unwrap());
        }
        assert_eq!(out_u.len(), out_s.len());
        for (u, s) in out_u.iter().zip(&out_s) {
            assert_eq!(u.close, s.close);
            assert_eq!(u.relation.rows(), s.relation.rows(), "at close {}", u.close);
        }
    }

    #[test]
    fn ivm_mode_matches_unshared_results() {
        let (p, e) = setup();
        let sql = "SELECT url, count(*) c FROM url_stream \
                   <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url \
                   ORDER BY c DESC, url";
        let mut reeval = make_cq(&p, e.clone(), sql, ConsistencyMode::WindowBoundary);
        let mut ivm = make_cq(&p, e.clone(), sql, ConsistencyMode::WindowBoundary);
        assert!(ivm.try_lower_ivm());
        assert!(ivm.is_ivm());

        let mut out_r = Vec::new();
        let mut out_i = Vec::new();
        for i in 0..300 {
            let t = tup(if i % 3 == 0 { "/a" } else { "/b" }, i * 1_000_000);
            out_r.extend(reeval.on_tuple(t.clone()).unwrap());
            out_i.extend(ivm.on_tuple(t).unwrap());
        }
        assert_eq!(out_r.len(), out_i.len());
        for (r, i) in out_r.iter().zip(&out_i) {
            assert_eq!(r.close, i.close);
            assert_eq!(r.relation.rows(), i.relation.rows(), "at close {}", r.close);
        }
        assert_eq!(e.metrics().counter("ivm.lowered").get(), 1);
        assert!(e.metrics().counter("ivm.delta.rows").get() >= 300);
    }

    #[test]
    fn ivm_join_matches_unshared_and_sees_boundary_snapshot() {
        let (p, e) = setup();
        let dim = e.table_id("url_dim").unwrap();
        e.with_txn(|x| {
            e.insert(x, dim, row!["/a", "news"])?;
            e.insert(x, dim, row!["/a", "blog"])?;
            e.insert(x, dim, row!["/b", "sports"])
        })
        .unwrap();
        let sql = "SELECT s.url, count(*) c FROM url_stream \
                   <VISIBLE '2 minutes' ADVANCE '1 minute'> s \
                   JOIN url_dim d ON s.url = d.url GROUP BY s.url";
        let mut reeval = make_cq(&p, e.clone(), sql, ConsistencyMode::WindowBoundary);
        let mut ivm = make_cq(&p, e.clone(), sql, ConsistencyMode::WindowBoundary);
        assert!(ivm.try_lower_ivm());

        let mut out_r = Vec::new();
        let mut out_i = Vec::new();
        for i in 0..120i64 {
            let t = tup(["/a", "/b", "/c"][(i % 3) as usize], i * 1_000_000);
            out_r.extend(reeval.on_tuple(t.clone()).unwrap());
            out_i.extend(ivm.on_tuple(t).unwrap());
            if i == 70 {
                // Mutate the dimension mid-stream: both modes must see the
                // change at the same window boundary.
                e.with_txn(|x| e.insert(x, dim, row!["/c", "misc"]))
                    .unwrap();
            }
        }
        out_r.extend(reeval.on_heartbeat(2 * MINUTES).unwrap());
        out_i.extend(ivm.on_heartbeat(2 * MINUTES).unwrap());
        assert!(!out_r.is_empty());
        assert_eq!(out_r.len(), out_i.len());
        for (r, i) in out_r.iter().zip(&out_i) {
            assert_eq!(r.close, i.close);
            assert_eq!(r.relation.rows(), i.relation.rows(), "at close {}", r.close);
        }
    }

    #[test]
    fn ivm_resume_realigns_next_close() {
        let (p, e) = setup();
        let sql = "SELECT url, count(*) c FROM url_stream \
                   <TUMBLING '1 minute'> GROUP BY url";
        let mut cq = make_cq(&p, e, sql, ConsistencyMode::WindowBoundary);
        assert!(cq.try_lower_ivm());
        cq.resume_after(5 * MINUTES + 17);
        cq.on_tuple(tup("/a", 5 * MINUTES + 30_000_000)).unwrap();
        let outs = cq.on_heartbeat(7 * MINUTES).unwrap();
        let closes: Vec<Timestamp> = outs.iter().map(|o| o.close).collect();
        assert_eq!(closes, vec![6 * MINUTES, 7 * MINUTES]);
    }

    #[test]
    fn ineligible_plan_does_not_lower_and_counts_fallback() {
        let (p, e) = setup();
        let mut cq = make_cq(
            &p,
            e.clone(),
            "SELECT url FROM url_stream <TUMBLING '1 minute'> WHERE url LIKE '/a%'",
            ConsistencyMode::WindowBoundary,
        );
        assert!(!cq.try_lower_ivm());
        assert!(!cq.is_ivm());
        assert_eq!(e.metrics().counter("ivm.fallback").get(), 1);
        let events = e.metrics().trace().dump();
        assert!(events.iter().any(|ev| ev.kind == "cq.ivm.fallback"));
        // The CQ still works on the re-evaluation path.
        cq.on_tuple(tup("/a1", 5)).unwrap();
        let outs = cq.on_heartbeat(MINUTES).unwrap();
        assert_eq!(outs[0].relation.rows(), &[row!["/a1"]]);
    }

    #[test]
    fn shared_cq_refuses_ivm_lowering() {
        let (p, e) = setup();
        let sql = "SELECT url, count(*) c FROM url_stream \
                   <TUMBLING '1 minute'> GROUP BY url";
        let mut cq = make_cq(&p, e, sql, ConsistencyMode::WindowBoundary);
        let mut registry = SharedRegistry::new();
        assert!(cq.try_share(&mut registry));
        assert!(!cq.try_lower_ivm(), "sharing wins over per-CQ IVM state");
        assert!(cq.is_shared());
    }

    #[test]
    fn non_aggregate_plan_cannot_share() {
        let (p, e) = setup();
        let mut cq = make_cq(
            &p,
            e,
            "SELECT url FROM url_stream <TUMBLING '1 minute'> WHERE url LIKE '/a%'",
            ConsistencyMode::WindowBoundary,
        );
        let mut registry = SharedRegistry::new();
        assert!(!cq.try_share(&mut registry));
    }

    #[test]
    fn resume_after_skips_emitted_windows() {
        let (p, e) = setup();
        let mut cq = make_cq(
            &p,
            e,
            "SELECT count(*) c FROM url_stream <TUMBLING '1 minute'>",
            ConsistencyMode::WindowBoundary,
        );
        cq.resume_after(5 * MINUTES);
        cq.on_tuple(tup("/a", 5 * MINUTES + 10)).unwrap();
        let outs = cq.on_heartbeat(6 * MINUTES).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].close, 6 * MINUTES);
    }

    #[test]
    fn resume_after_unaligned_watermark_realigns_both_modes() {
        // Regression: shared-mode resume used to set next_close to
        // watermark + advance, drifting every later close off the advance
        // grid when the recovered watermark was unaligned (mid-window
        // crash). Both modes must round UP to the next multiple.
        let (p, e) = setup();
        let sql = "SELECT url, count(*) c FROM url_stream \
                   <TUMBLING '1 minute'> GROUP BY url";
        let unaligned = 5 * MINUTES + 17; // not a multiple of 1 minute

        let mut unshared = make_cq(&p, e.clone(), sql, ConsistencyMode::WindowBoundary);
        unshared.resume_after(unaligned);
        let outs = unshared.on_heartbeat(7 * MINUTES).unwrap();
        let closes: Vec<Timestamp> = outs.iter().map(|o| o.close).collect();
        assert_eq!(closes, vec![6 * MINUTES, 7 * MINUTES]);

        let mut shared = make_cq(&p, e, sql, ConsistencyMode::WindowBoundary);
        let mut registry = SharedRegistry::new();
        assert!(shared.try_share(&mut registry));
        shared.resume_after(unaligned);
        let group = shared.shared_group().unwrap();
        let mut outs = Vec::new();
        for i in 0..3 {
            let t = tup("/a", 5 * MINUTES + 30_000_000 + i * MINUTES);
            group.lock().on_tuple(&t).unwrap();
            outs.extend(shared.on_tuple(t).unwrap());
        }
        let closes: Vec<Timestamp> = outs.iter().map(|o| o.close).collect();
        assert_eq!(
            closes,
            vec![6 * MINUTES, 7 * MINUTES],
            "shared-mode closes must stay on the advance grid after resume"
        );
    }

    #[test]
    fn runtime_decisions_are_traced() {
        let (p, e) = setup();
        let mut cq = make_cq(
            &p,
            e.clone(),
            "SELECT count(*) c FROM url_stream <TUMBLING '1 minute'>",
            ConsistencyMode::WindowBoundary,
        );
        cq.resume_after(MINUTES);
        cq.on_tuple(tup("/a", MINUTES + 5)).unwrap();
        cq.on_heartbeat(2 * MINUTES).unwrap();
        let events = e.metrics().trace().dump();
        let kinds: Vec<&str> = events.iter().map(|ev| ev.kind.as_str()).collect();
        assert!(kinds.contains(&"cq.resume"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"cq.close"), "kinds: {kinds:?}");
        let close = events.iter().find(|ev| ev.kind == "cq.close").unwrap();
        assert_eq!(close.scope, "test_cq");
        assert_eq!(close.ts, 2 * MINUTES);
    }

    #[test]
    fn shared_cq_stats_track_tuples_and_windows() {
        let (p, e) = setup();
        let sql = "SELECT url, count(*) c FROM url_stream \
                   <TUMBLING '1 minute'> GROUP BY url";
        let mut cq = make_cq(&p, e, sql, ConsistencyMode::WindowBoundary);
        let mut registry = SharedRegistry::new();
        assert!(cq.try_share(&mut registry));
        let group = cq.shared_group().unwrap();
        for i in 0..10 {
            let t = tup("/a", i);
            group.lock().on_tuple(&t).unwrap();
            cq.on_tuple(t).unwrap();
        }
        let outs = cq.on_heartbeat(MINUTES).unwrap();
        assert_eq!(outs.len(), 1);
        let st = cq.stats();
        assert_eq!(st.tuples_in, 10);
        assert_eq!(st.windows_out, 1);
        assert_eq!(st.rows_out, 1);
    }

    #[test]
    fn output_schema_matches_projection() {
        let (p, e) = setup();
        let cq = make_cq(
            &p,
            e,
            "SELECT url, count(*) hits FROM url_stream <TUMBLING '1 minute'> GROUP BY url",
            ConsistencyMode::WindowBoundary,
        );
        let schema = cq.output_schema();
        assert_eq!(schema.column(0).name, "url");
        assert_eq!(schema.column(1).name, "hits");
        assert_eq!(cq.stream(), "url_stream");
    }

    #[test]
    fn heartbeat_batches_multiple_closes() {
        let (p, e) = setup();
        let mut cq = make_cq(
            &p,
            e,
            "SELECT count(*) c FROM url_stream <TUMBLING '1 minute'>",
            ConsistencyMode::WindowBoundary,
        );
        cq.on_tuple(tup("/a", 1)).unwrap();
        let outs = cq.on_heartbeat(5 * MINUTES).unwrap();
        assert_eq!(outs.len(), 5, "one output per crossed boundary");
        assert_eq!(outs[4].close, 5 * MINUTES);
    }

    #[test]
    fn snapshot_query_rejected() {
        let (p, e) = setup();
        let Statement::Select(q) = parse_statement("select 1").unwrap() else {
            panic!()
        };
        let analyzed = Analyzer::new(&p).analyze(&q).unwrap();
        assert!(ContinuousQuery::new("x", &analyzed, e, ConsistencyMode::WindowBoundary).is_err());
    }
}
