//! Out-of-order tolerance.
//!
//! Streams are "ordered unbounded relations" (§3.1); real feeds are only
//! approximately ordered. A [`ReorderBuffer`] with slack `s` holds tuples
//! until the watermark (max timestamp seen minus `s`) passes them, then
//! releases them in timestamp order. Tuples older than the watermark at
//! arrival are *late*: counted and dropped (the window they belonged to has
//! already closed).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use streamrel_types::{Error, Interval, Result, Row, Timestamp, Value};

/// Min-heap entry ordered by `(ts, seq)`; the row payload is ignored for
/// ordering (rows have no total order of their own).
#[derive(Debug)]
struct Entry {
    ts: Timestamp,
    seq: u64,
    row: Row,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.ts == other.ts && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the oldest on top.
        (other.ts, other.seq).cmp(&(self.ts, self.seq))
    }
}

/// Buffers slightly-out-of-order tuples and re-emits them ordered.
#[derive(Debug)]
pub struct ReorderBuffer {
    cqtime: usize,
    slack: Interval,
    heap: BinaryHeap<Entry>,
    seq: u64,
    max_ts: Option<Timestamp>,
    late_drops: u64,
}

impl ReorderBuffer {
    /// New buffer: `cqtime` is the timestamp column, `slack` the maximum
    /// disorder tolerated (0 = strict ordering enforcement).
    pub fn new(cqtime: usize, slack: Interval) -> ReorderBuffer {
        ReorderBuffer {
            cqtime,
            slack,
            heap: BinaryHeap::new(),
            seq: 0,
            max_ts: None,
            late_drops: 0,
        }
    }

    fn ts_of(&self, row: &Row) -> Result<Timestamp> {
        match row.get(self.cqtime) {
            Some(Value::Timestamp(t)) => Ok(*t),
            Some(Value::Int(t)) => Ok(*t),
            _ => Err(Error::stream("CQTIME column is not a timestamp")),
        }
    }

    /// Offer a tuple; returns the tuples now releasable, in time order.
    /// Late tuples (older than watermark) are dropped and counted.
    pub fn push(&mut self, row: Row) -> Result<Vec<Row>> {
        let ts = self.ts_of(&row)?;
        if let Some(wm) = self.watermark() {
            if ts < wm {
                self.late_drops += 1;
                return Ok(Vec::new());
            }
        }
        self.max_ts = Some(self.max_ts.map_or(ts, |m| m.max(ts)));
        self.heap.push(Entry {
            ts,
            seq: self.seq,
            row,
        });
        self.seq += 1;
        Ok(self.drain_ready())
    }

    /// Current watermark: `max_ts - slack`.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.max_ts.map(|m| m - self.slack)
    }

    /// Tuples dropped for arriving after their window closed.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    /// Number of tuples still held back.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    fn drain_ready(&mut self) -> Vec<Row> {
        let Some(wm) = self.watermark() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while matches!(self.heap.peek(), Some(e) if e.ts <= wm) {
            out.push(self.heap.pop().unwrap().row);
        }
        out
    }

    /// Flush everything (stream end / shutdown), in time order.
    pub fn flush(&mut self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push(e.row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::row;

    fn tup(ts: i64) -> Row {
        row![Value::Timestamp(ts), ts]
    }

    fn ts_list(rows: &[Row]) -> Vec<i64> {
        rows.iter().map(|r| r[0].as_timestamp().unwrap()).collect()
    }

    #[test]
    fn in_order_stream_flows_through() {
        let mut b = ReorderBuffer::new(0, 0);
        let mut released = Vec::new();
        for ts in [1, 2, 3] {
            released.extend(b.push(tup(ts)).unwrap());
        }
        assert_eq!(ts_list(&released), vec![1, 2, 3]);
        assert_eq!(b.late_drops(), 0);
    }

    #[test]
    fn disorder_within_slack_reordered() {
        let mut b = ReorderBuffer::new(0, 10);
        let mut released = Vec::new();
        for ts in [5, 15, 12, 20, 18, 30] {
            released.extend(b.push(tup(ts)).unwrap());
        }
        released.extend(b.flush());
        assert_eq!(ts_list(&released), vec![5, 12, 15, 18, 20, 30]);
        assert_eq!(b.late_drops(), 0);
    }

    #[test]
    fn late_tuples_dropped_and_counted() {
        let mut b = ReorderBuffer::new(0, 5);
        b.push(tup(100)).unwrap();
        // Watermark is 95; a tuple at 90 is late.
        let out = b.push(tup(90)).unwrap();
        assert!(out.is_empty());
        assert_eq!(b.late_drops(), 1);
        // 96 is within slack.
        b.push(tup(96)).unwrap();
        assert_eq!(b.late_drops(), 1);
    }

    #[test]
    fn zero_slack_releases_immediately() {
        let mut b = ReorderBuffer::new(0, 0);
        let out = b.push(tup(7)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn ties_preserve_arrival_order() {
        let mut b = ReorderBuffer::new(0, 5);
        let r1 = row![Value::Timestamp(10), "first"];
        let r2 = row![Value::Timestamp(10), "second"];
        b.push(r1.clone()).unwrap();
        b.push(r2.clone()).unwrap();
        let out = b.flush();
        assert_eq!(out, vec![r1, r2]);
    }

    #[test]
    fn bad_time_column_errors() {
        let mut b = ReorderBuffer::new(0, 0);
        assert!(b.push(row!["not a time"]).is_err());
    }
}
