//! Shared slice-based aggregation — the paper's "Jellybean processing"
//! (§2.2) and its refs \[4] (resource sharing in sliding-window aggregates)
//! and \[12] (on-the-fly sharing for streamed aggregation).
//!
//! Many aggregate CQs over the same stream with the same filter, grouping
//! and aggregate functions — but *different windows* — share one pass over
//! the data: time is cut into slices of width `gcd(all VISIBLEs and
//! ADVANCEs)`, one partial accumulator set is maintained per (slice,
//! group), and each query's window result is composed by *merging* the
//! slices it covers. Each arriving tuple is therefore aggregated once,
//! regardless of how many CQs are registered: per-tuple cost is O(1) in
//! the number of queries, which experiment E3 measures.
//!
//! Concurrency: a [`SharedGroup`] is owned by an `Arc<Mutex<_>>` held by
//! the registry and by every member CQ's shard. Its declared place in
//! the engine-wide lock order is the `g` slot of `db.rs`'s
//! `catalog < state < g < subs`: a group lock is only ever taken after
//! the catalog or shard-state lock and is never held across any other
//! acquisition.

use std::collections::{BTreeMap, HashMap};

use streamrel_exec::expr::{eval, eval_predicate, EvalContext};
use streamrel_exec::Accumulator;
use streamrel_sql::plan::{AggSpec, BoundExpr, LogicalPlan, SchemaRef, WindowSpec};
use streamrel_types::{Error, Interval, Relation, Result, Row, Timestamp, Value};

/// The shareable fragment of an aggregate CQ plan: everything at or below
/// the Aggregate node.
#[derive(Debug, Clone)]
pub struct SharedShape {
    /// Source stream name.
    pub stream: String,
    /// Stream schema (Aggregate input).
    pub input_schema: SchemaRef,
    /// CQTIME column position in the stream.
    pub cqtime: usize,
    /// Optional pre-aggregation filter.
    pub filter: Option<BoundExpr>,
    /// Group-by expressions over the stream row.
    pub group_exprs: Vec<BoundExpr>,
    /// Aggregate functions.
    pub aggs: Vec<AggSpec>,
    /// Output schema of the Aggregate node (`[groups..., aggs...]`).
    pub agg_schema: SchemaRef,
}

impl SharedShape {
    /// Stable fingerprint used to pool compatible queries.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}|{:?}|{:?}|{:?}",
            self.stream.to_ascii_lowercase(),
            self.filter,
            self.group_exprs,
            self.aggs
        )
    }
}

/// Try to split a CQ plan into a [`SharedShape`] plus a *post-plan* that
/// consumes the Aggregate output. The post-plan's leaf is a `StreamScan`
/// on the synthetic name [`SHARED_INPUT`]; at window close the runtime
/// feeds it the relation composed from slices.
///
/// Returns `None` when the plan is not shareable: no aggregation, a
/// non-trivial pipeline below the Aggregate, a row/slice window, or
/// `cq_close(*)` used below the Aggregate (its value is unknown at slice
/// time).
pub fn extract_shape(plan: &LogicalPlan) -> Option<(SharedShape, LogicalPlan)> {
    fn rewrite(plan: &LogicalPlan, found: &mut Option<SharedShape>) -> Option<LogicalPlan> {
        match plan {
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                aggs,
                schema,
            } => {
                // Input must be StreamScan or Filter(StreamScan).
                let (filter, scan) = match input.as_ref() {
                    LogicalPlan::Filter { input, predicate } => {
                        (Some(predicate.clone()), input.as_ref())
                    }
                    other => (None, other),
                };
                let LogicalPlan::StreamScan {
                    stream,
                    schema: in_schema,
                    window,
                    cqtime,
                    ..
                } = scan
                else {
                    return None;
                };
                let WindowSpec::Time { .. } = window else {
                    return None;
                };
                let cqtime = (*cqtime)?;
                // cq_close below the Aggregate cannot be sliced.
                if filter.as_ref().is_some_and(BoundExpr::uses_cq_close)
                    || group_exprs.iter().any(BoundExpr::uses_cq_close)
                    || aggs
                        .iter()
                        .any(|a| a.arg.as_ref().is_some_and(BoundExpr::uses_cq_close))
                {
                    return None;
                }
                if found.is_some() {
                    return None; // two aggregates: not shareable
                }
                *found = Some(SharedShape {
                    stream: stream.clone(),
                    input_schema: in_schema.clone(),
                    cqtime,
                    filter,
                    group_exprs: group_exprs.clone(),
                    aggs: aggs.clone(),
                    agg_schema: schema.clone(),
                });
                Some(LogicalPlan::StreamScan {
                    stream: SHARED_INPUT.to_string(),
                    schema: schema.clone(),
                    window: *window,
                    cqtime: None,
                    derived: false,
                })
            }
            LogicalPlan::Filter { input, predicate } => Some(LogicalPlan::Filter {
                input: Box::new(rewrite(input, found)?),
                predicate: predicate.clone(),
            }),
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => Some(LogicalPlan::Project {
                input: Box::new(rewrite(input, found)?),
                exprs: exprs.clone(),
                schema: schema.clone(),
            }),
            LogicalPlan::Sort { input, keys } => Some(LogicalPlan::Sort {
                input: Box::new(rewrite(input, found)?),
                keys: keys.clone(),
            }),
            LogicalPlan::Limit { input, n } => Some(LogicalPlan::Limit {
                input: Box::new(rewrite(input, found)?),
                n: *n,
            }),
            LogicalPlan::Distinct { input } => Some(LogicalPlan::Distinct {
                input: Box::new(rewrite(input, found)?),
            }),
            // Joins above the aggregate would need the aggregate on one
            // side; keep those unshared for now.
            _ => None,
        }
    }
    let mut found = None;
    let post = rewrite(plan, &mut found)?;
    found.map(|s| (s, post))
}

/// Synthetic stream name the post-plan scans.
pub const SHARED_INPUT: &str = "__shared_agg";

/// Per-slice partial aggregation state.
#[derive(Debug, Default)]
struct SliceState {
    groups: HashMap<Vec<Value>, Vec<Accumulator>>,
    /// First-seen order for deterministic output.
    order: Vec<Vec<Value>>,
}

/// Registered window requirements of one member query.
#[derive(Debug, Clone, Copy)]
struct Member {
    visible: Interval,
    /// The member's next close boundary (for eviction horizon).
    next_close: Option<Timestamp>,
}

/// Identifier of a member within its group.
pub type MemberId = usize;

/// One pool of compatible aggregate CQs sharing slice partials.
pub struct SharedGroup {
    shape: SharedShape,
    slice_width: Interval,
    slices: BTreeMap<Timestamp, SliceState>,
    members: Vec<Member>,
    /// Tuples folded in (shared work happens once, so this counts the
    /// group's total per-tuple aggregation work).
    pub tuples_processed: u64,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl SharedGroup {
    /// New group for a shape; slice width starts unconstrained and is
    /// fixed by the first member.
    pub fn new(shape: SharedShape) -> SharedGroup {
        SharedGroup {
            shape,
            slice_width: 0,
            slices: BTreeMap::new(),
            members: Vec::new(),
            tuples_processed: 0,
        }
    }

    /// The shared shape.
    pub fn shape(&self) -> &SharedShape {
        &self.shape
    }

    /// Current slice width (µs).
    pub fn slice_width(&self) -> Interval {
        self.slice_width
    }

    /// Number of live slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Register a member window. Fails if data already flowed and the new
    /// member needs finer slices than the group maintains (the caller then
    /// runs that query unshared).
    pub fn register(&mut self, visible: Interval, advance: Interval) -> Result<MemberId> {
        let needed = gcd(visible, advance);
        let new_width = if self.slice_width == 0 {
            needed
        } else {
            gcd(self.slice_width, needed)
        };
        if new_width != self.slice_width && !self.slices.is_empty() {
            return Err(Error::stream(
                "cannot re-slice a shared group that already holds data",
            ));
        }
        self.slice_width = new_width;
        self.members.push(Member {
            visible,
            next_close: None,
        });
        Ok(self.members.len() - 1)
    }

    /// Fold one stream tuple into its slice (called once per tuple for the
    /// whole group — this is where the sharing pays off).
    pub fn on_tuple(&mut self, row: &Row) -> Result<()> {
        debug_assert!(self.slice_width > 0, "no members registered");
        let ectx = EvalContext::default();
        if let Some(f) = &self.shape.filter {
            if !eval_predicate(f, row, &ectx)? {
                return Ok(());
            }
        }
        let ts = row
            .get(self.shape.cqtime)
            .ok_or_else(|| Error::stream("row too short for CQTIME"))?
            .as_timestamp()?;
        let slice_start = ts.div_euclid(self.slice_width) * self.slice_width;
        let key: Vec<Value> = self
            .shape
            .group_exprs
            .iter()
            .map(|e| eval(e, row, &ectx))
            .collect::<Result<_>>()?;
        let aggs = &self.shape.aggs;
        let slice = self.slices.entry(slice_start).or_default();
        let accs = match slice.groups.get_mut(&key) {
            Some(a) => a,
            None => {
                slice.order.push(key.clone());
                slice
                    .groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(Accumulator::new).collect())
            }
        };
        for (acc, spec) in accs.iter_mut().zip(aggs) {
            match &spec.arg {
                Some(arg) => {
                    let v = eval(arg, row, &ectx)?;
                    acc.update(Some(&v))?;
                }
                None => acc.update(None)?,
            }
        }
        self.tuples_processed += 1;
        Ok(())
    }

    /// Compose the Aggregate-output relation for a member's window
    /// `[close - visible, close)` by merging covered slices.
    pub fn window_result(&mut self, member: MemberId, close: Timestamp) -> Result<Relation> {
        let visible = self.members[member].visible;
        let lo = close - visible;
        let mut merged: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        let mut order: Vec<Vec<Value>> = Vec::new();
        for (_, slice) in self.slices.range(lo..close) {
            for key in &slice.order {
                let partial = &slice.groups[key];
                match merged.get_mut(key) {
                    Some(accs) => {
                        for (a, p) in accs.iter_mut().zip(partial) {
                            a.merge(p)?;
                        }
                    }
                    None => {
                        order.push(key.clone());
                        merged.insert(key.clone(), partial.clone());
                    }
                }
            }
        }
        let mut rel = Relation::empty(self.shape.agg_schema.clone());
        if merged.is_empty() && self.shape.group_exprs.is_empty() {
            // Global aggregate over an empty window: defaults row.
            let row: Row = self
                .shape
                .aggs
                .iter()
                .map(|s| Accumulator::new(s).finish())
                .collect();
            rel.push(row);
            return Ok(rel);
        }
        for key in order {
            let accs = &merged[&key];
            let mut row = key;
            row.extend(accs.iter().map(Accumulator::finish));
            rel.push(row);
        }
        Ok(rel)
    }

    /// Record a member's next close boundary (drives eviction).
    pub fn member_progress(&mut self, member: MemberId, next_close: Timestamp) {
        self.members[member].next_close = Some(next_close);
    }

    /// Drop slices no member's future window can reach. A member that has
    /// not yet reported any progress (`next_close == None`) may still need
    /// every slice, so eviction waits for it.
    pub fn evict(&mut self) {
        let mut horizon = i64::MAX;
        for m in &self.members {
            match m.next_close {
                Some(c) => horizon = horizon.min(c - m.visible),
                None => return,
            }
        }
        if horizon != i64::MAX {
            // BTreeMap::retain keeps it simple; slices are few.
            self.slices
                .retain(|start, _| start + self.slice_width > horizon);
        }
    }
}

/// Registry pooling shared groups by shape fingerprint.
#[derive(Default)]
pub struct SharedRegistry {
    groups: HashMap<String, std::sync::Arc<parking_lot::Mutex<SharedGroup>>>,
}

impl SharedRegistry {
    /// Empty registry.
    pub fn new() -> SharedRegistry {
        SharedRegistry::default()
    }

    /// Get or create the group for a shape.
    pub fn group_for(
        &mut self,
        shape: SharedShape,
    ) -> std::sync::Arc<parking_lot::Mutex<SharedGroup>> {
        let fp = shape.fingerprint();
        self.groups
            .entry(fp)
            .or_insert_with(|| {
                // Witness name matches db.rs's `// lock-order:`
                // declaration, where this lock is acquired as `g`.
                std::sync::Arc::new(parking_lot::Mutex::named("core.g", SharedGroup::new(shape)))
            })
            .clone()
    }

    /// All groups feeding from `stream`.
    pub fn groups_on_stream(
        &self,
        stream: &str,
    ) -> Vec<std::sync::Arc<parking_lot::Mutex<SharedGroup>>> {
        self.groups
            .values()
            .filter(|g| g.lock().shape.stream.eq_ignore_ascii_case(stream))
            .cloned()
            .collect()
    }

    /// Slice width of the group a shape would pool with, if one exists
    /// and has already fixed its grid. `streamrel-check` uses this at
    /// registration to warn when a new member's window would not compose
    /// from the existing slices (it then runs unshared).
    pub fn slice_width_for(&self, shape: &SharedShape) -> Option<Interval> {
        let g = self.groups.get(&shape.fingerprint())?;
        let w = g.lock().slice_width;
        (w > 0).then_some(w)
    }

    /// Number of distinct groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no groups exist.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use streamrel_sql::plan::AggFunc;
    use streamrel_types::time::MINUTES;
    use streamrel_types::{row, Column, DataType, Schema};

    fn stream_schema() -> SchemaRef {
        Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::not_null("atime", DataType::Timestamp),
            ])
            .unwrap(),
        )
    }

    fn shape() -> SharedShape {
        let agg_schema = Arc::new(Schema::new_unchecked(vec![
            Column::new("url", DataType::Text),
            Column::new("count", DataType::Int),
        ]));
        SharedShape {
            stream: "url_stream".into(),
            input_schema: stream_schema(),
            cqtime: 1,
            filter: None,
            group_exprs: vec![BoundExpr::Column {
                index: 0,
                ty: DataType::Text,
            }],
            aggs: vec![AggSpec {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
                name: "count".into(),
                ty: DataType::Int,
            }],
            agg_schema,
        }
    }

    fn tup(url: &str, ts: i64) -> Row {
        row![url, Value::Timestamp(ts)]
    }

    #[test]
    fn slice_width_is_gcd() {
        let mut g = SharedGroup::new(shape());
        g.register(5 * MINUTES, MINUTES).unwrap();
        assert_eq!(g.slice_width(), MINUTES);
        g.register(10 * MINUTES, 2 * MINUTES).unwrap();
        assert_eq!(g.slice_width(), MINUTES);
    }

    #[test]
    fn reslicing_with_data_rejected() {
        let mut g = SharedGroup::new(shape());
        g.register(4 * MINUTES, 2 * MINUTES).unwrap();
        g.on_tuple(&tup("/a", 10)).unwrap();
        assert!(g.register(3 * MINUTES, MINUTES).is_err());
    }

    #[test]
    fn window_result_merges_slices() {
        let mut g = SharedGroup::new(shape());
        let m = g.register(2 * MINUTES, MINUTES).unwrap();
        // Two tuples in slice [0,1min), one in [1min,2min).
        g.on_tuple(&tup("/a", 10)).unwrap();
        g.on_tuple(&tup("/a", 20)).unwrap();
        g.on_tuple(&tup("/b", MINUTES + 5)).unwrap();
        let rel = g.window_result(m, 2 * MINUTES).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows()[0], row!["/a", 2i64]);
        assert_eq!(rel.rows()[1], row!["/b", 1i64]);
        // Only the last minute:
        let m1 = {
            // member with 1-minute visible
            let mut g2 = SharedGroup::new(shape());
            let m1 = g2.register(MINUTES, MINUTES).unwrap();
            g2.on_tuple(&tup("/a", 10)).unwrap();
            g2.on_tuple(&tup("/b", MINUTES + 5)).unwrap();
            let rel = g2.window_result(m1, 2 * MINUTES).unwrap();
            assert_eq!(rel.rows(), &[row!["/b", 1i64]]);
            m1
        };
        let _ = m1;
    }

    #[test]
    fn tuple_processed_once_for_many_members() {
        let mut g = SharedGroup::new(shape());
        for _ in 0..16 {
            g.register(5 * MINUTES, MINUTES).unwrap();
        }
        for i in 0..100 {
            g.on_tuple(&tup("/a", i)).unwrap();
        }
        assert_eq!(g.tuples_processed, 100, "work is per tuple, not per CQ");
    }

    #[test]
    fn filter_applies_before_slicing() {
        let mut s = shape();
        s.filter = Some(BoundExpr::Like {
            expr: Box::new(BoundExpr::Column {
                index: 0,
                ty: DataType::Text,
            }),
            pattern: Box::new(BoundExpr::Literal(Value::text("/a%"))),
            negated: false,
        });
        let mut g = SharedGroup::new(s);
        let m = g.register(MINUTES, MINUTES).unwrap();
        g.on_tuple(&tup("/a1", 10)).unwrap();
        g.on_tuple(&tup("/b1", 20)).unwrap();
        let rel = g.window_result(m, MINUTES).unwrap();
        assert_eq!(rel.rows(), &[row!["/a1", 1i64]]);
    }

    #[test]
    fn eviction_respects_slowest_member() {
        let mut g = SharedGroup::new(shape());
        let fast = g.register(MINUTES, MINUTES).unwrap();
        let slow = g.register(10 * MINUTES, MINUTES).unwrap();
        for i in 0..10 {
            g.on_tuple(&tup("/a", i * MINUTES + 1)).unwrap();
        }
        assert_eq!(g.slice_count(), 10);
        g.member_progress(fast, 10 * MINUTES);
        g.member_progress(slow, 10 * MINUTES);
        g.evict();
        // Slow member still needs [0, 10min): nothing evictable.
        assert_eq!(g.slice_count(), 10);
        g.member_progress(slow, 12 * MINUTES);
        g.evict();
        // Horizon = min(10-1, 12-10) = 2min → slices below 2min go.
        assert_eq!(g.slice_count(), 8);
    }

    #[test]
    fn empty_global_aggregate_yields_defaults() {
        let mut s = shape();
        s.group_exprs.clear();
        s.agg_schema = Arc::new(Schema::new_unchecked(vec![Column::new(
            "count",
            DataType::Int,
        )]));
        let mut g = SharedGroup::new(s);
        let m = g.register(MINUTES, MINUTES).unwrap();
        let rel = g.window_result(m, MINUTES).unwrap();
        assert_eq!(rel.rows(), &[row![0i64]]);
    }

    #[test]
    fn registry_pools_by_fingerprint() {
        let mut reg = SharedRegistry::new();
        let g1 = reg.group_for(shape());
        let g2 = reg.group_for(shape());
        assert!(Arc::ptr_eq(&g1, &g2));
        let mut other = shape();
        other.stream = "other_stream".into();
        let g3 = reg.group_for(other);
        assert!(!Arc::ptr_eq(&g1, &g3));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.groups_on_stream("url_stream").len(), 1);
    }
}
