//! Continuous-query runtime: the paper's primary contribution.
//!
//! A continuous query (CQ) runs a standard relational plan incrementally
//! over a stream: the window machinery ([`window`]) turns the unbounded
//! stream into a sequence of finite relations (Figure 1 / RSTREAM), the
//! runtime ([`runtime`]) executes the plan once per window — reusing
//! `streamrel-exec`'s ordinary operators, per §4 — and the sharing layer
//! ([`shared`]) collapses the per-tuple work of many aggregate CQs into one
//! pass ("Jellybean processing", §2.2, refs [4, 12]).
//!
//! Window consistency (§4, ref \[6]) lives in [`consistency`]: table reads
//! inside a CQ see one MVCC snapshot pinned per window, so concurrent
//! updates become visible only at window boundaries. Recovery helpers in
//! [`recovery`] rebuild runtime state from Active-Table watermarks instead
//! of operator checkpoints (§4).

#![deny(unsafe_code)]

pub mod consistency;
pub mod federation;
pub mod ordering;
pub mod pool;
pub mod recovery;
pub mod runtime;
pub mod shared;
pub mod window;

pub use consistency::{ConsistencyMode, SnapshotSource};
pub use federation::{PartitionUnion, Partitioner};
pub use ordering::ReorderBuffer;
pub use pool::WorkerPool;
pub use runtime::{ContinuousQuery, CqOutput, CqStats, ExecMode, WindowTask};
pub use shared::{SharedGroup, SharedRegistry};
pub use window::{ClosedWindow, WindowBuffer};
