//! A small worker pool for closed-window plan evaluation.
//!
//! The sharded execution core stages every window a batch (or heartbeat)
//! closes as a [`crate::runtime::WindowTask`] and hands the batch to this
//! pool. Plan evaluation is side-effect free — it reads the window
//! relation plus a pinned MVCC snapshot — so tasks can run on any thread
//! in any order; determinism comes from [`WorkerPool::run_ordered`]
//! returning results **in submission order**, which the caller arranges
//! to be the serial (CQ registration, window close) order. Output
//! sequencing therefore costs nothing: the results vector *is* the serial
//! emission order, byte-identical to single-threaded execution.
//!
//! The calling thread never idles while its batch runs: it helps drain
//! the queue, so a pool of `n` workers gives `n + 1` lanes and a pool of
//! zero workers degenerates to exactly the old inline execution.

// lock-order: queue < results < remaining
//
// The job queue lock is released before a job runs; a job's completion
// closure takes its batch's results lock and then the remaining counter.
// No lock is ever held while executing user work.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use streamrel_obs::{Gauge, Registry};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// `pool.queue_depth`: jobs enqueued but not yet started.
    queue_depth: Arc<Gauge>,
    /// `pool.busy_workers`: pool threads currently executing a job (the
    /// helping caller thread is not counted — it is accounted to the
    /// operation that submitted the batch).
    busy_workers: Arc<Gauge>,
}

impl PoolShared {
    fn enqueue(&self, job: Job) {
        self.queue_depth.add(1);
        self.queue.lock().push_back(job);
        self.queue_cv.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        let job = self.queue.lock().pop_front();
        if job.is_some() {
            self.queue_depth.sub(1);
        }
        job
    }
}

/// Fixed-size pool of evaluation workers. Dropping the pool joins every
/// worker thread.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads. Zero workers is valid: every batch then
    /// runs inline on the calling thread (the serial baseline).
    pub fn new(workers: usize, registry: &Registry) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::named("cq.queue", VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_depth: registry.gauge("pool.queue_depth"),
            busy_workers: registry.gauge("pool.busy_workers"),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("streamrel-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("spawn pool worker: {e}"))
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Number of pool threads (excluding the helping caller).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run every task, returning results **in submission order**. The
    /// calling thread helps drain the queue, then blocks until its batch
    /// completes.
    pub fn run_ordered<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if self.workers.is_empty() || tasks.len() <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }
        let n = tasks.len();
        let batch = Arc::new(BatchState {
            results: Mutex::named("cq.results", (0..n).map(|_| None).collect()),
            remaining: Mutex::named("cq.remaining", n),
            done_cv: Condvar::new(),
        });
        for (i, f) in tasks.into_iter().enumerate() {
            let batch = batch.clone();
            self.shared.enqueue(Box::new(move || {
                let r = f();
                batch.complete(i, r);
            }));
        }
        // Help: run queued jobs (possibly other batches') until the queue
        // is dry, then wait for our batch to finish.
        while let Some(job) = self.shared.try_pop() {
            job();
        }
        batch.wait_done();
        batch.take_results()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    shared.queue_depth.sub(1);
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Timed wait so shutdown can never be missed.
                shared.queue_cv.wait_for(&mut q, Duration::from_millis(50));
            }
        };
        shared.busy_workers.add(1);
        job();
        shared.busy_workers.sub(1);
    }
}

/// Completion state for one `run_ordered` batch.
struct BatchState<T> {
    results: Mutex<Vec<Option<T>>>,
    remaining: Mutex<usize>,
    done_cv: Condvar,
}

impl<T> BatchState<T> {
    fn complete(&self, i: usize, r: T) {
        self.results.lock()[i] = Some(r);
        let mut left = self.remaining.lock();
        *left -= 1;
        if *left == 0 {
            self.done_cv.notify_all();
        }
    }

    fn wait_done(&self) {
        let mut left = self.remaining.lock();
        while *left > 0 {
            self.done_cv.wait(&mut left);
        }
    }

    fn take_results(&self) -> Vec<T> {
        self.results
            .lock()
            .iter_mut()
            .map(|slot| slot.take().unwrap_or_else(|| panic!("batch slot empty")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::new(16)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let reg = registry();
        let pool = WorkerPool::new(3, &reg);
        let tasks: Vec<_> = (0..64)
            .map(|i: u64| {
                move || {
                    // Stagger work so completion order differs from
                    // submission order.
                    if i.is_multiple_of(7) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    i * i
                }
            })
            .collect();
        let got = pool.run_ordered(tasks);
        let want: Vec<u64> = (0..64).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_workers_runs_inline() {
        let reg = registry();
        let pool = WorkerPool::new(0, &reg);
        let got = pool.run_ordered(vec![|| 1, || 2, || 3]);
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(pool.workers(), 0);
    }

    #[test]
    fn gauges_return_to_zero_after_batches() {
        let reg = registry();
        let pool = WorkerPool::new(2, &reg);
        for _ in 0..10 {
            let tasks: Vec<_> = (0..8).map(|i: i64| move || i).collect();
            let _ = pool.run_ordered(tasks);
        }
        assert_eq!(reg.gauge("pool.queue_depth").get(), 0);
        assert_eq!(reg.gauge("pool.busy_workers").get(), 0);
    }

    #[test]
    fn pool_survives_many_concurrent_batches() {
        let reg = registry();
        let pool = Arc::new(WorkerPool::new(4, &reg));
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for round in 0..50 {
                        let tasks: Vec<_> = (0..5).map(|i: usize| move || (t, round, i)).collect();
                        let got = pool.run_ordered(tasks);
                        assert_eq!(got.len(), 5);
                        assert!(got.iter().enumerate().all(|(i, v)| v.2 == i));
                    }
                });
            }
        });
    }
}
