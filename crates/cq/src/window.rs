//! Window buffers: turning an ordered unbounded stream into a sequence of
//! finite relations (the paper's Figure 1).
//!
//! A window clause `<VISIBLE v ADVANCE a>` produces, every `a`, the
//! relation of tuples whose CQTIME falls in `[close - v, close)`. Close
//! boundaries are aligned to multiples of `a` (so two CQs with the same
//! ADVANCE close at identical instants — a prerequisite for slice sharing
//! and for Example 5's equality join on `cq_close` values).

use std::collections::VecDeque;

use streamrel_types::{Error, Result, Row, Timestamp};

use streamrel_sql::WindowSpec;

/// One closed window: its close timestamp and the rows it contains.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedWindow {
    /// Exclusive upper bound of the window (`cq_close(*)` value).
    pub close: Timestamp,
    /// Rows with CQTIME in `[close - visible, close)`, in arrival order.
    pub rows: Vec<Row>,
}

/// Per-CQ window state. Feed tuples with [`WindowBuffer::push`] and time
/// progress with [`WindowBuffer::advance_to`]; both return the windows that
/// closed as a consequence.
#[derive(Debug)]
pub enum WindowBuffer {
    /// Time-based sliding / tumbling window.
    Time(TimeWindow),
    /// Row-count window.
    Rows(RowWindow),
    /// `<SLICES n WINDOWS>` over a derived stream's result batches.
    Slices(SliceWindow),
}

impl WindowBuffer {
    /// Build a buffer for a window spec. `cqtime` is the position of the
    /// stream's time column (required for time windows). `derived` says
    /// the scanned relation is a derived stream, whose batches are
    /// stamped exactly at window closes: time windows then use the
    /// inclusive `(lo, close]` interval convention. Inclusivity is fixed
    /// at construction (the source kind is known at plan time) — it never
    /// changes per push, no matter how tuples and batches interleave.
    pub fn new(spec: WindowSpec, cqtime: Option<usize>, derived: bool) -> Result<WindowBuffer> {
        match spec {
            WindowSpec::Time { visible, advance } => {
                let cqtime =
                    cqtime.ok_or_else(|| Error::stream("time window requires a CQTIME column"))?;
                Ok(WindowBuffer::Time(TimeWindow {
                    visible,
                    advance,
                    cqtime,
                    buf: VecDeque::new(),
                    next_close: None,
                    max_ts: i64::MIN,
                    inclusive: derived,
                }))
            }
            WindowSpec::Rows { visible, advance } => Ok(WindowBuffer::Rows(RowWindow {
                visible: visible as usize,
                advance: advance as usize,
                cqtime,
                buf: VecDeque::new(),
                since_emit: 0,
                max_ts: i64::MIN,
                total: 0,
            })),
            WindowSpec::Slices { count } => Ok(WindowBuffer::Slices(SliceWindow {
                count: count as usize,
                batches: VecDeque::new(),
            })),
            // Defense in depth: admission (`streamrel-check`) rejects
            // unbounded scans before a CQ is built, so reaching this arm
            // means a caller bypassed the check.
            WindowSpec::Unbounded => Err(Error::stream(
                "stream scanned without a window bound; \
                 the plan was not admission-checked",
            )),
        }
    }

    /// Feed one tuple. For time windows the tuple's CQTIME drives time
    /// forward, closing any window whose boundary it passes *before* the
    /// tuple itself is admitted.
    pub fn push(&mut self, row: Row) -> Result<Vec<ClosedWindow>> {
        match self {
            WindowBuffer::Time(w) => w.push(row),
            WindowBuffer::Rows(w) => Ok(w.push(row)),
            WindowBuffer::Slices(_) => Err(Error::stream(
                "slices windows consume whole result batches, not tuples",
            )),
        }
    }

    /// Explicit time progress (heartbeat / punctuation): closes every
    /// window with `close <= ts` even if no tuple arrives.
    pub fn advance_to(&mut self, ts: Timestamp) -> Vec<ClosedWindow> {
        match self {
            WindowBuffer::Time(w) => w.advance_to(ts),
            // Row and slice windows are data-driven; time is irrelevant.
            WindowBuffer::Rows(_) | WindowBuffer::Slices(_) => Vec::new(),
        }
    }

    /// Feed one upstream result batch (slices windows only).
    pub fn push_batch(&mut self, close: Timestamp, rows: Vec<Row>) -> Vec<ClosedWindow> {
        match self {
            WindowBuffer::Slices(w) => w.push_batch(close, rows),
            // A time/row window over a derived stream treats each batch's
            // rows as ordinary tuples. The interval convention (inclusive
            // for derived sources, whose batches are stamped exactly at
            // window closes) was fixed at construction — see
            // [`WindowBuffer::new`].
            WindowBuffer::Time(w) => {
                let mut out = Vec::new();
                for row in rows {
                    if let Ok(mut closes) = w.push(row) {
                        out.append(&mut closes);
                    }
                }
                out.extend(w.advance_to(close));
                out
            }
            WindowBuffer::Rows(w) => {
                let mut out = Vec::new();
                for row in rows {
                    out.extend(w.push(row));
                }
                out
            }
        }
    }

    /// Rows currently buffered (memory accounting, tests).
    pub fn buffered(&self) -> usize {
        match self {
            WindowBuffer::Time(w) => w.buf.len(),
            WindowBuffer::Rows(w) => w.buf.len(),
            WindowBuffer::Slices(w) => w.batches.iter().map(|(_, b)| b.len()).sum(),
        }
    }

    /// Skip directly to a resume point: windows up to and including
    /// `watermark` are considered already emitted (recovery, §4). The next
    /// close is re-aligned to the advance grid — the watermark itself may
    /// be unaligned (e.g. a row-window CQ's tuple-time watermark shared
    /// the same Active Table), and an unaligned resume would drift every
    /// subsequent close off the alignment invariant this module documents.
    pub fn resume_after(&mut self, watermark: Timestamp) {
        if let WindowBuffer::Time(w) = self {
            w.next_close = Some(align_next_close(watermark, w.advance));
            w.max_ts = w.max_ts.max(watermark);
        }
    }

    /// The next close boundary, if already fixed (time windows only;
    /// trace/debug use).
    pub fn next_close(&self) -> Option<Timestamp> {
        match self {
            WindowBuffer::Time(w) => w.next_close,
            WindowBuffer::Rows(_) | WindowBuffer::Slices(_) => None,
        }
    }

    /// The event-time watermark: the largest CQTIME observed, or `None`
    /// if no timestamp has been seen yet (stats and recovery must not
    /// mistake the sentinel for a real time).
    pub fn watermark(&self) -> Option<Timestamp> {
        match self {
            WindowBuffer::Time(w) => (w.max_ts != i64::MIN).then_some(w.max_ts),
            WindowBuffer::Rows(w) => (w.max_ts != i64::MIN).then_some(w.max_ts),
            WindowBuffer::Slices(w) => w.batches.back().map(|(close, _)| *close),
        }
    }
}

/// Smallest multiple of `advance` strictly greater than `watermark`: the
/// first close boundary not yet emitted when resuming after `watermark`.
pub(crate) fn align_next_close(watermark: Timestamp, advance: i64) -> Timestamp {
    (watermark.div_euclid(advance) + 1) * advance
}

/// Time-based sliding window state.
///
/// Two interval conventions exist:
/// - **Exclusive** (tuple streams): window is `[close - visible, close)`;
///   a tuple stamped exactly at a boundary falls in the *next* window.
/// - **Inclusive** (derived-stream batches): window is
///   `(close - visible, close]`; a batch stamped at a boundary belongs to
///   the window closing there (its data *ends* at that instant).
#[derive(Debug)]
pub struct TimeWindow {
    visible: i64,
    advance: i64,
    cqtime: usize,
    /// Buffered `(ts, row)` in arrival (== time) order.
    buf: VecDeque<(Timestamp, Row)>,
    /// Next close boundary; `None` until the first tuple fixes alignment.
    next_close: Option<Timestamp>,
    max_ts: Timestamp,
    /// Upper-bound convention (see type docs).
    inclusive: bool,
}

impl TimeWindow {
    fn ts_of(&self, row: &Row) -> Result<Timestamp> {
        row.get(self.cqtime)
            .ok_or_else(|| Error::stream("row too short for CQTIME column"))?
            .as_timestamp()
            .map_err(|_| Error::stream("CQTIME column is not a timestamp"))
    }

    /// First close boundary whose window can contain `ts`, aligned to
    /// multiples of advance. Exclusive mode: strictly after `ts`.
    /// Inclusive mode: at or after `ts`.
    fn align_first_close(&self, ts: Timestamp) -> Timestamp {
        let a = self.advance;
        if self.inclusive {
            // Smallest multiple of `a` that is >= ts.
            ts.div_euclid(a) * a + if ts.rem_euclid(a) == 0 { 0 } else { a }
        } else {
            (ts.div_euclid(a) + 1) * a
        }
    }

    fn push(&mut self, row: Row) -> Result<Vec<ClosedWindow>> {
        let ts = self.ts_of(&row)?;
        if ts < self.max_ts {
            return Err(Error::stream(format!(
                "out-of-order tuple: ts {ts} < watermark {} \
                 (wrap the stream in a ReorderBuffer for slack)",
                self.max_ts
            )));
        }
        // Close every window whose boundary this tuple passes. In
        // inclusive mode a tuple AT the boundary still belongs to the
        // closing window, so only boundaries strictly before it fire.
        let limit = if self.inclusive { ts - 1 } else { ts };
        let closes = self.fire_through(limit);
        if self.next_close.is_none() {
            self.next_close = Some(self.align_first_close(ts));
        }
        self.max_ts = ts;
        self.buf.push_back((ts, row));
        Ok(closes)
    }

    fn advance_to(&mut self, ts: Timestamp) -> Vec<ClosedWindow> {
        let out = self.fire_through(ts);
        self.max_ts = self.max_ts.max(ts);
        out
    }

    fn fire_through(&mut self, ts: Timestamp) -> Vec<ClosedWindow> {
        let mut out = Vec::new();
        let Some(mut close) = self.next_close else {
            return out;
        };
        while close <= ts {
            let lo = close - self.visible;
            let in_window: &dyn Fn(Timestamp) -> bool = if self.inclusive {
                &|t| t > lo && t <= close
            } else {
                &|t| t >= lo && t < close
            };
            let rows: Vec<Row> = self
                .buf
                .iter()
                .filter(|(t, _)| in_window(*t))
                .map(|(_, r)| r.clone())
                .collect();
            out.push(ClosedWindow { close, rows });
            // Evict rows that no future window can see: next window's low
            // edge is (close + advance) - visible.
            let future_lo = close + self.advance - self.visible;
            let evictable: &dyn Fn(Timestamp) -> bool = if self.inclusive {
                &|t| t <= future_lo
            } else {
                &|t| t < future_lo
            };
            while matches!(self.buf.front(), Some((t, _)) if evictable(*t)) {
                self.buf.pop_front();
            }
            close += self.advance;
        }
        self.next_close = Some(close);
        out
    }
}

/// Row-count window state.
#[derive(Debug)]
pub struct RowWindow {
    visible: usize,
    advance: usize,
    cqtime: Option<usize>,
    buf: VecDeque<Row>,
    since_emit: usize,
    /// Largest CQTIME seen; `i64::MIN` (same sentinel as [`TimeWindow`])
    /// until one arrives, so pre-epoch (negative) timestamps are reported
    /// faithfully rather than masked by a zero default.
    max_ts: Timestamp,
    /// Rows ever pushed (the close value when no CQTIME is available).
    total: u64,
}

impl RowWindow {
    fn push(&mut self, row: Row) -> Vec<ClosedWindow> {
        if let Some(i) = self.cqtime {
            if let Some(v) = row.get(i) {
                if let Ok(t) = v.as_timestamp() {
                    self.max_ts = self.max_ts.max(t);
                }
            }
        }
        self.buf.push_back(row);
        while self.buf.len() > self.visible {
            self.buf.pop_front();
        }
        self.since_emit += 1;
        self.total += 1;
        if self.since_emit >= self.advance {
            self.since_emit = 0;
            vec![ClosedWindow {
                // Row windows close on arrival; cq_close is the newest
                // tuple's time, or the running row count when no CQTIME
                // value has been observed.
                close: if self.max_ts == i64::MIN {
                    self.total as i64
                } else {
                    self.max_ts
                },
                rows: self.buf.iter().cloned().collect(),
            }]
        } else {
            Vec::new()
        }
    }
}

/// `<SLICES n WINDOWS>` state: each upstream batch is one slice.
#[derive(Debug)]
pub struct SliceWindow {
    count: usize,
    batches: VecDeque<(Timestamp, Vec<Row>)>,
}

impl SliceWindow {
    fn push_batch(&mut self, close: Timestamp, rows: Vec<Row>) -> Vec<ClosedWindow> {
        self.batches.push_back((close, rows));
        while self.batches.len() > self.count {
            self.batches.pop_front();
        }
        if self.batches.len() == self.count {
            vec![ClosedWindow {
                close,
                rows: self
                    .batches
                    .iter()
                    .flat_map(|(_, b)| b.iter().cloned())
                    .collect(),
            }]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::row;
    use streamrel_types::time::MINUTES;
    use streamrel_types::Value;

    fn tup(ts: i64) -> Row {
        row![Value::Timestamp(ts), "x"]
    }

    fn time_buf(visible: i64, advance: i64) -> WindowBuffer {
        WindowBuffer::new(WindowSpec::Time { visible, advance }, Some(0), false).unwrap()
    }

    fn derived_time_buf(visible: i64, advance: i64) -> WindowBuffer {
        WindowBuffer::new(WindowSpec::Time { visible, advance }, Some(0), true).unwrap()
    }

    #[test]
    fn tumbling_window_closes_on_boundary_crossing() {
        let mut w = time_buf(MINUTES, MINUTES);
        assert!(w.push(tup(10)).unwrap().is_empty());
        assert!(w.push(tup(30)).unwrap().is_empty());
        let closes = w.push(tup(MINUTES + 5)).unwrap();
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].close, MINUTES);
        assert_eq!(closes[0].rows.len(), 2);
    }

    #[test]
    fn paper_example_2_sliding_window() {
        // VISIBLE 5 minutes ADVANCE 1 minute: every minute, the last 5.
        let mut w = time_buf(5 * MINUTES, MINUTES);
        // One tuple per 30s for 7 minutes.
        let mut all_closes = Vec::new();
        for i in 0..14 {
            let ts = i * 30_000_000 + 1; // +1 to sit strictly inside
            all_closes.extend(w.push(tup(ts)).unwrap());
        }
        // Tuples reach 6.5 min: closes at 1..6 minutes = 6 windows.
        assert_eq!(all_closes.len(), 6);
        assert_eq!(all_closes[0].close, MINUTES);
        // First window saw 2 tuples (0..1 min), third saw 6 (0..3 min).
        assert_eq!(all_closes[0].rows.len(), 2);
        assert_eq!(all_closes[2].rows.len(), 6);
        // After 5 minutes the window is saturated at 10 tuples.
        assert_eq!(all_closes[5].rows.len(), 10);
    }

    #[test]
    fn sliding_window_evicts_expired() {
        let mut w = time_buf(2 * MINUTES, MINUTES);
        for i in 0..10 {
            w.push(tup(i * MINUTES + 1)).unwrap();
        }
        // Buffer must hold at most ~2 minutes of data.
        assert!(w.buffered() <= 3, "buffered = {}", w.buffered());
    }

    #[test]
    fn heartbeat_closes_empty_windows() {
        let mut w = time_buf(MINUTES, MINUTES);
        w.push(tup(10)).unwrap();
        let closes = w.advance_to(3 * MINUTES);
        assert_eq!(closes.len(), 3);
        assert_eq!(closes[0].rows.len(), 1);
        assert!(closes[1].rows.is_empty(), "gap windows are empty");
        assert!(closes[2].rows.is_empty());
    }

    #[test]
    fn out_of_order_rejected() {
        let mut w = time_buf(MINUTES, MINUTES);
        w.push(tup(100)).unwrap();
        assert!(w.push(tup(50)).is_err());
        // Equal timestamps are fine (ties allowed).
        w.push(tup(100)).unwrap();
    }

    #[test]
    fn boundary_tuple_excluded_from_closing_window() {
        let mut w = time_buf(MINUTES, MINUTES);
        w.push(tup(10)).unwrap();
        // Tuple exactly at the close boundary fires the window but is not
        // inside it (half-open interval).
        let closes = w.push(tup(MINUTES)).unwrap();
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].rows.len(), 1);
        let closes = w.advance_to(2 * MINUTES);
        assert_eq!(closes[0].rows.len(), 1, "boundary tuple in next window");
    }

    #[test]
    fn visible_not_multiple_of_advance_still_correct() {
        // VISIBLE 90s ADVANCE 60s.
        let mut w = time_buf(90 * 1_000_000, MINUTES);
        let mut closes = Vec::new();
        for i in 0..6 {
            closes.extend(w.push(tup(i * 30_000_000 + 1)).unwrap());
        }
        closes.extend(w.advance_to(2 * MINUTES));
        // close at 1min: [−30s, 60s) → tuples at 1, 30.000001s → 2 rows
        // close at 2min: [30s, 120s) → tuples at 60..., 90..., and 30.000001 → 3 rows
        assert_eq!(closes.len(), 2);
        assert_eq!(closes[0].rows.len(), 2);
        assert_eq!(closes[1].rows.len(), 3);
    }

    #[test]
    fn row_window_counts() {
        let mut w = WindowBuffer::new(
            WindowSpec::Rows {
                visible: 3,
                advance: 2,
            },
            Some(0),
            false,
        )
        .unwrap();
        let mut closes = Vec::new();
        for i in 0..7 {
            closes.extend(w.push(tup(i)).unwrap());
        }
        // Emits after rows 2, 4, 6 (every 2 rows).
        assert_eq!(closes.len(), 3);
        assert_eq!(closes[0].rows.len(), 2, "first window not yet full");
        assert_eq!(closes[1].rows.len(), 3);
        assert_eq!(closes[2].rows.len(), 3);
        // cq_close for row windows is the newest tuple time.
        assert_eq!(closes[2].close, 5);
    }

    #[test]
    fn slices_window_concatenates_batches() {
        let mut w = WindowBuffer::new(WindowSpec::Slices { count: 2 }, None, true).unwrap();
        assert!(w.push_batch(100, vec![row![1i64]]).is_empty());
        let closes = w.push_batch(200, vec![row![2i64], row![3i64]]);
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].close, 200);
        assert_eq!(closes[0].rows.len(), 3);
        // Rolls forward: next batch drops the oldest.
        let closes = w.push_batch(300, vec![row![4i64]]);
        assert_eq!(closes[0].rows.len(), 3);
        assert_eq!(closes[0].rows[0], row![2i64]);
    }

    #[test]
    fn slices_one_window_passes_batches_through() {
        let mut w = WindowBuffer::new(WindowSpec::Slices { count: 1 }, None, true).unwrap();
        let closes = w.push_batch(100, vec![row![1i64]]);
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].rows, vec![row![1i64]]);
    }

    #[test]
    fn tuples_to_slices_buffer_rejected() {
        let mut w = WindowBuffer::new(WindowSpec::Slices { count: 1 }, None, true).unwrap();
        assert!(w.push(row![1i64]).is_err());
    }

    #[test]
    fn resume_after_skips_old_windows() {
        let mut w = time_buf(MINUTES, MINUTES);
        w.resume_after(5 * MINUTES);
        // A tuple at 5.5 minutes should NOT fire windows 1..5.
        let closes = w.push(tup(5 * MINUTES + 30_000_000)).unwrap();
        assert!(closes.is_empty());
        let closes = w.advance_to(6 * MINUTES);
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].close, 6 * MINUTES);
    }

    #[test]
    fn push_batch_does_not_flip_tuple_window_inclusive() {
        // Regression: push_batch used to set `inclusive = true` forever on
        // a tuple-stream window. A boundary-stamped tuple arriving *after*
        // a batch must still fall in the NEXT window (exclusive interval).
        let mut w = time_buf(MINUTES, MINUTES);
        w.push(tup(10)).unwrap();
        // Interleave a batch: its rows are ordinary tuples here.
        w.push_batch(30, vec![tup(20), tup(30)]);
        // Tuple exactly at the boundary: fires the window, excluded from it.
        let closes = w.push(tup(MINUTES)).unwrap();
        assert_eq!(closes.len(), 1);
        assert_eq!(
            closes[0].rows.len(),
            3,
            "boundary tuple must not join the closing window"
        );
        let closes = w.advance_to(2 * MINUTES);
        assert_eq!(
            closes[0].rows.len(),
            1,
            "boundary tuple belongs to the next window"
        );
    }

    #[test]
    fn derived_window_is_inclusive_from_construction() {
        // A derived-stream window is inclusive before any push_batch call:
        // a batch stamped exactly at a close belongs to the closing window.
        let mut w = derived_time_buf(MINUTES, MINUTES);
        let closes = w.push_batch(MINUTES, vec![tup(MINUTES)]);
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].close, MINUTES);
        assert_eq!(
            closes[0].rows.len(),
            1,
            "boundary-stamped batch row must be inside the closing window"
        );
    }

    #[test]
    fn resume_after_unaligned_watermark_realigns() {
        // Regression: resume from a watermark that is not a multiple of
        // ADVANCE (e.g. mid-window crash). The next close must round UP to
        // the advance grid, not sit at watermark + advance.
        let mut w = time_buf(MINUTES, MINUTES);
        w.resume_after(5 * MINUTES + 30_000_000); // 5.5 min
        w.push(tup(5 * MINUTES + 40_000_000)).unwrap();
        let closes = w.advance_to(7 * MINUTES);
        assert_eq!(closes.len(), 2);
        assert_eq!(closes[0].close, 6 * MINUTES, "re-aligned to advance grid");
        assert_eq!(closes[1].close, 7 * MINUTES);
    }

    #[test]
    fn row_window_negative_timestamps_not_masked() {
        // Regression: max_ts used to start at 0, so pre-epoch streams
        // reported close = 0 instead of the newest (negative) tuple time.
        let mut w = WindowBuffer::new(
            WindowSpec::Rows {
                visible: 2,
                advance: 2,
            },
            Some(0),
            false,
        )
        .unwrap();
        let mut closes = Vec::new();
        closes.extend(w.push(tup(-500)).unwrap());
        closes.extend(w.push(tup(-400)).unwrap());
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].close, -400, "close is the newest tuple time");
    }

    #[test]
    fn row_window_without_cqtime_uses_running_count() {
        let mut w = WindowBuffer::new(
            WindowSpec::Rows {
                visible: 2,
                advance: 2,
            },
            None,
            false,
        )
        .unwrap();
        let mut closes = Vec::new();
        for i in 0..6 {
            closes.extend(w.push(row![i as i64]).unwrap());
        }
        let seen: Vec<Timestamp> = closes.iter().map(|c| c.close).collect();
        assert_eq!(seen, vec![2, 4, 6], "running row count stands in for time");
    }

    #[test]
    fn watermark_none_until_first_timestamp() {
        let w = time_buf(MINUTES, MINUTES);
        assert_eq!(w.watermark(), None, "sentinel must not leak as a time");
        let mut w = time_buf(MINUTES, MINUTES);
        w.push(tup(-42)).unwrap();
        assert_eq!(w.watermark(), Some(-42), "negative watermark is real");
    }

    #[test]
    fn negative_timestamps_align_correctly() {
        let mut w = time_buf(MINUTES, MINUTES);
        w.push(tup(-90_000_000)).unwrap(); // -1.5 min
        let closes = w.advance_to(0);
        // Window closing at -1min contains it; window at 0 does not.
        assert_eq!(closes.len(), 2);
        assert_eq!(closes[0].close, -MINUTES);
        assert_eq!(closes[0].rows.len(), 1);
        assert_eq!(closes[1].rows.len(), 0);
    }
}
