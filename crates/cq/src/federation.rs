//! Partitioned-stream federation primitives (the paper's §4
//! "network-effect" story, applied across nodes).
//!
//! [`Partitioner`] hash-partitions a base stream's tuples across N
//! serving nodes; each node runs the same windowed CQ over its slice and
//! the consumer merges the per-partition partial windows back into one
//! deterministic sequence with [`PartitionUnion`]. Determinism is the
//! whole contract: given the same input rows, the merged output —
//! release order included — is byte-identical no matter how the N links
//! race, because a window is released only once **every** partition's
//! watermark has passed its close, and releases are ordered by
//! `(close, partition)`.
//!
//! Both types are engine-agnostic (no `Db`, no sockets): the network
//! bridge in `streamrel-net` feeds them, and the equivalence tests drive
//! them directly.

use std::collections::VecDeque;

use streamrel_storage::codec::encode_value;
use streamrel_types::{Error, Result, Row, Timestamp};

use crate::CqOutput;

/// Deterministic hash partitioner over one key column.
///
/// The hash is FNV-1a over the key value's storage-codec encoding, so a
/// value has exactly one hash no matter which node computes it (the same
/// single-representation argument the wire format makes): every producer
/// and every test agrees on row placement.
#[derive(Debug, Clone, Copy)]
pub struct Partitioner {
    key_col: usize,
    parts: usize,
}

impl Partitioner {
    /// Partition rows by column `key_col` into `parts` partitions.
    pub fn new(key_col: usize, parts: usize) -> Result<Partitioner> {
        if parts == 0 {
            return Err(Error::stream("partitioner needs at least one partition"));
        }
        Ok(Partitioner { key_col, parts })
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Which partition owns `row`.
    pub fn partition_of(&self, row: &Row) -> Result<usize> {
        let v = row.get(self.key_col).ok_or_else(|| {
            Error::stream(format!(
                "row has no partition key column {} (row arity {})",
                self.key_col,
                row.len()
            ))
        })?;
        let mut bytes = Vec::with_capacity(16);
        encode_value(&mut bytes, v);
        Ok((fnv1a(&bytes) % self.parts as u64) as usize)
    }

    /// Split a batch into per-partition batches, preserving the input's
    /// relative row order inside each partition.
    pub fn split(&self, rows: Vec<Row>) -> Result<Vec<Vec<Row>>> {
        let mut out: Vec<Vec<Row>> = vec![Vec::new(); self.parts];
        for row in rows {
            let p = self.partition_of(&row)?;
            out[p].push(row);
        }
        Ok(out)
    }
}

/// FNV-1a, 64-bit. Small, dependency-free, and stable across platforms —
/// exactly what a cross-node placement function needs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One partition's merge state.
#[derive(Debug, Default)]
struct PartState {
    /// Windows received but not yet releasable, close-ascending (each
    /// partition's CQ emits closes in strictly increasing order).
    buffer: VecDeque<CqOutput>,
    /// Highest close or heartbeat seen from this partition; `None` until
    /// the partition reports anything.
    watermark: Option<Timestamp>,
}

/// Watermark-ordered union of per-partition window streams.
///
/// Feed each partition's windows ([`PartitionUnion::offer`]) and
/// watermark advances ([`PartitionUnion::heartbeat`]) as they arrive —
/// in any interleaving — then drain ([`PartitionUnion::drain_ready`]).
/// A window is released only when every partition's watermark has
/// reached its close, so a partition can never later produce a window
/// that should have sorted before something already released; releases
/// are ordered `(close, partition)`, which makes the merged sequence a
/// pure function of the inputs.
#[derive(Debug)]
pub struct PartitionUnion {
    parts: Vec<PartState>,
}

impl PartitionUnion {
    /// Union over `parts` partitions.
    pub fn new(parts: usize) -> PartitionUnion {
        PartitionUnion {
            parts: (0..parts).map(|_| PartState::default()).collect(),
        }
    }

    /// Number of partitions merged.
    pub fn parts(&self) -> usize {
        self.parts.len()
    }

    /// Accept one window from `part`. The window's close also advances
    /// the partition's watermark (a CQ only emits a close once event
    /// time has passed it).
    pub fn offer(&mut self, part: usize, out: CqOutput) -> Result<()> {
        let state = self.part_mut(part)?;
        if let Some(last) = state.buffer.back() {
            if out.close <= last.close {
                return Err(Error::stream(format!(
                    "partition {part} regressed: window close {} after {}",
                    out.close, last.close
                )));
            }
        }
        state.watermark = Some(state.watermark.map_or(out.close, |w| w.max(out.close)));
        state.buffer.push_back(out);
        Ok(())
    }

    /// Advance `part`'s watermark without a window (heartbeat
    /// propagation: the partition's event time passed `ts` with nothing
    /// to emit).
    pub fn heartbeat(&mut self, part: usize, ts: Timestamp) -> Result<()> {
        let state = self.part_mut(part)?;
        state.watermark = Some(state.watermark.map_or(ts, |w| w.max(ts)));
        Ok(())
    }

    /// The merge frontier: the lowest partition watermark, i.e. the
    /// close up to which the merged sequence is complete. `None` until
    /// every partition has reported at least once.
    pub fn frontier(&self) -> Option<Timestamp> {
        self.parts
            .iter()
            .map(|p| p.watermark)
            .collect::<Option<Vec<_>>>()
            .map(|ws| ws.into_iter().min().unwrap_or(Timestamp::MIN))
    }

    /// Windows buffered awaiting release.
    pub fn pending(&self) -> usize {
        self.parts.iter().map(|p| p.buffer.len()).sum()
    }

    /// Release every window whose close the frontier has passed, in
    /// `(close, partition)` order.
    pub fn drain_ready(&mut self) -> Vec<CqOutput> {
        let Some(frontier) = self.frontier() else {
            return Vec::new();
        };
        let mut ready: Vec<(Timestamp, usize, CqOutput)> = Vec::new();
        for (i, state) in self.parts.iter_mut().enumerate() {
            while state
                .buffer
                .front()
                .is_some_and(|out| out.close <= frontier)
            {
                // Pop preserves the partition's close order, so sorting
                // by (close, partition) below is a stable total order.
                if let Some(out) = state.buffer.pop_front() {
                    ready.push((out.close, i, out));
                }
            }
        }
        ready.sort_by_key(|(close, part, _)| (*close, *part));
        ready.into_iter().map(|(_, _, out)| out).collect()
    }

    fn part_mut(&mut self, part: usize) -> Result<&mut PartState> {
        let n = self.parts.len();
        self.parts
            .get_mut(part)
            .ok_or_else(|| Error::stream(format!("unknown partition {part} (of {n})")))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use streamrel_types::{Column, DataType, Relation, Schema, Value};

    use super::*;

    fn row(key: i64) -> Row {
        vec![Value::Int(key)]
    }

    fn win(close: Timestamp, tag: i64) -> CqOutput {
        let schema = Arc::new(Schema::new_unchecked(vec![Column::new(
            "tag",
            DataType::Int,
        )]));
        CqOutput {
            close,
            relation: Relation::new(schema, vec![vec![Value::Int(tag)]]),
        }
    }

    #[test]
    fn partitioner_is_deterministic_and_total() {
        let p = Partitioner::new(0, 3).unwrap();
        for k in 0..100 {
            let a = p.partition_of(&row(k)).unwrap();
            let b = p.partition_of(&row(k)).unwrap();
            assert_eq!(a, b);
            assert!(a < 3);
        }
        // Not all keys land on one partition (FNV actually spreads).
        let hit: std::collections::HashSet<usize> =
            (0..100).map(|k| p.partition_of(&row(k)).unwrap()).collect();
        assert!(hit.len() > 1, "degenerate placement: {hit:?}");
    }

    #[test]
    fn split_preserves_order_within_partitions() {
        let p = Partitioner::new(0, 2).unwrap();
        let rows: Vec<Row> = (0..50).map(row).collect();
        let splits = p.split(rows.clone()).unwrap();
        assert_eq!(splits.iter().map(Vec::len).sum::<usize>(), 50);
        for (i, part) in splits.iter().enumerate() {
            let keys: Vec<i64> = part
                .iter()
                .map(|r| match r[0] {
                    Value::Int(k) => k,
                    _ => unreachable!(),
                })
                .collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "partition {i} reordered rows");
        }
    }

    #[test]
    fn union_holds_windows_until_every_partition_catches_up() {
        let mut u = PartitionUnion::new(2);
        u.offer(0, win(100, 1)).unwrap();
        u.offer(0, win(200, 2)).unwrap();
        // Partition 1 silent: nothing is releasable yet.
        assert!(u.drain_ready().is_empty());
        assert_eq!(u.pending(), 2);
        u.heartbeat(1, 150).unwrap();
        let released = u.drain_ready();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].close, 100);
        u.offer(1, win(200, 3)).unwrap();
        let released = u.drain_ready();
        // Same close from both partitions: partition order breaks the tie.
        assert_eq!(
            released.iter().map(|o| o.close).collect::<Vec<_>>(),
            vec![200, 200]
        );
        assert_eq!(released[0].relation.rows()[0][0], Value::Int(2));
        assert_eq!(released[1].relation.rows()[0][0], Value::Int(3));
        assert_eq!(u.pending(), 0);
    }

    #[test]
    fn union_merge_is_interleaving_independent() {
        // Two arrival orders of the same windows/heartbeats must release
        // the identical sequence.
        let run = |swap: bool| {
            let mut u = PartitionUnion::new(2);
            let mut out = Vec::new();
            let feed: Vec<(usize, CqOutput)> = if swap {
                vec![(1, win(100, 10)), (0, win(100, 1)), (0, win(200, 2))]
            } else {
                vec![(0, win(100, 1)), (1, win(100, 10)), (0, win(200, 2))]
            };
            for (p, w) in feed {
                u.offer(p, w).unwrap();
                out.extend(u.drain_ready());
            }
            u.heartbeat(1, 200).unwrap();
            out.extend(u.drain_ready());
            out.iter()
                .map(|o| (o.close, o.relation.rows()[0][0].clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn union_rejects_regressing_partition() {
        let mut u = PartitionUnion::new(1);
        u.offer(0, win(200, 1)).unwrap();
        assert!(u.offer(0, win(100, 2)).is_err());
        assert!(u.offer(0, win(200, 2)).is_err());
        assert!(u.heartbeat(9, 1).is_err(), "unknown partition");
    }
}
