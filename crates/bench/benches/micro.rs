//! Criterion micro-benchmarks: one group per experiment axis, measuring
//! the steady-state primitive each experiment's wall-clock numbers rest
//! on. The experiment binaries (`src/bin/e*.rs`) produce the paper-shaped
//! tables; these benches give stable per-operation numbers.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use streamrel_baseline::{MiniMr, MrConfig, StoreFirst};
use streamrel_core::{Db, DbOptions};
use streamrel_types::time::MINUTES;
use streamrel_types::Row;
use streamrel_workload::{ClickstreamGen, NetsecGen};

/// E1/E2 axis: cost of answering the report — batch scan vs active lookup.
fn bench_report_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_report_latency");
    for &n in &[10_000usize, 50_000] {
        // Store-first setup.
        let mut sf = StoreFirst::new(&NetsecGen::create_table_sql("raw"), "raw").unwrap();
        let mut gen = NetsecGen::new(1, 2_000, 0, 10_000);
        let rows = gen.take_rows(n);
        sf.load(rows.clone()).unwrap();
        let report = NetsecGen::report_sql("raw");
        group.bench_with_input(BenchmarkId::new("batch_scan", n), &n, |b, _| {
            b.iter(|| sf.run_report(&report).unwrap())
        });

        // Continuous setup.
        let db = Db::in_memory(DbOptions::default());
        db.execute(&NetsecGen::create_stream_sql("events")).unwrap();
        db.execute(
            "CREATE TABLE deny_report (src_ip varchar(40), denies bigint, \
             total_bytes bigint, w timestamp)",
        )
        .unwrap();
        db.execute(&NetsecGen::continuous_sql("events", "deny_now", "1 minute"))
            .unwrap();
        db.execute("CREATE CHANNEL ch FROM deny_now INTO deny_report APPEND")
            .unwrap();
        db.ingest_batch("events", rows).unwrap();
        db.heartbeat("events", gen.clock() + MINUTES).unwrap();
        group.bench_with_input(BenchmarkId::new("active_lookup", n), &n, |b, _| {
            b.iter(|| {
                db.execute(
                    "SELECT src_ip, sum(denies) d FROM deny_report \
                     GROUP BY src_ip ORDER BY d DESC LIMIT 20",
                )
                .unwrap()
                .rows()
            })
        });
    }
    group.finish();
}

/// E3 axis: per-tuple ingest cost with N CQs, shared vs unshared.
fn bench_ingest_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_ingest_per_tuple");
    group.sample_size(10);
    for &n_cqs in &[1usize, 16] {
        for sharing in [false, true] {
            let label = format!(
                "{}cq_{}",
                n_cqs,
                if sharing { "shared" } else { "unshared" }
            );
            group.bench_function(BenchmarkId::new("ingest_10k", label), |b| {
                b.iter_batched(
                    || {
                        let opts = if sharing {
                            DbOptions::default()
                        } else {
                            DbOptions::default().without_sharing()
                        };
                        let db = Db::in_memory(opts);
                        db.execute(&ClickstreamGen::create_stream_sql("clicks"))
                            .unwrap();
                        for i in 0..n_cqs {
                            db.execute(&format!(
                                "SELECT url, count(*) c FROM clicks \
                                 <VISIBLE '{} minutes' ADVANCE '1 minute'> GROUP BY url",
                                1 + i % 4
                            ))
                            .unwrap();
                        }
                        let mut gen = ClickstreamGen::new(3, 1_000, 0, 5_000);
                        (db, gen.take_rows(10_000))
                    },
                    |(db, rows): (Db, Vec<Row>)| db.ingest_batch("clicks", rows).unwrap(),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// E4 axis: one MV full refresh vs one window close at equal data volume.
fn bench_refresh_vs_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_refresh_vs_window");
    group.sample_size(20);
    let n = 60_000usize; // one minute at 1k/s
    group.bench_function("mv_full_refresh_60k_rows", |b| {
        b.iter_batched(
            || {
                let mut mv = streamrel_baseline::BatchMatView::new(
                    &ClickstreamGen::create_table_sql("raw"),
                    "raw",
                    "atime",
                    "CREATE TABLE v (url varchar(1024), c bigint)",
                    "v",
                    "SELECT url, count(*) c FROM raw GROUP BY url",
                    streamrel_baseline::RefreshMode::Full,
                )
                .unwrap();
                let mut gen = ClickstreamGen::new(4, 1_000, 0, 1_000);
                mv.load(gen.take_rows(n)).unwrap();
                (mv, gen.clock())
            },
            |(mut mv, now)| mv.refresh(now).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("cq_window_close_60k_rows", |b| {
        b.iter_batched(
            || {
                let db = Db::in_memory(DbOptions::default());
                db.execute(&ClickstreamGen::create_stream_sql("clicks"))
                    .unwrap();
                db.execute(
                    "CREATE STREAM agg AS SELECT url, count(*) c, cq_close(*) w \
                     FROM clicks <TUMBLING '1 minute'> GROUP BY url",
                )
                .unwrap();
                let mut gen = ClickstreamGen::new(4, 1_000, 0, 1_000);
                db.ingest_batch("clicks", gen.take_rows(n)).unwrap();
                (db, gen.clock() + MINUTES)
            },
            |(db, end)| db.heartbeat("clicks", end).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// E5 axis: one full mini-MR job over stored rows.
fn bench_minimr(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_minimr_job");
    group.sample_size(10);
    let mut gen = NetsecGen::new(5, 2_000, 0, 10_000);
    let rows = gen.take_rows(100_000);
    group.bench_function("grouped_sum_100k_in_memory", |b| {
        let mut mr = MiniMr::new(MrConfig::default());
        b.iter(|| mr.run_grouped_sum(&rows, MiniMr::netsec_deny_map).unwrap())
    });
    group.finish();
}

/// E7 axis: storage recovery (WAL replay) cost.
fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_wal_replay");
    group.sample_size(10);
    let dir = std::env::temp_dir().join(format!("streamrel-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Db::open(&dir, DbOptions::default()).unwrap();
        db.execute(&ClickstreamGen::create_table_sql("raw"))
            .unwrap();
        let id = db.engine().table_id("raw").unwrap();
        let mut gen = ClickstreamGen::new(6, 1_000, 0, 1_000);
        let rows = gen.take_rows(20_000);
        db.engine()
            .with_txn(|x| db.engine().insert_many(x, id, rows))
            .unwrap();
    }
    group.bench_function("open_with_20k_row_wal", |b| {
        b.iter(|| Db::open(&dir, DbOptions::default()).unwrap())
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// F1/E8 axis: snapshot query execution primitives.
fn bench_sql_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_primitives");
    let db = Db::in_memory(DbOptions::default());
    db.execute("CREATE TABLE t (k varchar(16), v integer, ts timestamp)")
        .unwrap();
    let id = db.engine().table_id("t").unwrap();
    let mut gen = ClickstreamGen::new(7, 100, 0, 1_000);
    let rows: Vec<Row> = gen
        .take_rows(50_000)
        .into_iter()
        .map(|r| vec![r[0].clone(), streamrel_types::Value::Int(1), r[1].clone()])
        .collect();
    db.engine()
        .with_txn(|x| db.engine().insert_many(x, id, rows))
        .unwrap();
    group.bench_function("parse_analyze_example2", |b| {
        b.iter(|| {
            streamrel_sql::parse_statement(
                "SELECT url, count(*) url_count \
                 FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
                 GROUP by url ORDER by url_count desc LIMIT 10",
            )
            .unwrap()
        })
    });
    group.bench_function("scan_filter_agg_50k", |b| {
        b.iter(|| {
            db.execute("SELECT k, sum(v) s FROM t WHERE v > 0 GROUP BY k ORDER BY s DESC LIMIT 10")
                .unwrap()
                .rows()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_report_latency,
    bench_ingest_sharing,
    bench_refresh_vs_window,
    bench_minimr,
    bench_recovery,
    bench_sql_primitives
);
criterion_main!(benches);
