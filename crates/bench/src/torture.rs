//! Crash-recovery torture harness (DESIGN.md §10).
//!
//! Two deterministic sweeps, both built on `streamrel-faults`:
//!
//! * [`engine_sweep`] — a seeded workload of logical storage steps
//!   (DDL, transactional inserts/deletes, catalog puts, checkpoints,
//!   aborted transactions) runs once fault-free to record the state
//!   digest at every step boundary; then the same workload is crashed at
//!   **every mutating I/O operation index** in turn, the frozen disk
//!   image is reopened, and the recovered state must (a) equal some step
//!   boundary at or after the last step whose commit fsync returned
//!   (atomicity + durability), and (b) after re-driving the remaining
//!   steps, be byte-identical to the uncrashed reference's final digest.
//! * [`cq_sweep`] — the same protocol over the full SQL/CQ stack: a
//!   tumbling-window CQ archiving into an Active Table through an APPEND
//!   channel, plus a raw archive. After each crash the harness reopens,
//!   rebuilds in-flight window state from the raw archive past the
//!   watermark (the paper's §4 recovery story), re-drives the ingest
//!   steps whose tuples never became durable, and requires the final
//!   archive + watermark digest to be byte-identical to the reference.
//!
//! Every divergence is reported as a [`Failure`] carrying the seed and
//! crash-op index; `FaultPlan::crash_at(seed, op)` reproduces it exactly.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamrel_core::{Db, DbOptions};
use streamrel_cq::recovery::{archive_watermark, replay_rows_after};
use streamrel_faults::{DiskImage, FaultIo, FaultPlan};
use streamrel_storage::{Io, StorageEngine, SyncMode};
use streamrel_types::{Column, DataType, Result, Value};

/// Simulated data directory (never touches the real filesystem).
const SIM_DIR: &str = "/sim/db";

/// One divergence found by a sweep: the reproduction recipe plus what
/// went wrong.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Workload + fault seed.
    pub seed: u64,
    /// Mutating-op index the crash was injected at.
    pub op: u64,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// The frozen disk image, for artifact upload.
    pub image: DiskImage,
}

/// Result of one sweep: how many crash points ran and which diverged.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Crash-op indices exercised.
    pub crash_points: u64,
    /// Divergences (empty = recovery proven over this workload).
    pub failures: Vec<Failure>,
}

impl SweepOutcome {
    /// Merge another outcome into this one.
    pub fn merge(&mut self, other: SweepOutcome) {
        self.crash_points += other.crash_points;
        self.failures.extend(other.failures);
    }
}

// ---- engine-level sweep ----------------------------------------------------

/// One logical storage step. Steps are *value-addressed* (tables by
/// name, rows by content) so they can be re-driven against a recovered
/// engine whose heap slots and transaction ids differ from the
/// reference run's.
#[derive(Debug, Clone)]
enum EngineStep {
    CreateTable(String),
    InsertBatch { table: String, base: i64, n: usize },
    DeleteMin { table: String },
    KvPut { key: String, value: String },
    Checkpoint,
    AbortedInsert { table: String, v: i64 },
}

fn torture_schema() -> streamrel_types::Schema {
    streamrel_types::Schema::new(vec![
        Column::not_null("k", DataType::Text),
        Column::new("v", DataType::Int),
    ])
    .expect("static schema")
}

/// Deterministic step list for a seed. A monotone counter keeps every
/// inserted row unique, which makes every step-boundary digest distinct
/// (except for steps that are deliberately digest-neutral: checkpoints,
/// aborted transactions, deletes from empty tables — re-driving those is
/// idempotent, so boundary ambiguity is harmless).
fn gen_engine_steps(seed: u64, n: usize) -> Vec<EngineStep> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x544f_5254);
    let mut tables: Vec<String> = Vec::new();
    let mut counter: i64 = 0;
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = if tables.is_empty() {
            0
        } else {
            rng.gen_range(0..100u32)
        };
        let step = if tables.is_empty() || (roll < 8 && tables.len() < 6) {
            let name = format!("t{}", tables.len());
            tables.push(name.clone());
            EngineStep::CreateTable(name)
        } else if roll < 55 {
            let table = tables[rng.gen_range(0..tables.len())].clone();
            let n = rng.gen_range(1..4usize);
            let base = counter;
            counter += n as i64;
            EngineStep::InsertBatch { table, base, n }
        } else if roll < 70 {
            EngineStep::DeleteMin {
                table: tables[rng.gen_range(0..tables.len())].clone(),
            }
        } else if roll < 82 {
            counter += 1;
            EngineStep::KvPut {
                key: format!("torture.k{}", rng.gen_range(0..8u32)),
                value: format!("v{counter}"),
            }
        } else if roll < 90 {
            EngineStep::Checkpoint
        } else {
            counter += 1;
            EngineStep::AbortedInsert {
                table: tables[rng.gen_range(0..tables.len())].clone(),
                v: counter,
            }
        };
        steps.push(step);
    }
    steps
}

/// Commit domain a table's inserts are routed to when the sweep runs
/// with multiple WAL logs: table `tN` homes on log `N % wal_shards`.
/// Deletes deliberately go to the *next* domain, so a table's insert and
/// its delete live in different logs — recovery must merge the logs in
/// global-LSN order or the delete replays before the insert it targets.
fn table_home(table: &str, wal_shards: usize) -> usize {
    let idx: usize = table.trim_start_matches('t').parse().unwrap_or(0);
    idx % wal_shards.max(1)
}

fn apply_engine_step(e: &StorageEngine, step: &EngineStep, wal_shards: usize) -> Result<()> {
    match step {
        EngineStep::CreateTable(name) => {
            e.create_table(name, torture_schema())?;
        }
        EngineStep::InsertBatch { table, base, n } => {
            let id = e.table_id(table)?;
            e.with_txn_on(table_home(table, wal_shards), |x| {
                for i in 0..*n {
                    let v = base + i as i64;
                    e.insert(x, id, vec![Value::text(format!("k{v}")), Value::Int(v)])?;
                }
                Ok(())
            })?;
        }
        EngineStep::DeleteMin { table } => {
            let id = e.table_id(table)?;
            e.with_txn_on(
                (table_home(table, wal_shards) + 1) % wal_shards.max(1),
                |x| {
                    let snap = e.snapshot_for(x);
                    let mut rows = e.scan(id, &snap)?;
                    rows.sort_by_key(|(_, r)| match r.get(1) {
                        Some(Value::Int(v)) => *v,
                        _ => i64::MAX,
                    });
                    if let Some((tid, _)) = rows.first() {
                        e.delete(x, *tid)?;
                    }
                    Ok(())
                },
            )?;
        }
        EngineStep::KvPut { key, value } => e.catalog_put(key, value)?,
        EngineStep::Checkpoint => e.checkpoint()?,
        EngineStep::AbortedInsert { table, v } => {
            let id = e.table_id(table)?;
            let x = e.begin_on(table_home(table, wal_shards))?;
            e.insert(x, id, vec![Value::text(format!("a{v}")), Value::Int(*v)])?;
            e.abort(x)?;
        }
    }
    Ok(())
}

/// Canonical state digest: every table (sorted by name) with its visible
/// rows (sorted by content), plus the whole catalog KV area. Slot
/// numbers, transaction ids and table ids are deliberately excluded —
/// recovery renumbers them freely.
pub fn engine_digest(e: &StorageEngine) -> Result<String> {
    let mut out = String::new();
    let mut names = e.table_names();
    names.sort();
    let snap = e.snapshot();
    for name in names {
        let id = e.table_id(&name)?;
        let mut rows: Vec<String> = e
            .scan(id, &snap)?
            .into_iter()
            .map(|(_, r)| format!("{r:?}"))
            .collect();
        rows.sort();
        out.push_str(&format!("table {name}: {}\n", rows.join(" | ")));
    }
    for (k, v) in e.catalog_scan("") {
        out.push_str(&format!("kv {k}={v}\n"));
    }
    Ok(out)
}

fn open_engine(io: &Arc<FaultIo>, wal_shards: usize) -> Result<StorageEngine> {
    let dynio: Arc<dyn Io> = io.clone();
    StorageEngine::open_with_opts(SIM_DIR, SyncMode::Fsync, dynio, wal_shards)
}

/// Crash-at-every-op sweep over the storage-level workload with a single
/// commit domain (the pre-§13 layout; kept as the baseline sweep).
pub fn engine_sweep(seed: u64, nsteps: usize) -> Result<SweepOutcome> {
    engine_sweep_with_logs(seed, nsteps, 1)
}

/// Crash-at-every-op sweep over the storage-level workload with
/// `wal_shards` independent commit domains. Inserts home on a table's own
/// log while deletes are routed to the *next* log (see [`table_home`]),
/// so every crash point also proves the cross-log LSN-merge recovery cut
/// and per-shard checkpoint epoch stamping (DESIGN.md §13).
pub fn engine_sweep_with_logs(seed: u64, nsteps: usize, wal_shards: usize) -> Result<SweepOutcome> {
    sweep_engine_steps(seed, &gen_engine_steps(seed, nsteps), wal_shards)
}

/// Deterministic interleaving for ISSUE-7 satellite 3: data in several
/// domains, then checkpoints — so the sweep crashes at every op *between*
/// the checkpoint's manifest rename and each per-shard WAL reset. A
/// recovery that discarded more than the genuinely stale logs (or kept a
/// stale one) fails the boundary/convergence checks. The post-checkpoint
/// traffic proves the recovered engine still routes and replays cleanly.
pub fn checkpoint_reset_sweep(seed: u64, wal_shards: usize) -> Result<SweepOutcome> {
    let t = |i: usize| format!("t{i}");
    let mut steps = Vec::new();
    for i in 0..wal_shards.max(2) {
        steps.push(EngineStep::CreateTable(t(i)));
        steps.push(EngineStep::InsertBatch {
            table: t(i),
            base: (i as i64) * 10,
            n: 2,
        });
    }
    steps.push(EngineStep::Checkpoint);
    steps.push(EngineStep::InsertBatch {
        table: t(0),
        base: 100,
        n: 2,
    });
    steps.push(EngineStep::DeleteMin { table: t(1) });
    steps.push(EngineStep::Checkpoint);
    steps.push(EngineStep::InsertBatch {
        table: t(1),
        base: 200,
        n: 1,
    });
    sweep_engine_steps(seed, &steps, wal_shards)
}

fn sweep_engine_steps(seed: u64, steps: &[EngineStep], wal_shards: usize) -> Result<SweepOutcome> {
    // Reference run: no faults; digest at every step boundary.
    let io = FaultIo::new(FaultPlan::none(seed));
    let e = open_engine(&io, wal_shards)?;
    let mut boundaries = vec![engine_digest(&e)?];
    for s in steps {
        apply_engine_step(&e, s, wal_shards)?;
        boundaries.push(engine_digest(&e)?);
    }
    let total_ops = io.ops();
    drop(e);

    let mut outcome = SweepOutcome {
        crash_points: total_ops,
        failures: Vec::new(),
    };
    for op in 0..total_ops {
        if let Some(f) = engine_crash_once(seed, steps, &boundaries, op, wal_shards)? {
            outcome.failures.push(f);
        }
    }
    Ok(outcome)
}

/// Run the workload with a crash injected at mutating-op `op`, recover,
/// and check both invariants. `None` = this crash point is proven.
fn engine_crash_once(
    seed: u64,
    steps: &[EngineStep],
    boundaries: &[String],
    op: u64,
    wal_shards: usize,
) -> Result<Option<Failure>> {
    let io = FaultIo::new(FaultPlan::crash_at(seed, op).with_bit_flip());
    let mut completed = 0usize;
    if let Ok(e) = open_engine(&io, wal_shards) {
        for s in steps {
            if apply_engine_step(&e, s, wal_shards).is_err() {
                break;
            }
            completed += 1;
        }
    }
    let image = io.frozen_image()?;
    let fail = |detail: String| {
        Ok(Some(Failure {
            seed,
            op,
            detail,
            image: image.clone(),
        }))
    };

    // Power-loss restart: reopen over the frozen image, no faults.
    let rio = FaultIo::from_image(&image, FaultPlan::none(0));
    let e = match open_engine(&rio, wal_shards) {
        Ok(e) => e,
        Err(err) => return fail(format!("recovery open failed: {err}")),
    };
    let got = engine_digest(&e)?;

    // Atomicity + durability: the recovered state is a step boundary, at
    // or (if the crashing step's records all landed) one past the last
    // step whose commit fsync was acknowledged.
    let Some(rel) = boundaries[completed..].iter().position(|b| *b == got) else {
        return fail(format!(
            "recovered state matches no boundary >= {completed}:\n{got}"
        ));
    };
    let resume = completed + rel;

    // Convergence: re-driving the remaining steps lands byte-identical
    // to the uncrashed reference.
    for (i, s) in steps[resume..].iter().enumerate() {
        if let Err(err) = apply_engine_step(&e, s, wal_shards) {
            return fail(format!("re-drive failed at step {}: {err}", resume + i));
        }
    }
    let fin = engine_digest(&e)?;
    if fin != boundaries[boundaries.len() - 1] {
        return fail(format!(
            "re-driven final state diverges from reference:\n--- got ---\n{fin}"
        ));
    }
    Ok(None)
}

// ---- CQ-level sweep --------------------------------------------------------

/// One logical CQ workload step: ingest a tuple (timestamps strictly
/// increase, so a tuple is identified by its timestamp) or heartbeat.
#[derive(Debug, Clone)]
enum CqStep {
    Ingest { k: &'static str, ts: i64 },
    Heartbeat { ts: i64 },
}

const SECOND: i64 = 1_000_000;
const MINUTE: i64 = 60 * SECOND;

fn gen_cq_steps(seed: u64, tuples: usize) -> Vec<CqStep> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0c0f_fee0);
    let keys = ["a", "b", "c"];
    let mut ts = 0i64;
    let mut steps = Vec::new();
    for _ in 0..tuples {
        ts += rng.gen_range(1..30i64) * SECOND;
        steps.push(CqStep::Ingest {
            k: keys[rng.gen_range(0..keys.len())],
            ts,
        });
        if rng.gen_bool(0.2) {
            // Close out the current minute.
            let hb = (ts / MINUTE + 1) * MINUTE;
            steps.push(CqStep::Heartbeat { ts: hb });
            ts = hb;
        }
    }
    // Final heartbeat closes every remaining window so the reference and
    // recovered runs are compared with no in-flight state.
    steps.push(CqStep::Heartbeat {
        ts: (ts / MINUTE + 2) * MINUTE,
    });
    steps
}

fn cq_options() -> DbOptions {
    // Single shard, one WAL log, no worker pool: the op sequence must be
    // identical on every run (and every host) for crash-at-op-N to be
    // meaningful; a host-derived wal_shards would shift op indices.
    DbOptions::default()
        .with_sync(SyncMode::Fsync)
        .with_shards(1)
        .with_wal_shards(1)
        .with_pool_workers(0)
}

fn cq_setup(db: &Db) -> Result<()> {
    db.execute("CREATE STREAM s (k varchar(16), ts timestamp CQTIME USER)")?;
    db.execute("CREATE TABLE agg (k varchar(16), c bigint, w timestamp)")?;
    db.execute(
        "CREATE STREAM per_minute AS SELECT k, count(*) c, cq_close(*) w \
         FROM s <TUMBLING '1 minute'> GROUP BY k",
    )?;
    db.execute("CREATE CHANNEL ch FROM per_minute INTO agg APPEND")?;
    db.execute("CREATE TABLE raw (k varchar(16), ts timestamp)")?;
    db.execute("CREATE CHANNEL raw_ch FROM s INTO raw APPEND")?;
    Ok(())
}

/// One CQ-level sweep flavour: which options, which standing query, and
/// how far before the watermark the raw replay must reach.
struct SweepSpec {
    options: fn() -> DbOptions,
    setup: fn(&Db) -> Result<()>,
    /// `visible - advance`: the span of already-archived raw rows a
    /// sliding window still needs to rebuild its in-flight state. Zero
    /// for tumbling windows.
    replay_slack: i64,
    /// Require the standing CQ to run on the IVM path after every open
    /// (reference run *and* each recovery) — a silent fallback would
    /// make the sweep prove the wrong executor.
    require_ivm: bool,
}

const CQ_SPEC: SweepSpec = SweepSpec {
    options: cq_options,
    setup: cq_setup,
    replay_slack: 0,
    require_ivm: false,
};

// ---- IVM sweep: delta state crashed mid-slice ------------------------------

fn ivm_options() -> DbOptions {
    // Sharing ablated so the standing query lowers to the IVM path.
    cq_options().without_sharing()
}

/// A *sliding* grouped count (`VISIBLE 2m ADVANCE 1m`, slice width 1m):
/// a crash lands mid-slice with partial aggregate state in memory, and
/// recovery must refold the delta from the raw archive — including the
/// already-archived minute before the watermark that the next window
/// still sees.
fn ivm_setup(db: &Db) -> Result<()> {
    db.execute("CREATE STREAM s (k varchar(16), ts timestamp CQTIME USER)")?;
    db.execute("CREATE TABLE agg (k varchar(16), c bigint, w timestamp)")?;
    db.execute(
        "CREATE STREAM winagg AS SELECT k, count(*) c, cq_close(*) w \
         FROM s <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY k",
    )?;
    db.execute("CREATE CHANNEL ch FROM winagg INTO agg APPEND")?;
    db.execute("CREATE TABLE raw (k varchar(16), ts timestamp)")?;
    db.execute("CREATE CHANNEL raw_ch FROM s INTO raw APPEND")?;
    Ok(())
}

const IVM_SPEC: SweepSpec = SweepSpec {
    options: ivm_options,
    setup: ivm_setup,
    replay_slack: MINUTE, // visible 2m - advance 1m
    require_ivm: true,
};

fn ivm_lowered(db: &Db) -> bool {
    let q = format!(
        "SELECT value FROM {}metrics WHERE name = 'ivm.lowered'",
        streamrel_obs::RESERVED_PREFIX
    );
    match db.execute(&q) {
        Ok(streamrel_core::ExecResult::Rows(rel)) => rel
            .rows()
            .first()
            .and_then(|r| r.first())
            .is_some_and(|v| matches!(v, Value::Int(n) if *n >= 1)),
        _ => false,
    }
}

fn apply_cq_step(db: &Db, step: &CqStep) -> Result<()> {
    match step {
        CqStep::Ingest { k, ts } => db.ingest("s", vec![Value::text(*k), Value::Timestamp(*ts)]),
        CqStep::Heartbeat { ts } => db.heartbeat("s", *ts),
    }
}

/// Canonical CQ digest: archived windows, the raw archive, and every CQ
/// watermark — the full durable footprint of the standing query.
pub fn cq_digest(db: &Db) -> Result<String> {
    let mut out = String::new();
    for t in ["agg", "raw"] {
        let rel = match db.execute(&format!("SELECT * FROM {t}"))? {
            streamrel_core::ExecResult::Rows(rel) => rel,
            other => {
                return Err(streamrel_types::Error::Io(format!(
                    "unexpected result {other:?}"
                )))
            }
        };
        let mut rows: Vec<String> = rel.rows().iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        out.push_str(&format!("table {t}: {}\n", rows.join(" | ")));
    }
    for (k, v) in db.engine().catalog_scan("cq_watermark.") {
        out.push_str(&format!("{k}={v}\n"));
    }
    Ok(out)
}

fn open_db(io: &Arc<FaultIo>, spec: &SweepSpec) -> Result<Db> {
    let dynio: Arc<dyn Io> = io.clone();
    Db::open_with_io(SIM_DIR, (spec.options)(), dynio)
}

/// Crash-at-every-op sweep over the CQ workload (ingest phase; DDL crash
/// points are covered by [`engine_sweep`]'s `CreateTable`/`KvPut` steps).
pub fn cq_sweep(seed: u64, tuples: usize) -> Result<SweepOutcome> {
    spec_sweep(seed, tuples, &CQ_SPEC)
}

/// Crash-at-every-op sweep over the IVM workload: same recovery protocol
/// as [`cq_sweep`], but the standing query runs on the incremental path
/// and a crash lands mid-slice. The recovered, re-driven archive must be
/// byte-identical to the uncrashed reference.
pub fn ivm_sweep(seed: u64, tuples: usize) -> Result<SweepOutcome> {
    spec_sweep(seed, tuples, &IVM_SPEC)
}

fn spec_sweep(seed: u64, tuples: usize, spec: &SweepSpec) -> Result<SweepOutcome> {
    let steps = gen_cq_steps(seed, tuples);

    // Reference run.
    let io = FaultIo::new(FaultPlan::none(seed));
    let db = open_db(&io, spec)?;
    (spec.setup)(&db)?;
    if spec.require_ivm && !ivm_lowered(&db) {
        return Err(streamrel_types::Error::stream(
            "sweep CQ did not lower to the IVM path",
        ));
    }
    let setup_ops = io.ops();
    for s in &steps {
        apply_cq_step(&db, s)?;
    }
    let reference = cq_digest(&db)?;
    let total_ops = io.ops();
    drop(db);

    let mut outcome = SweepOutcome {
        crash_points: total_ops - setup_ops,
        failures: Vec::new(),
    };
    for op in setup_ops..total_ops {
        if let Some(f) = spec_crash_once(seed, &steps, &reference, op, spec)? {
            outcome.failures.push(f);
        }
    }
    Ok(outcome)
}

fn spec_crash_once(
    seed: u64,
    steps: &[CqStep],
    reference: &str,
    op: u64,
    spec: &SweepSpec,
) -> Result<Option<Failure>> {
    let io = FaultIo::new(FaultPlan::crash_at(seed, op).with_bit_flip());
    if let Ok(db) = open_db(&io, spec) {
        if (spec.setup)(&db).is_ok() {
            for s in steps {
                if apply_cq_step(&db, s).is_err() {
                    break;
                }
            }
        }
    }
    let image = io.frozen_image()?;
    let fail = |detail: String| {
        Ok(Some(Failure {
            seed,
            op,
            detail,
            image: image.clone(),
        }))
    };

    // Restart: recovery replays the WAL, rebuilds DDL objects and
    // restores each CQ's position from its Active-Table watermark.
    let rio = FaultIo::from_image(&image, FaultPlan::none(0));
    let db = match open_db(&rio, spec) {
        Ok(db) => db,
        Err(err) => return fail(format!("recovery open failed: {err}")),
    };
    if spec.require_ivm && !ivm_lowered(&db) {
        return fail("recovered CQ did not re-lower to the IVM path".into());
    }

    // Rebuild in-flight window state from the raw archive (§4): replay
    // the raw rows past the watermark through the stream, bypassing the
    // raw channel so they are not archived twice. A sliding window's
    // next close still sees `replay_slack` of archived time *before*
    // the watermark, so the replay bound reaches back that far.
    let wm = archive_watermark(db.engine(), "agg", "w")?.unwrap_or(i64::MIN);
    let replay = replay_rows_after(
        db.engine(),
        "raw",
        "ts",
        wm.saturating_sub(spec.replay_slack),
    )?;
    db.execute("DROP CHANNEL raw_ch")?;
    for r in replay {
        if let Err(err) = db.ingest("s", r) {
            return fail(format!("raw replay re-ingest failed: {err}"));
        }
    }
    db.execute("CREATE CHANNEL raw_ch FROM s INTO raw APPEND")?;

    // Re-drive: tuples that never became durable (absent from the raw
    // archive) are re-ingested; heartbeats are replayed wholesale (a
    // stale heartbeat closes nothing).
    let durable: HashSet<i64> = match db.execute("SELECT ts FROM raw")? {
        streamrel_core::ExecResult::Rows(rel) => rel
            .rows()
            .iter()
            .filter_map(|r| match r.first() {
                Some(Value::Timestamp(t)) => Some(*t),
                _ => None,
            })
            .collect(),
        _ => HashSet::new(),
    };
    for s in steps {
        let redo = match s {
            CqStep::Ingest { ts, .. } => !durable.contains(ts),
            CqStep::Heartbeat { .. } => true,
        };
        if redo {
            if let Err(err) = apply_cq_step(&db, s) {
                return fail(format!("re-drive failed on {s:?}: {err}"));
            }
        }
    }
    let got = cq_digest(&db)?;
    if got != reference {
        return fail(format!(
            "CQ state diverges from reference:\n--- got ---\n{got}--- want ---\n{reference}"
        ));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_steps_are_deterministic() {
        let a = format!("{:?}", gen_engine_steps(9, 30));
        let b = format!("{:?}", gen_engine_steps(9, 30));
        assert_eq!(a, b);
        let c = format!("{:?}", gen_engine_steps(10, 30));
        assert_ne!(a, c);
    }

    #[test]
    fn small_engine_sweep_is_clean() {
        let out = engine_sweep(0xBEEF, 12).unwrap();
        assert!(out.crash_points > 10);
        assert!(
            out.failures.is_empty(),
            "first failure: seed={} op={} — {}",
            out.failures[0].seed,
            out.failures[0].op,
            out.failures[0].detail
        );
    }

    #[test]
    fn small_multilog_sweep_is_clean() {
        let out = engine_sweep_with_logs(0xBEEF, 12, 3).unwrap();
        assert!(out.crash_points > 10);
        assert!(
            out.failures.is_empty(),
            "first failure: seed={} op={} — {}",
            out.failures[0].seed,
            out.failures[0].op,
            out.failures[0].detail
        );
    }

    #[test]
    fn checkpoint_reset_interleaving_is_clean() {
        let out = checkpoint_reset_sweep(7, 3).unwrap();
        assert!(out.crash_points > 10);
        assert!(
            out.failures.is_empty(),
            "first failure: seed={} op={} — {}",
            out.failures[0].seed,
            out.failures[0].op,
            out.failures[0].detail
        );
    }

    #[test]
    fn small_cq_sweep_is_clean() {
        let out = cq_sweep(0xBEEF, 6).unwrap();
        assert!(out.crash_points > 10);
        assert!(
            out.failures.is_empty(),
            "first failure: seed={} op={} — {}",
            out.failures[0].seed,
            out.failures[0].op,
            out.failures[0].detail
        );
    }

    #[test]
    fn small_ivm_sweep_is_clean() {
        let out = ivm_sweep(0xBEEF, 6).unwrap();
        assert!(out.crash_points > 10);
        assert!(
            out.failures.is_empty(),
            "first failure: seed={} op={} — {}",
            out.failures[0].seed,
            out.failures[0].op,
            out.failures[0].detail
        );
    }
}
