//! Race torture: seeded chaos scheduling over the engine's concurrency
//! invariants (DESIGN.md §14).
//!
//! Each suite runs a **fixed** deterministic workload twice: once
//! serially with no perturbation to produce a canonical reference, then
//! concurrently with [`streamrel_faults::chaos`] armed under the sweep
//! seed and the runtime lock witness validating every named-lock
//! acquisition against the generated global order. The contract is
//! byte-identical: for every seed the concurrent run's observable
//! results must equal the reference exactly — any divergence is a real
//! ordering bug, reported as a [`RaceFailure`] carrying the seed that
//! reproduces it.
//!
//! * [`parallel_equivalence`] — concurrent sharded ingest across three
//!   streams vs the single-shard inline-evaluation baseline; every
//!   subscription's window sequence must match byte for byte.
//! * [`group_commit_conservation`] — four writer threads ingest through
//!   the sharded WAL's group-commit path into archived Active Tables;
//!   every tuple must be counted exactly once, both live and after a
//!   simulated restart from the disk image.
//! * [`subscription_conservation`] — four subscribers drain one CQ from
//!   their own threads while the writer is still ingesting; each must
//!   observe the identical, complete, close-ordered window sequence.

use std::sync::Arc;

use streamrel_core::{Db, DbOptions, SubscriptionId};
use streamrel_faults::{chaos, FaultIo, FaultPlan};
use streamrel_types::Value;

/// Simulated data directory for the durable suite.
const SIM_DIR: &str = "/sim/race";

/// One divergence: the reproduction recipe plus what went wrong.
#[derive(Debug, Clone)]
pub struct RaceFailure {
    /// Which suite diverged.
    pub suite: &'static str,
    /// Chaos seed that reproduces the failure.
    pub seed: u64,
    /// Human-readable description of the divergence.
    pub detail: String,
}

/// One race suite: a name and a chaos-perturbed invariant check.
type Suite = (&'static str, fn() -> Result<(), String>);

/// Result of sweeping one seed across every suite.
#[derive(Debug, Default)]
pub struct RaceOutcome {
    /// Synchronization points perturbed across the suites.
    pub chaos_points: u64,
    /// Divergences (empty = all invariants held under this schedule).
    pub failures: Vec<RaceFailure>,
}

/// Run every suite under `seed`. The lock witness is enabled for the
/// duration, so a lock-order inversion or deadlock panics inside the
/// suite and is reported as a failure rather than aborting the sweep.
pub fn run_seed(seed: u64) -> RaceOutcome {
    let mut outcome = RaceOutcome::default();
    parking_lot::witness::enable();
    let suites: [Suite; 3] = [
        ("parallel-equivalence", parallel_equivalence),
        ("group-commit-conservation", group_commit_conservation),
        ("subscription-conservation", subscription_conservation),
    ];
    for (name, suite) in suites {
        chaos::arm(seed);
        let run = std::panic::catch_unwind(suite);
        chaos::disarm();
        outcome.chaos_points += chaos::ops();
        let detail = match run {
            Ok(Ok(())) => continue,
            Ok(Err(detail)) => detail,
            Err(panic) => format!("panic: {}", panic_message(&panic)),
        };
        outcome.failures.push(RaceFailure {
            suite: name,
            seed,
            detail,
        });
    }
    parking_lot::witness::disable();
    outcome
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---- suite 1: parallel equivalence -----------------------------------------

const STREAMS: usize = 3;

/// The fixed workload: per stream, batches of (value, clock-gap) rows.
/// Derived from splitmix64 so every run — reference and perturbed —
/// ingests the same bytes.
fn workload() -> Vec<Vec<Vec<(i64, i64)>>> {
    const WORKLOAD_SEED: u64 = 0xC0FFEE;
    (0..STREAMS as u64)
        .map(|s| {
            (0..6u64)
                .map(|b| {
                    (0..8u64)
                        .map(|r| {
                            let d = chaos::splitmix64(WORKLOAD_SEED ^ (s << 32) ^ (b << 16) ^ r);
                            ((d % 100) as i64, (d >> 32) as i64 % 20_000_000)
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn setup_streams(db: &Db) -> Vec<SubscriptionId> {
    let mut subs = Vec::new();
    for i in 0..STREAMS {
        db.execute(&format!(
            "CREATE STREAM s{i} (v integer, ts timestamp CQTIME USER)"
        ))
        .unwrap();
        subs.push(
            db.execute(&format!(
                "SELECT count(*) c, sum(v) t FROM s{i} <TUMBLING '1 minute'>"
            ))
            .unwrap()
            .subscription(),
        );
        subs.push(
            db.execute(&format!(
                "SELECT sum(v) t, min(v) lo FROM s{i} \
                 <VISIBLE '2 minutes' ADVANCE '1 minute'>"
            ))
            .unwrap()
            .subscription(),
        );
    }
    subs
}

/// Gap-encoded batches to absolute-timestamp rows.
fn materialize(batches: &[Vec<(i64, i64)>]) -> Vec<Vec<Vec<Value>>> {
    let mut clock = 0i64;
    batches
        .iter()
        .map(|batch| {
            batch
                .iter()
                .map(|&(v, gap)| {
                    clock += gap;
                    vec![Value::Int(v), Value::Timestamp(clock)]
                })
                .collect()
        })
        .collect()
}

/// Canonical form of one subscription's output: close timestamp plus
/// the debug rendering of the relation's rows (total, deterministic).
fn drain_canonical(db: &Db, subs: &[SubscriptionId]) -> Vec<Vec<(i64, String)>> {
    subs.iter()
        .map(|&sub| {
            db.poll(sub)
                .unwrap()
                .into_iter()
                .map(|o| (o.close, format!("{:?}", o.relation.rows())))
                .collect()
        })
        .collect()
}

fn parallel_equivalence() -> Result<(), String> {
    let workload = workload();
    // Reference: one shard, inline evaluation, serial ingest, unperturbed.
    chaos::disarm();
    let reference = {
        let db = Db::in_memory(DbOptions::default().with_shards(1).with_pool_workers(0));
        let subs = setup_streams(&db);
        for (i, batches) in workload.iter().enumerate() {
            for rows in materialize(batches) {
                db.ingest_batch(&format!("s{i}"), rows).unwrap();
            }
        }
        for i in 0..STREAMS {
            db.heartbeat(&format!("s{i}"), 3_600_000_000).unwrap();
        }
        drain_canonical(&db, &subs)
    };
    // System under test: default shards and pool, one ingester thread per
    // stream, chaos re-armed with its op counter continuing.
    chaos::rearm();
    let got = {
        let db = Db::in_memory(DbOptions::default());
        let subs = setup_streams(&db);
        std::thread::scope(|s| {
            for (i, batches) in workload.iter().enumerate() {
                let db = &db;
                s.spawn(move || {
                    for rows in materialize(batches) {
                        db.ingest_batch(&format!("s{i}"), rows).unwrap();
                    }
                });
            }
        });
        for i in 0..STREAMS {
            db.heartbeat(&format!("s{i}"), 3_600_000_000).unwrap();
        }
        drain_canonical(&db, &subs)
    };
    if got != reference {
        return Err(diff_detail(&reference, &got));
    }
    Ok(())
}

fn diff_detail(reference: &[Vec<(i64, String)>], got: &[Vec<(i64, String)>]) -> String {
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        if r != g {
            return format!(
                "subscription #{i} diverged: reference {} window(s), got {} — first \
                 differing entry: ref {:?} vs got {:?}",
                r.len(),
                g.len(),
                r.iter().find(|e| !g.contains(e)),
                g.iter().find(|e| !r.contains(e)),
            );
        }
    }
    "output shape diverged".to_string()
}

// ---- suite 2: group-commit conservation ------------------------------------

const WRITERS: usize = 4;
const ROWS_PER_WRITER: i64 = 400;

fn group_commit_conservation() -> Result<(), String> {
    // Durable Db over a simulated disk: four streams, each archived into
    // its own Active Table through an APPEND channel, sharded WAL so
    // commits race through the per-shard group-commit path.
    let io = FaultIo::new(FaultPlan::none(0));
    let opts = DbOptions::default().with_wal_shards(WRITERS);
    let db = Db::open_with_io(SIM_DIR, opts, io.clone()).map_err(|e| e.to_string())?;
    for i in 0..WRITERS {
        db.execute(&format!(
            "CREATE STREAM w{i} (v integer, ts timestamp CQTIME USER)"
        ))
        .unwrap();
        db.execute(&format!("CREATE TABLE agg{i} (c bigint, w timestamp)"))
            .unwrap();
        db.execute(&format!(
            "CREATE STREAM per{i} AS SELECT count(*) c, cq_close(*) w \
             FROM w{i} <TUMBLING '1 second'>"
        ))
        .unwrap();
        db.execute(&format!(
            "CREATE CHANNEL ch{i} FROM per{i} INTO agg{i} APPEND"
        ))
        .unwrap();
    }
    std::thread::scope(|s| {
        for i in 0..WRITERS {
            let db = &db;
            s.spawn(move || {
                for r in 0..ROWS_PER_WRITER {
                    db.ingest(
                        &format!("w{i}"),
                        vec![Value::Int(1), Value::Timestamp(r * 10_000)],
                    )
                    .unwrap();
                }
                db.heartbeat(&format!("w{i}"), ROWS_PER_WRITER * 10_000 + 1_000_000)
                    .unwrap();
            });
        }
    });
    let count = |db: &Db| -> i64 {
        (0..WRITERS)
            .map(|i| {
                db.execute(&format!("SELECT coalesce(sum(c), 0) FROM agg{i}"))
                    .unwrap()
                    .rows()
                    .rows()[0][0]
                    .as_int()
                    .unwrap()
            })
            .sum()
    };
    let want = WRITERS as i64 * ROWS_PER_WRITER;
    let live = count(&db);
    if live != want {
        return Err(format!("live count {live} != ingested {want}"));
    }
    // Simulated clean restart: everything the OS cache held is written
    // back, then the WAL replays. Conservation must survive recovery.
    drop(db);
    let image = io.image();
    let re_io = FaultIo::from_image(&image, FaultPlan::none(0));
    let db = Db::open_with_io(
        SIM_DIR,
        DbOptions::default().with_wal_shards(WRITERS),
        re_io,
    )
    .map_err(|e| e.to_string())?;
    let recovered = count(&db);
    if recovered != want {
        return Err(format!("recovered count {recovered} != ingested {want}"));
    }
    Ok(())
}

// ---- suite 3: subscription conservation ------------------------------------

const SUBSCRIBERS: usize = 4;
const SUB_ROWS: i64 = 2_000;
const SUB_WINDOWS: usize = 8;

fn subscription_conservation() -> Result<(), String> {
    let db = Arc::new(Db::in_memory(DbOptions::default()));
    db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
        .unwrap();
    let subs: Vec<SubscriptionId> = (0..SUBSCRIBERS)
        .map(|_| {
            db.execute("SELECT count(*) c, sum(v) t FROM s <TUMBLING '1 second'>")
                .unwrap()
                .subscription()
        })
        .collect();
    // Rows spread evenly over SUB_WINDOWS one-second windows.
    let span = SUB_WINDOWS as i64 * 1_000_000;
    let step = span / SUB_ROWS;
    let results: Vec<Vec<(i64, i64, String)>> = std::thread::scope(|scope| {
        let writer_db = db.clone();
        scope.spawn(move || {
            for r in 0..SUB_ROWS {
                writer_db
                    .ingest("s", vec![Value::Int(1), Value::Timestamp(r * step)])
                    .unwrap();
            }
            writer_db.heartbeat("s", span).unwrap();
        });
        // Pollers drain concurrently with ingest, accumulating until the
        // final window (which the heartbeat guarantees will close) shows
        // up. The default queue capacity exceeds SUB_WINDOWS, so no
        // overflow policy can silently drop a window.
        subs.iter()
            .map(|&sub| {
                let db = db.clone();
                scope.spawn(move || {
                    let mut seen: Vec<(i64, i64, String)> = Vec::new();
                    loop {
                        for o in db.poll(sub).unwrap() {
                            let count = o.relation.rows()[0][0].as_int().unwrap();
                            seen.push((o.close, count, format!("{:?}", o.relation.rows())));
                        }
                        if seen.len() >= SUB_WINDOWS {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    seen
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for (i, r) in results.iter().enumerate() {
        if r.len() != SUB_WINDOWS {
            return Err(format!(
                "subscriber #{i} saw {} window(s), expected {SUB_WINDOWS}",
                r.len()
            ));
        }
        if !r.windows(2).all(|p| p[0].0 < p[1].0) {
            return Err(format!("subscriber #{i} saw out-of-order closes"));
        }
        if r != &results[0] {
            return Err(format!("subscriber #{i} diverged from subscriber #0"));
        }
        // Conservation: the per-window counts must sum to every ingested
        // row exactly once.
        let total: i64 = r.iter().map(|w| w.1).sum();
        if total != SUB_ROWS {
            return Err(format!(
                "subscriber #{i} window counts sum to {total}, ingested {SUB_ROWS}"
            ));
        }
    }
    Ok(())
}
