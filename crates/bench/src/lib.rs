//! Shared harness for the experiment binaries (F1, E1–E8).
//!
//! Each binary regenerates one of the paper's evaluation claims (there are
//! no numbered result tables in this CIDR vision paper; the mapping from
//! claims to experiments is in DESIGN.md §4) and prints a small table of
//! rows that EXPERIMENTS.md records.

#![deny(unsafe_code)]

pub mod race;
pub mod torture;

use std::time::{Duration, Instant};

/// Scale factor from the `SCALE` env var (default 1). Experiment sizes
/// multiply by this, so `SCALE=10 cargo run --release --bin e1_...`
/// approaches warehouse-ish volumes.
pub fn scale() -> usize {
    std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed())
}

/// Format a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Simple aligned table printer for experiment output.
pub struct ResultTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// New table with headers.
    pub fn new(headers: &[&str]) -> ResultTable {
        ResultTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Render and print.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&self.headers);
        line(&sep);
        for r in &self.rows {
            line(r);
        }
    }
}

/// Geometric factor between consecutive measurements (used to report
/// scaling behaviour).
pub fn growth_factor(values: &[f64]) -> f64 {
    if values.len() < 2 || values[0] <= 0.0 {
        return f64::NAN;
    }
    let ratio = values.last().unwrap() / values[0];
    ratio.powf(1.0 / (values.len() - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        assert!(scale() >= 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_dur(Duration::from_millis(20)), "20.00ms");
        assert_eq!(fmt_dur(Duration::from_secs(3)), "3.00s");
    }

    #[test]
    fn growth_factor_of_doubling_is_two() {
        let f = growth_factor(&[1.0, 2.0, 4.0, 8.0]);
        assert!((f - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = ResultTable::new(&["a", "b"]);
        t.row(&["1".into(), "long cell".into()]);
        t.print();
    }
}
