//! E8 — two correctness/latency properties the paper asserts:
//!
//! 1. §3.2: "results are always available within at most one \[ADVANCE]" —
//!    we measure, for every window, the lag between its close timestamp
//!    and the event time at which its result materialized in the Active
//!    Table.
//! 2. §4 window consistency (ref \[6]): "updates to tables are visible
//!    only on window boundaries" — under a dimension table being updated
//!    every half window, each window's join output must reflect exactly
//!    one dimension version (never a mix), and the QueryStart ablation
//!    must show unbounded staleness instead.

#![deny(unsafe_code)]

use streamrel_bench::{scale, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_cq::ConsistencyMode;
use streamrel_types::time::MINUTES;
use streamrel_types::Value;
use streamrel_workload::ClickstreamGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E8: result availability + window consistency\n");

    // ---------------- Part 1: availability lag ----------------
    let minutes = 15 * scale() as i64;
    let rate = 1_000u64;
    let db = Db::in_memory(DbOptions::default());
    db.execute(&ClickstreamGen::create_stream_sql("clicks"))?;
    db.execute("CREATE TABLE agg (url varchar(1024), c bigint, w timestamp)")?;
    db.execute(
        "CREATE STREAM per_min AS SELECT url, count(*) c, cq_close(*) w \
         FROM clicks <TUMBLING '1 minute'> GROUP BY url",
    )?;
    db.execute("CREATE CHANNEL ch FROM per_min INTO agg APPEND")?;
    // Observe availability through a subscription to the same derived
    // stream: a window's result is archived/delivered synchronously, so
    // its availability lag in event time is the timestamp of the tuple
    // whose arrival closed it, minus the window close boundary.
    let watch = db
        .execute("SELECT c FROM per_min <SLICES 1 WINDOWS>")?
        .subscription();

    let mut gen = ClickstreamGen::new(81, 1_000, 0, rate);
    let mut lags_us: Vec<i64> = Vec::new();
    let total = (rate as i64 * 60 * minutes) as usize;
    for _ in 0..total {
        let row = gen.next_row();
        let now = row[1].as_timestamp()?;
        db.ingest("clicks", row)?;
        for out in db.poll(watch)? {
            lags_us.push(now - out.close);
        }
    }
    let max_lag = lags_us.iter().copied().max().unwrap_or(0);
    let avg_lag = lags_us.iter().sum::<i64>() as f64 / lags_us.len().max(1) as f64;
    let mut t1 = ResultTable::new(&[
        "windows",
        "avg availability lag",
        "max lag",
        "bound (ADVANCE)",
    ]);
    t1.row(&[
        lags_us.len().to_string(),
        format!("{:.1}ms", avg_lag / 1_000.0),
        format!("{:.1}ms", max_lag as f64 / 1_000.0),
        "60000ms".into(),
    ]);
    t1.print();
    // A window's result lands with the first tuple past the boundary: at
    // 1000 ev/s the expected lag is ~1ms of event time, far below one
    // ADVANCE.
    assert!(
        max_lag < MINUTES,
        "availability within one ADVANCE (max {max_lag}µs)"
    );

    // ---------------- Part 2: window consistency ----------------
    println!("\nwindow consistency under concurrent dimension updates:");
    let mut t2 = ResultTable::new(&[
        "mode",
        "windows",
        "pure windows",
        "mixed windows",
        "stale windows",
    ]);
    for (label, mode) in [
        ("window-boundary (paper)", ConsistencyMode::WindowBoundary),
        ("query-start (ablation)", ConsistencyMode::QueryStart),
    ] {
        let db = Db::in_memory(DbOptions::default().with_consistency(mode));
        db.execute("CREATE STREAM s (k varchar(8), ts timestamp CQTIME USER)")?;
        db.execute("CREATE TABLE dim (k varchar(8), version integer)")?;
        db.execute("INSERT INTO dim VALUES ('a', 0)")?;
        let sub = db
            .execute(
                "SELECT s.k, min(d.version) vmin, max(d.version) vmax, count(*) c \
                 FROM s <TUMBLING '1 minute'> s JOIN dim d ON s.k = d.k \
                 GROUP BY s.k",
            )?
            .subscription();
        let windows = 12i64;
        for m in 0..windows {
            // Tuples throughout the window.
            for i in 0..10 {
                db.ingest(
                    "s",
                    vec![
                        Value::text("a"),
                        Value::Timestamp(m * MINUTES + i * 5_000_000 + 1),
                    ],
                )?;
            }
            // Mid-window dimension update (version = minute index + 1).
            db.execute("DELETE FROM dim WHERE k = 'a'")?;
            db.execute(&format!("INSERT INTO dim VALUES ('a', {})", m + 1))?;
        }
        db.heartbeat("s", windows * MINUTES)?;
        let outs = db.poll(sub)?;
        let mut pure = 0;
        let mut mixed = 0;
        let mut stale = 0;
        for (i, o) in outs.iter().enumerate() {
            let r = &o.relation.rows()[0];
            let (vmin, vmax) = (r[1].as_int()?, r[2].as_int()?);
            if vmin != vmax {
                mixed += 1;
            } else if mode == ConsistencyMode::QueryStart && i > 0 && vmin == 0 {
                stale += 1;
                pure += 1;
            } else {
                pure += 1;
            }
        }
        t2.row(&[
            label.into(),
            outs.len().to_string(),
            pure.to_string(),
            mixed.to_string(),
            stale.to_string(),
        ]);
        // Both modes are internally consistent per window (a pinned
        // snapshot can never mix versions)...
        assert_eq!(mixed, 0, "{label}: no window may mix dimension versions");
        if mode == ConsistencyMode::QueryStart {
            // ...but query-start pinning serves version 0 forever.
            assert!(stale >= 10, "{label}: ablation must show staleness");
        }
    }
    t2.print();
    println!(
        "\nshape check: window-boundary mode gives each window exactly the \
         dimension version current at its boundary; the query-start \
         ablation never sees any update (stale), and neither mode ever \
         mixes versions inside one window (§4's continuous isolation)."
    );
    Ok(())
}
