//! E2 — §1.1 "Network Effect #1: More Data": as stored volume grows 10x,
//! store-first report latency grows ~linearly (it re-scans everything),
//! while the continuous path's report latency stays flat and its ingest
//! cost stays per-tuple.
//!
//! Output: latency of answering "current top URLs" at several total
//! volumes, under both architectures, plus per-architecture growth
//! factors.

#![deny(unsafe_code)]

use streamrel_baseline::StoreFirst;
use streamrel_bench::{fmt_dur, growth_factor, scale, timed, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_workload::ClickstreamGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E2: §1.1 data growth sweep — report latency vs total volume\n");
    let sizes: Vec<usize> = [30_000usize, 100_000, 300_000, 1_000_000]
        .iter()
        .map(|n| n * scale())
        .collect();

    let report = "SELECT url, count(*) c FROM raw GROUP BY url ORDER BY c DESC LIMIT 10";
    let mut table = ResultTable::new(&[
        "total rows",
        "store-first report",
        "continuous lookup",
        "cont per-tuple ingest",
    ]);
    let mut batch_lat = Vec::new();
    let mut cont_lat = Vec::new();

    for &n in &sizes {
        // Store-first.
        let mut sf = StoreFirst::new(&ClickstreamGen::create_table_sql("raw"), "raw")?;
        let mut gen = ClickstreamGen::new(21, 5_000, 0, 10_000);
        let rows = gen.take_rows(n);
        sf.load(rows.clone())?;
        let (_, t_batch) = timed(|| sf.run_report(report).unwrap());

        // Continuous: per-minute top-URL counts into an active table;
        // the "current report" reads the last windows.
        let db = Db::in_memory(DbOptions::default());
        db.execute(&ClickstreamGen::create_stream_sql("clicks"))?;
        db.execute("CREATE TABLE tops (url varchar(1024), c bigint, w timestamp)")?;
        db.execute(
            "CREATE STREAM top_now AS SELECT url, count(*) c, cq_close(*) w \
             FROM clicks <TUMBLING '1 minute'> GROUP BY url",
        )?;
        db.execute("CREATE CHANNEL ch FROM top_now INTO tops REPLACE")?;
        let clock = gen.clock();
        let (_, t_ingest) = timed(|| {
            for chunk in rows.chunks(20_000) {
                db.ingest_batch("clicks", chunk.to_vec()).unwrap();
            }
            db.heartbeat("clicks", clock + 60_000_000).unwrap();
        });
        let (_, t_cont) = timed(|| {
            db.execute("SELECT url, c FROM tops ORDER BY c DESC LIMIT 10")
                .unwrap()
                .rows()
        });

        batch_lat.push(t_batch.as_secs_f64());
        cont_lat.push(t_cont.as_secs_f64());
        table.row(&[
            n.to_string(),
            fmt_dur(t_batch),
            fmt_dur(t_cont),
            format!("{:.2}µs", t_ingest.as_micros() as f64 / n as f64),
        ]);
    }
    table.print();

    let steps = sizes.len();
    let volume_growth = growth_factor(&sizes.iter().map(|&s| s as f64).collect::<Vec<_>>());
    let batch_growth = growth_factor(&batch_lat);
    let cont_growth = growth_factor(&cont_lat);
    println!(
        "\nper-step growth over {} steps: volume {volume_growth:.1}x, \
         store-first latency {batch_growth:.2}x, continuous lookup {cont_growth:.2}x",
        steps - 1
    );
    println!(
        "shape check: store-first tracks volume (≈{volume_growth:.1}x/step); \
         the continuous lookup must grow far slower."
    );
    assert!(
        batch_growth > cont_growth * 1.3,
        "store-first must degrade faster than continuous \
         (batch {batch_growth:.2} vs cont {cont_growth:.2})"
    );
    Ok(())
}
