//! Crash-recovery torture driver (DESIGN.md §10).
//!
//! Runs the deterministic crash-at-every-op sweeps from
//! `streamrel_bench::torture` — storage-level and full-CQ-stack — over
//! one or more seeds, and fails loudly (exit 1) on any divergence,
//! printing the `(seed, op)` pair that reproduces it and dumping the
//! frozen simulated disk image for artifact upload.
//!
//! Env knobs (all optional):
//!
//! * `TORTURE_SEED`    — base seed (default 42)
//! * `TORTURE_SEEDS`   — number of consecutive seeds to sweep (default 1;
//!   the nightly lane runs many)
//! * `TORTURE_STEPS`   — storage workload steps per seed (default 80)
//! * `TORTURE_TUPLES`  — CQ workload tuples per seed (default 25)
//! * `TORTURE_WAL_SHARDS` — commit domains for the multi-log storage
//!   sweep (default 3; the single-log sweep always runs too). Each seed
//!   also sweeps the checkpoint-rename/WAL-reset interleaving at this
//!   domain count (DESIGN.md §13)
//! * `TORTURE_ARTIFACT_DIR` — where failing disk images land (default
//!   `target/torture-artifacts`)
//!
//! Reproduce a printed failure with:
//! `TORTURE_SEED=<seed> TORTURE_SEEDS=1 cargo run --release --bin
//! recovery_torture` (the op index is swept automatically; the named
//! seed regenerates the identical workload, fault schedule and tear
//! offsets).

#![deny(unsafe_code)]

use std::path::{Path, PathBuf};
use std::time::Instant;

use streamrel_bench::torture::{
    checkpoint_reset_sweep, cq_sweep, engine_sweep, engine_sweep_with_logs, ivm_sweep, Failure,
    SweepOutcome,
};
use streamrel_bench::ResultTable;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn dump_failures(kind: &str, failures: &[Failure], dir: &Path) {
    for f in failures {
        eprintln!(
            "DIVERGENCE [{kind}] seed={} op={}\n{}\n  reproduce: \
             TORTURE_SEED={} TORTURE_SEEDS=1 cargo run --release --bin recovery_torture",
            f.seed, f.op, f.detail, f.seed
        );
        let image_dir = dir.join(format!("{kind}-seed{}-op{}", f.seed, f.op));
        match f.image.dump_to(&image_dir) {
            Ok(()) => eprintln!("  frozen disk image dumped to {}", image_dir.display()),
            Err(e) => eprintln!("  disk image dump failed: {e}"),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base_seed = env_u64("TORTURE_SEED", 42);
    let seeds = env_u64("TORTURE_SEEDS", 1).max(1);
    let steps = env_u64("TORTURE_STEPS", 80) as usize;
    let tuples = env_u64("TORTURE_TUPLES", 25) as usize;
    let wal_shards = env_u64("TORTURE_WAL_SHARDS", 3).max(2) as usize;
    let artifact_dir = PathBuf::from(
        std::env::var("TORTURE_ARTIFACT_DIR").unwrap_or_else(|_| "target/torture-artifacts".into()),
    );

    println!(
        "recovery_torture: crash-at-every-op sweep, seeds {base_seed}..{} \
         ({steps} storage steps + {tuples} CQ tuples per seed; multi-log \
         sweeps at {wal_shards} commit domains)\n",
        base_seed + seeds - 1
    );

    let start = Instant::now();
    let mut engine_total = SweepOutcome::default();
    let mut multilog_total = SweepOutcome::default();
    let mut cq_total = SweepOutcome::default();
    let mut ivm_total = SweepOutcome::default();
    let mut table = ResultTable::new(&[
        "seed",
        "storage crash points",
        "multilog crash points",
        "cq crash points",
        "ivm crash points",
        "fail",
    ]);
    for seed in base_seed..base_seed + seeds {
        let e = engine_sweep(seed, steps)?;
        let mut m = engine_sweep_with_logs(seed, steps, wal_shards)?;
        m.merge(checkpoint_reset_sweep(seed, wal_shards)?);
        let c = cq_sweep(seed, tuples)?;
        let v = ivm_sweep(seed, tuples)?;
        table.row(&[
            seed.to_string(),
            e.crash_points.to_string(),
            m.crash_points.to_string(),
            c.crash_points.to_string(),
            v.crash_points.to_string(),
            (e.failures.len() + m.failures.len() + c.failures.len() + v.failures.len()).to_string(),
        ]);
        engine_total.merge(e);
        multilog_total.merge(m);
        cq_total.merge(c);
        ivm_total.merge(v);
    }
    let secs = start.elapsed().as_secs_f64();
    table.print();

    let crash_points = engine_total.crash_points
        + multilog_total.crash_points
        + cq_total.crash_points
        + ivm_total.crash_points;
    let failures = engine_total.failures.len()
        + multilog_total.failures.len()
        + cq_total.failures.len()
        + ivm_total.failures.len();
    println!(
        "\n{crash_points} crash points, {failures} divergences in {secs:.2}s \
         ({:.0} crash points/s)",
        crash_points as f64 / secs.max(1e-9)
    );

    let json = format!(
        "{{\n  \"base_seed\": {base_seed},\n  \"seeds\": {seeds},\n  \
         \"storage_crash_points\": {},\n  \"multilog_crash_points\": {},\n  \
         \"wal_shards\": {wal_shards},\n  \"cq_crash_points\": {},\n  \
         \"ivm_crash_points\": {},\n  \
         \"failures\": {failures},\n  \"secs\": {secs:.3}\n}}\n",
        engine_total.crash_points,
        multilog_total.crash_points,
        cq_total.crash_points,
        ivm_total.crash_points
    );
    std::fs::write("BENCH_recovery_torture.json", json)?;
    println!("recorded BENCH_recovery_torture.json");

    if failures > 0 {
        dump_failures("storage", &engine_total.failures, &artifact_dir);
        dump_failures("multilog", &multilog_total.failures, &artifact_dir);
        dump_failures("cq", &cq_total.failures, &artifact_dir);
        dump_failures("ivm", &ivm_total.failures, &artifact_dir);
        let seeds_file = artifact_dir.join("failing-seeds.txt");
        let lines: String = engine_total
            .failures
            .iter()
            .map(|f| format!("storage {} {}\n", f.seed, f.op))
            .chain(
                multilog_total
                    .failures
                    .iter()
                    .map(|f| format!("multilog {} {}\n", f.seed, f.op)),
            )
            .chain(
                cq_total
                    .failures
                    .iter()
                    .map(|f| format!("cq {} {}\n", f.seed, f.op)),
            )
            .chain(
                ivm_total
                    .failures
                    .iter()
                    .map(|f| format!("ivm {} {}\n", f.seed, f.op)),
            )
            .collect();
        std::fs::create_dir_all(&artifact_dir)?;
        std::fs::write(&seeds_file, lines)?;
        eprintln!("failing seeds recorded in {}", seeds_file.display());
        std::process::exit(1);
    }
    println!("recovery proof holds: zero divergence across all crash points");
    Ok(())
}
