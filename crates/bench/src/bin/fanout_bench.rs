//! fanout_bench — serialize-once fan-out under a subscriber sweep.
//!
//! One continuous query, N subscribers multiplexed over a handful of
//! TCP connections (subscribers are *logical*: the readiness reactor
//! holds fds and buffers, not threads, so 10 000 subscribers is a few
//! sockets and one poll set). Each sweep point registers N members via
//! `subscribe_attach`, closes a fixed window sequence, and measures the
//! wall-clock from the closing heartbeat to the last member draining the
//! last window.
//!
//! The run *verifies* while it measures — every sweep point enforces the
//! serialize-once contract and fails the process (for the CI smoke lane)
//! on any violation:
//!
//! * `net.fanout.encodes` == windows closed, NOT windows × subscribers;
//! * every member's sequence is byte-identical to the embedded-API
//!   reference, exactly once (conservation: `net.windows_sent` == N ×
//!   windows with zero drops and zero losses);
//! * memory stays bounded: the aggregate `net.outbox.depth` gauge
//!   settles back to zero once delivery completes.
//!
//! Timing floors are *not* enforced on hosts with a single core (the
//! reactor, client readers and the ingester have nothing to run on in
//! parallel); the JSON records `"skipped": true` plus the reason so a
//! dashboard can never mistake a too-small host for a pass. Knobs:
//! `FANOUT_SUBS` (comma-separated sweep, default `1,10,100,1000,10000`),
//! `FANOUT_WINDOWS`, `FANOUT_CONNS`.

#![deny(unsafe_code)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use streamrel_bench::ResultTable;
use streamrel_core::{Db, DbOptions, ExecResult};
use streamrel_net::{wire, Client, Server};
use streamrel_types::Value;

const DDL: &str = "CREATE STREAM events (v integer, etime timestamp CQTIME USER)";
const CQ: &str = "SELECT sum(v) total, cq_close(*) w FROM events <TUMBLING '1 minute'>";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sweep_points() -> Vec<usize> {
    match std::env::var("FANOUT_SUBS") {
        Ok(list) => list
            .split(',')
            .filter_map(|n| n.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect(),
        Err(_) => vec![1, 10, 100, 1_000, 10_000],
    }
}

fn window_rows(w: i64) -> Vec<Vec<Value>> {
    (0..4)
        .map(|c| {
            vec![
                Value::Int(w * 10 + c),
                Value::Timestamp(w * 60_000_000 + 10_000_000),
            ]
        })
        .collect()
}

/// The reference window sequence via the embedded API.
fn embedded_reference(windows: i64) -> Vec<(i64, Vec<u8>)> {
    let db = Db::in_memory(DbOptions::default());
    db.execute(DDL).unwrap();
    let sub = match db.execute(CQ).unwrap() {
        ExecResult::Subscribed(s) => s,
        other => panic!("expected subscription, got {other:?}"),
    };
    for w in 0..windows {
        for row in window_rows(w) {
            db.ingest("events", row).unwrap();
        }
        db.heartbeat("events", (w + 1) * 60_000_000).unwrap();
    }
    db.poll(sub)
        .unwrap()
        .iter()
        .map(|o| (o.close, wire::encode_rows(&o.relation)))
        .collect()
}

fn metric(db: &Db, name: &str) -> i64 {
    db.metrics_relation()
        .rows()
        .iter()
        .find_map(|r| {
            (r[0] == Value::text(name)).then(|| match &r[2] {
                Value::Int(n) => *n,
                _ => 0,
            })
        })
        .unwrap_or(0)
}

fn await_metric(db: &Db, name: &str, want: i64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = metric(db, name);
        if got == want {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!("{name} stuck at {got}, want {want}"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct Point {
    subs: usize,
    conns: usize,
    register_ms: f64,
    deliver_ms: f64,
    encodes: i64,
    windows_sent: i64,
}

/// One sweep point: N members over `conns` connections, verified.
fn run_point(
    subs: usize,
    conns: usize,
    windows: i64,
    reference: &[(i64, Vec<u8>)],
) -> Result<Point, String> {
    let db = Arc::new(Db::in_memory(DbOptions::default()));
    let server = Server::serve(db.clone(), "127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let admin = Client::connect(addr).map_err(|e| e.to_string())?;
    admin.execute(DDL).map_err(|e| e.to_string())?;

    let conns_n = conns.min(subs).max(1);
    let clients: Vec<Client> = (0..conns_n)
        .map(|_| Client::connect(addr).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    // One primary; the remaining N-1 members attach round-robin across
    // the connection pool — many logical subscriptions per socket.
    let reg_start = Instant::now();
    let primary = clients[0].subscribe(CQ).map_err(|e| e.to_string())?;
    let mut streams = Vec::with_capacity(subs);
    for i in 1..subs {
        streams.push(
            clients[i % conns_n]
                .subscribe_attach(primary.id())
                .map_err(|e| e.to_string())?,
        );
    }
    streams.push(primary);
    let register_ms = reg_start.elapsed().as_secs_f64() * 1e3;

    let deliver_start = Instant::now();
    for w in 0..windows {
        admin
            .ingest_batch("events", &window_rows(w))
            .map_err(|e| e.to_string())?;
        admin
            .heartbeat("events", (w + 1) * 60_000_000)
            .map_err(|e| e.to_string())?;
    }
    for (i, stream) in streams.iter().enumerate() {
        for want in reference {
            let out = stream
                .next_timeout(Duration::from_secs(30))
                .ok_or_else(|| format!("member {i}: window not delivered within 30s"))?;
            if (out.close, wire::encode_rows(&out.relation)) != *want {
                return Err(format!(
                    "member {i}: window bytes diverge from embedded run"
                ));
            }
        }
        if stream.try_next().is_some() {
            return Err(format!("member {i}: received more windows than closed"));
        }
    }
    let deliver_ms = deliver_start.elapsed().as_secs_f64() * 1e3;

    // Serialize-once: the body was encoded once per window, full stop.
    let encodes = metric(&db, "net.fanout.encodes");
    if encodes != windows {
        return Err(format!(
            "net.fanout.encodes = {encodes}, want {windows} (one per closed window, \
             independent of {subs} subscribers)"
        ));
    }
    // Exactly-once conservation: everything flushed, nothing shed/lost.
    let want_sent = windows * subs as i64;
    await_metric(&db, "net.windows_sent", want_sent)?;
    let (shed, lost) = (
        metric(&db, "net.outbox_drops"),
        metric(&db, "net.delivery_lost"),
    );
    if shed != 0 || lost != 0 {
        return Err(format!("drops={shed} lost={lost}, want 0/0"));
    }
    // Bounded memory: the aggregate outbox depth settles back to zero.
    await_metric(&db, "net.outbox.depth", 0)?;
    let windows_sent = metric(&db, "net.windows_sent");

    drop(streams);
    for c in clients {
        let _ = c.close();
    }
    let _ = admin.close();
    server.shutdown();
    Ok(Point {
        subs,
        conns: conns_n,
        register_ms,
        deliver_ms,
        encodes,
        windows_sent,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let windows = env_usize("FANOUT_WINDOWS", 3) as i64;
    let conns = env_usize("FANOUT_CONNS", 8);
    let sweep = sweep_points();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let skipped = cores < 2;
    let skip_reason = if skipped {
        format!("host has {cores} core(s); reactor, client readers and ingester need >= 2")
    } else {
        String::new()
    };

    println!(
        "fanout_bench: {windows} windows to each of {sweep:?} subscribers \
         over <= {conns} connections\n"
    );
    let reference = embedded_reference(windows);
    assert_eq!(reference.len(), windows as usize);

    let mut points = Vec::new();
    for subs in sweep {
        match run_point(subs, conns, windows, &reference) {
            Ok(p) => {
                println!(
                    "  {:>6} subscribers / {} conns: register {:.1} ms, \
                     deliver {:.1} ms, {} encodes, {} windows sent",
                    p.subs, p.conns, p.register_ms, p.deliver_ms, p.encodes, p.windows_sent
                );
                points.push(p);
            }
            Err(e) => {
                eprintln!("FAIL at {subs} subscribers: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut table = ResultTable::new(&[
        "subscribers",
        "connections",
        "register ms",
        "deliver ms",
        "encodes",
        "windows sent",
    ]);
    for p in &points {
        table.row(&[
            format!("{}", p.subs),
            format!("{}", p.conns),
            format!("{:.1}", p.register_ms),
            format!("{:.1}", p.deliver_ms),
            format!("{}", p.encodes),
            format!("{}", p.windows_sent),
        ]);
    }
    table.print();

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"subs\": {}, \"conns\": {}, \"register_ms\": {:.1}, \
                 \"deliver_ms\": {:.1}, \"encodes\": {}, \"windows_sent\": {}}}",
                p.subs, p.conns, p.register_ms, p.deliver_ms, p.encodes, p.windows_sent
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"windows\": {windows},\n  \"cores\": {cores},\n  \"sweep\": [\n{}\n  ],\n  \
         \"skipped\": {skipped},\n  \"skip_reason\": \"{skip_reason}\"\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_fanout.json", json)?;
    println!("\nrecorded BENCH_fanout.json");

    if skipped {
        println!("SKIP (timing floors only): {skip_reason}");
    } else {
        println!("PASS: serialize-once and exactly-once held at every sweep point");
    }
    Ok(())
}
