//! ivm_bench — incremental view maintenance vs per-window re-evaluation.
//!
//! The workload is the shape IVM exists for: a grouped count over a
//! sliding window whose VISIBLE span is much wider than its ADVANCE
//! (`<VISIBLE '2 minutes' ADVANCE '2 seconds'>`, 60 closes per window
//! span). Under re-evaluation every close re-scans and re-folds the
//! whole two-minute buffer; under IVM each tuple is folded once into its
//! slice partial and a close merges ~60 slice partials — near-O(delta)
//! instead of O(window).
//!
//! Both configurations run with sharing ablated so the comparison
//! isolates the delta-processing path: the baseline is
//! `DbOptions::without_sharing().without_ivm()` (the unshared re-eval
//! executor), the candidate is `without_sharing()` alone. The run
//! verifies through `streamrel_metrics` that the candidate actually
//! lowered the CQ (`ivm.lowered` = 1) — the floor is only meaningful on
//! an eligible plan — records `BENCH_ivm.json`, and fails (non-zero
//! exit, for the CI smoke job) below `MIN_SPEEDUP`. The workload is
//! single-threaded and deterministic, so the floor holds on any host:
//! the win comes from doing less work per close, not from parallelism.

#![deny(unsafe_code)]

use std::time::Instant;

use streamrel_bench::{scale, ResultTable};
use streamrel_core::{Db, DbOptions, ExecResult};
use streamrel_types::Value;

/// CI acceptance floor: IVM must at least halve the cost of this
/// workload. (Measured speedups are far higher; 2x is the honest bound
/// that survives slow CI hosts and debug-adjacent build flags.)
const MIN_SPEEDUP: f64 = 2.0;
/// Distinct group keys; keeps slice partials small and merge cost real.
const GROUPS: i64 = 64;
/// Logical clock step per row (10 ms): one 2-second advance = 200 rows,
/// one 2-minute window = 12_000 buffered rows for the re-eval baseline.
const STEP_US: i64 = 10_000;
/// Rows ingested per `ingest_batch` call.
const BATCH: usize = 500;

const CQ: &str = "SELECT url, count(*) c FROM hits \
                  <VISIBLE '2 minutes' ADVANCE '2 seconds'> GROUP BY url";

fn metric(db: &Db, name: &str) -> i64 {
    let rel = db
        .execute(&format!(
            "SELECT value FROM {}metrics WHERE name = '{name}'",
            streamrel_obs::RESERVED_PREFIX
        ))
        .unwrap()
        .rows();
    rel.rows()
        .first()
        .and_then(|r| r.first())
        .and_then(|v| v.as_int().ok())
        .unwrap_or(0)
}

/// Ingest `rows` tuples through the CQ; return
/// (rows/s, windows closed, mean close latency in µs).
fn run(opts: DbOptions, rows: usize) -> (f64, i64, f64) {
    let db = Db::in_memory(opts);
    db.execute("CREATE STREAM hits (url varchar(16), ts timestamp CQTIME USER)")
        .unwrap();
    let sub = match db.execute(CQ).unwrap() {
        ExecResult::Subscribed(id) => id,
        other => panic!("expected a subscription, got {other:?}"),
    };
    let mut clock = 0i64;
    let start = Instant::now();
    let mut sent = 0usize;
    while sent < rows {
        let n = BATCH.min(rows - sent);
        let batch: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                clock += STEP_US;
                vec![
                    Value::text(format!("/u{}", clock / STEP_US % GROUPS)),
                    Value::Timestamp(clock),
                ]
            })
            .collect();
        db.ingest_batch("hits", batch).unwrap();
        sent += n;
    }
    let tps = sent as f64 / start.elapsed().as_secs_f64();
    // The per-subscription close histogram: `value` is the close count,
    // `sum` the total close time in µs.
    let rel = db
        .execute(&format!(
            "SELECT value, sum FROM {}metrics WHERE name = 'cq.close_us.sub_{}'",
            streamrel_obs::RESERVED_PREFIX,
            sub.0
        ))
        .unwrap()
        .rows();
    let (closes, total_us) = rel
        .rows()
        .first()
        .map(|r| {
            (
                r.first().and_then(|v| v.as_int().ok()).unwrap_or(0),
                r.get(1).and_then(|v| v.as_int().ok()).unwrap_or(0),
            )
        })
        .unwrap_or((0, 0));
    let mean_close_us = total_us as f64 / closes.max(1) as f64;
    (tps, closes, mean_close_us)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ivm_bench: delta processing vs per-window re-evaluation\n");
    let rows = 40_000 * scale();

    let (reeval_tps, reeval_closes, reeval_close_us) =
        run(DbOptions::default().without_sharing().without_ivm(), rows);

    // Candidate run, with an engagement check: re-create the setup once
    // to confirm the CQ lowers before timing it.
    {
        let db = Db::in_memory(DbOptions::default().without_sharing());
        db.execute("CREATE STREAM hits (url varchar(16), ts timestamp CQTIME USER)")
            .unwrap();
        db.execute(CQ).unwrap();
        assert_eq!(
            metric(&db, "ivm.lowered"),
            1,
            "bench CQ must lower to the IVM path"
        );
    }
    let (ivm_tps, ivm_closes, ivm_close_us) = run(DbOptions::default().without_sharing(), rows);
    let speedup = ivm_tps / reeval_tps;
    let close_speedup = reeval_close_us / ivm_close_us.max(1e-9);

    let mut table = ResultTable::new(&["configuration", "rows/s", "closes", "mean close"]);
    table.row(&[
        "re-evaluation (IVM ablated)".into(),
        format!("{reeval_tps:.0}"),
        reeval_closes.to_string(),
        format!("{reeval_close_us:.0} us"),
    ]);
    table.row(&[
        "incremental (IVM)".into(),
        format!("{ivm_tps:.0}"),
        ivm_closes.to_string(),
        format!("{ivm_close_us:.0} us"),
    ]);
    table.print();
    println!(
        "\n{rows} rows, {GROUPS} groups, VISIBLE/ADVANCE = 60: \
         {speedup:.2}x ingest throughput, {close_speedup:.2}x close latency"
    );

    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"groups\": {GROUPS},\n  \
         \"visible_s\": 120,\n  \"advance_s\": 2,\n  \
         \"reeval_tps\": {reeval_tps:.1},\n  \"ivm_tps\": {ivm_tps:.1},\n  \
         \"reeval_close_us\": {reeval_close_us:.1},\n  \
         \"ivm_close_us\": {ivm_close_us:.1},\n  \
         \"windows_closed\": {ivm_closes},\n  \"speedup\": {speedup:.3},\n  \
         \"close_speedup\": {close_speedup:.3}\n}}\n"
    );
    std::fs::write("BENCH_ivm.json", json)?;
    println!("recorded BENCH_ivm.json");

    if ivm_closes != reeval_closes {
        eprintln!("FAIL: close counts diverge ({ivm_closes} vs {reeval_closes})");
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor");
        std::process::exit(1);
    }
    println!("PASS: speedup {speedup:.2}x >= {MIN_SPEEDUP}x");
    Ok(())
}
