//! Seeded chaos-schedule race torture driver (DESIGN.md §14).
//!
//! Sweeps the concurrency-invariant suites from `streamrel_bench::race`
//! — parallel equivalence, group-commit conservation, subscription
//! conservation — under one chaos seed per iteration. Every suite runs
//! with the runtime lock witness validating acquisitions against the
//! generated global order and the `streamrel-faults` chaos injector
//! stretching lock/condvar points per the seed's schedule. Results must
//! be byte-identical to the unperturbed serial reference for **every**
//! seed; any divergence, lock-order panic, or deadlock-detector panic
//! fails the run (exit 1) with the reproducing seed printed.
//!
//! Env knobs (all optional):
//!
//! * `RACE_SEED`  — base seed (default 1)
//! * `RACE_SEEDS` — number of consecutive seeds to sweep (default 8;
//!   the nightly lane runs 64, the PR lane pins one)
//! * `RACE_ARTIFACT_DIR` — where failing seeds land (default
//!   `target/race-artifacts`)
//!
//! Reproduce a printed failure with:
//! `RACE_SEED=<seed> RACE_SEEDS=1 cargo run --release --bin race_torture`.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

use streamrel_bench::race::{run_seed, RaceFailure};
use streamrel_bench::ResultTable;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base_seed = env_u64("RACE_SEED", 1);
    let seeds = env_u64("RACE_SEEDS", 8).max(1);
    let artifact_dir = PathBuf::from(
        std::env::var("RACE_ARTIFACT_DIR").unwrap_or_else(|_| "target/race-artifacts".into()),
    );

    println!(
        "race_torture: chaos-schedule sweep, seeds {base_seed}..{} \
         (lock witness on, 3 suites per seed)\n",
        base_seed + seeds - 1
    );

    let start = Instant::now();
    let mut chaos_points = 0u64;
    let mut failures: Vec<RaceFailure> = Vec::new();
    let mut table = ResultTable::new(&["seed", "chaos points", "fail"]);
    for seed in base_seed..base_seed + seeds {
        let outcome = run_seed(seed);
        table.row(&[
            seed.to_string(),
            outcome.chaos_points.to_string(),
            outcome.failures.len().to_string(),
        ]);
        chaos_points += outcome.chaos_points;
        failures.extend(outcome.failures);
    }
    let secs = start.elapsed().as_secs_f64();
    table.print();

    println!(
        "\n{seeds} seed(s), {chaos_points} chaos points, {} divergence(s) in {secs:.2}s",
        failures.len()
    );
    if chaos_points == 0 {
        eprintln!("race_torture: chaos injector never fired — witness instrumentation is dead");
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"base_seed\": {base_seed},\n  \"seeds\": {seeds},\n  \
         \"chaos_points\": {chaos_points},\n  \"failures\": {},\n  \"secs\": {secs:.3}\n}}\n",
        failures.len()
    );
    std::fs::write("BENCH_race_torture.json", json)?;
    println!("recorded BENCH_race_torture.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!(
                "DIVERGENCE [{}] seed={}\n  {}\n  reproduce: \
                 RACE_SEED={} RACE_SEEDS=1 cargo run --release --bin race_torture",
                f.suite, f.seed, f.detail, f.seed
            );
        }
        std::fs::create_dir_all(&artifact_dir)?;
        let seeds_file = artifact_dir.join("failing-seeds.txt");
        let lines: String = failures
            .iter()
            .map(|f| format!("{} {}\n", f.suite, f.seed))
            .collect();
        std::fs::write(&seeds_file, lines)?;
        eprintln!("failing seeds recorded in {}", seeds_file.display());
        std::process::exit(1);
    }
    println!("schedule independence holds: zero divergence across all seeds");
    Ok(())
}
