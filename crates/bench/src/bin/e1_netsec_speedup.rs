//! E1 — the paper's §4 anecdote: a batch network-security report that took
//! "over 20 minutes" is produced "in milliseconds" (≈5 orders of
//! magnitude) by running the query continuously into an Active Table.
//!
//! We sweep raw-data volume and measure, at each size:
//! - `batch query`: store-first report over raw rows (scan + aggregate),
//! - `active lookup`: reading the continuously-maintained report table,
//! - the resulting speedup (which grows with volume, since the lookup
//!   cost is (near-)constant while the batch scan is linear).

#![deny(unsafe_code)]

use streamrel_baseline::StoreFirst;
use streamrel_bench::{fmt_dur, scale, timed, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_workload::NetsecGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E1: §4 network-security report — batch vs continuous\n");
    let sizes: Vec<usize> = [50_000usize, 200_000, 800_000]
        .iter()
        .map(|n| n * scale())
        .collect();

    let mut table = ResultTable::new(&[
        "raw rows",
        "batch store",
        "batch query",
        "cont ingest",
        "active lookup",
        "speedup",
    ]);
    let mut speedups = Vec::new();

    for &n in &sizes {
        // ---- store-first-query-later ----
        let mut sf = StoreFirst::new(&NetsecGen::create_table_sql("raw"), "raw")?;
        let mut gen = NetsecGen::new(11, 5_000, 0, 10_000);
        let rows = gen.take_rows(n);
        let (_, store_t) = timed(|| sf.load(rows.clone()).unwrap());
        let report_sql = NetsecGen::report_sql("raw");
        let (batch_rel, batch_t) = timed(|| sf.run_report(&report_sql).unwrap());

        // ---- continuous analytics ----
        let db = Db::in_memory(DbOptions::default());
        db.execute(&NetsecGen::create_stream_sql("events"))?;
        db.execute(
            "CREATE TABLE deny_report (src_ip varchar(40), denies bigint, \
             total_bytes bigint, w timestamp)",
        )?;
        db.execute(&NetsecGen::continuous_sql("events", "deny_now", "1 minute"))?;
        db.execute("CREATE CHANNEL ch FROM deny_now INTO deny_report APPEND")?;
        let clock = gen.clock();
        let (_, ingest_t) = timed(|| {
            for chunk in rows.chunks(20_000) {
                db.ingest_batch("events", chunk.to_vec()).unwrap();
            }
            db.heartbeat("events", clock + 60_000_000).unwrap();
        });
        let lookup_sql = "SELECT src_ip, sum(denies) denies, sum(total_bytes) tb \
                          FROM deny_report GROUP BY src_ip \
                          ORDER BY denies DESC LIMIT 20";
        let (cont_rel, lookup_t) = timed(|| db.execute(lookup_sql).unwrap().rows());

        // Same top offender and same deny count, different architecture.
        assert_eq!(batch_rel.rows()[0][0], cont_rel.rows()[0][0]);
        assert_eq!(batch_rel.rows()[0][1], cont_rel.rows()[0][1]);

        let speedup = batch_t.as_secs_f64() / lookup_t.as_secs_f64().max(1e-9);
        speedups.push(speedup);
        table.row(&[
            n.to_string(),
            fmt_dur(store_t),
            fmt_dur(batch_t),
            fmt_dur(ingest_t),
            fmt_dur(lookup_t),
            format!("{speedup:.0}x"),
        ]);
    }
    table.print();
    println!(
        "\nshape check: speedup grows with raw volume ({:.0}x → {:.0}x); \
         the paper's warehouse-scale anecdote cites ~100000x. \
         Run with SCALE=10+ to push further.",
        speedups.first().unwrap(),
        speedups.last().unwrap()
    );
    assert!(
        speedups.last().unwrap() > speedups.first().unwrap(),
        "speedup must grow with volume"
    );
    Ok(())
}
