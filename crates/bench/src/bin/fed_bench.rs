//! Federation bench: what does shipping derived streams between nodes
//! cost, and how fast does archive replay refill a rejoining consumer?
//!
//! Two measurements over a real TCP link (server + bridge in one
//! process, so the numbers are wire + reactor + bridge costs, not
//! scheduler noise):
//!
//! * **live fan-in** — a producer node streams `FED_WINDOWS` windows of
//!   `FED_ROWS` rows through a derived CQ; a consumer node bridges the
//!   partials into a local stream and re-aggregates. Reported as
//!   windows/s and rows/s end-to-end (ingest → remote window → bridge
//!   apply → local window close).
//! * **archive replay** — a late subscriber asks `SubscribeFrom{close=0}`
//!   for the entire archived history of the same stream and drains it.
//!   This is the recovery path a rejoining node exercises, so its
//!   throughput bounds how fast a consumer catches up after an outage.
//!
//! Writes `BENCH_federation.json`. Structural floors (windows delivered,
//! zero reconnects, zero apply errors) fail the run; timing numbers are
//! recorded for the bench-regression gate's tolerance bands.

#![deny(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use streamrel_bench::{fmt_dur, scale, timed, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_net::{Bridge, BridgeOptions, Client, Server};
use streamrel_types::time::MINUTES;
use streamrel_types::Value;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const PRODUCER_DDL: &[&str] = &[
    "CREATE STREAM hits (url varchar(100), htime timestamp CQTIME USER)",
    "CREATE TABLE hit_archive (url varchar(100), scnt integer, stime timestamp)",
    "CREATE STREAM hit_partials AS SELECT url, count(*) scnt, cq_close(*) stime \
     FROM hits <TUMBLING '1 minute'> GROUP BY url ORDER BY url",
    "CREATE CHANNEL hit_chan FROM hit_partials INTO hit_archive APPEND",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let windows = env_u64("FED_WINDOWS", 200 * scale() as u64) as i64;
    let rows_per_window = env_u64("FED_ROWS", 100) as i64;
    println!(
        "fed_bench: {windows} windows x {rows_per_window} rows across a \
         subscription->ingest bridge\n"
    );

    let producer = Arc::new(Db::in_memory(DbOptions::default()));
    for stmt in PRODUCER_DDL {
        producer.execute(stmt)?;
    }
    let server = Server::serve(producer.clone(), "127.0.0.1:0")?;

    let consumer = Arc::new(Db::in_memory(DbOptions::default()));
    consumer.execute(
        "CREATE STREAM partials (url varchar(100), scnt integer, stime timestamp CQTIME USER)",
    )?;
    consumer.execute("CREATE TABLE url_total (url varchar(100), hits bigint, w timestamp)")?;
    consumer.execute(
        "CREATE STREAM rollup AS SELECT url, sum(scnt) hits, cq_close(*) w \
         FROM partials <TUMBLING '1 minute'> GROUP BY url ORDER BY url",
    )?;
    consumer.execute("CREATE CHANNEL ct FROM rollup INTO url_total APPEND")?;

    let bridge = Bridge::start(
        consumer.clone(),
        server.local_addr().to_string(),
        "hit_partials",
        "partials",
        BridgeOptions::default(),
    )?;
    assert!(
        bridge.wait_until_up(Duration::from_secs(10)),
        "bridge never attached"
    );

    // ---- live fan-in ----
    let total_rows = windows * rows_per_window;
    let (_, live_t) = timed(|| {
        for w in 0..windows {
            let rows: Vec<Vec<Value>> = (0..rows_per_window)
                .map(|i| {
                    vec![
                        Value::text(format!("/p{}", i % 13)),
                        Value::Timestamp(w * MINUTES + i * (MINUTES / rows_per_window)),
                    ]
                })
                .collect();
            producer.ingest_batch("hits", rows).unwrap();
            producer.heartbeat("hits", (w + 1) * MINUTES).unwrap();
        }
        // +1 empty flush window carries the final watermark across.
        producer.heartbeat("hits", (windows + 1) * MINUTES).unwrap();
        assert!(
            bridge.wait_for_windows(windows as u64 + 1, Duration::from_secs(120)),
            "bridge applied only {} of {} windows",
            bridge.windows_applied(),
            windows + 1
        );
    });
    assert_eq!(bridge.reconnects(), 0, "link dropped during bench");
    assert_eq!(bridge.apply_errors(), 0);
    // Conservation end to end: every produced row is in the consumer's
    // archive exactly once.
    let archived = consumer
        .execute("SELECT coalesce(sum(hits), 0) FROM url_total")?
        .rows();
    assert_eq!(
        archived.rows()[0][0],
        Value::Int(total_rows),
        "rows lost or duplicated across the bridge"
    );

    // ---- archive replay (a rejoining consumer catching up) ----
    let replay_client = Client::connect(server.local_addr())?;
    let ((replayed_windows, replayed_rows), replay_t) = timed(|| {
        let stream = replay_client.subscribe_from("hit_partials", 0).unwrap();
        let mut wins = 0u64;
        let mut rows = 0u64;
        while wins < windows as u64 {
            let out = stream
                .next_timeout(Duration::from_secs(30))
                .expect("replay stalled");
            wins += 1;
            rows += out.relation.len() as u64;
        }
        (wins, rows)
    });
    assert_eq!(replayed_windows, windows as u64);

    let live_wps = windows as f64 / live_t.as_secs_f64().max(1e-9);
    let live_rps = total_rows as f64 / live_t.as_secs_f64().max(1e-9);
    let replay_wps = replayed_windows as f64 / replay_t.as_secs_f64().max(1e-9);
    let replay_rps = replayed_rows as f64 / replay_t.as_secs_f64().max(1e-9);
    let mut table = ResultTable::new(&["phase", "windows", "rows", "time", "windows/s", "rows/s"]);
    table.row(&[
        "live fan-in".into(),
        windows.to_string(),
        total_rows.to_string(),
        fmt_dur(live_t),
        format!("{live_wps:.0}"),
        format!("{live_rps:.0}"),
    ]);
    table.row(&[
        "archive replay".into(),
        replayed_windows.to_string(),
        replayed_rows.to_string(),
        fmt_dur(replay_t),
        format!("{replay_wps:.0}"),
        format!("{replay_rps:.0}"),
    ]);
    table.print();

    let json = format!(
        "{{\n  \"windows\": {windows},\n  \"rows_per_window\": {rows_per_window},\n  \
         \"live_windows_per_s\": {live_wps:.1},\n  \"live_rows_per_s\": {live_rps:.1},\n  \
         \"replay_windows_per_s\": {replay_wps:.1},\n  \"replay_rows_per_s\": {replay_rps:.1},\n  \
         \"reconnects\": {},\n  \"apply_errors\": {},\n  \"rows_conserved\": true\n}}\n",
        bridge.reconnects(),
        bridge.apply_errors(),
    );
    std::fs::write("BENCH_federation.json", json)?;
    println!("\nrecorded BENCH_federation.json");

    replay_client.close()?;
    bridge.shutdown();
    server.shutdown();
    Ok(())
}
