//! Cross-process federation torture: `kill -9` the serving node
//! mid-ingest, restart it, and prove the downstream node converges
//! byte-identically to an uncrashed single-process reference.
//!
//! This is the first torture lane that crosses a real process boundary:
//! the serving node is a **child process** (this same binary re-executed
//! with `--node`) running a durable `Db` behind a TCP server; the parent
//! drives a deterministic seeded feed over the wire, SIGKILLs the child
//! at seed-chosen windows, restarts it on the same data dir and port,
//! and re-drives exactly the rows the recovery contract says are the
//! producer's responsibility: everything at or above the archive's
//! high-water mark (rows below it are in durably archived windows; rows
//! above were open-window runtime state, lost with the process). The
//! consumer — a bridge in the parent — reconnects with backoff and
//! resumes via `SubscribeFrom{last applied close}`, replaying any
//! windows that closed while the link was down from the child's archive.
//!
//! Convergence claim: the consumer's merged windows are byte-identical
//! to the same pipeline run uncrashed in one process — closes, row
//! order, and encodings, not just totals.
//!
//! Env knobs (all optional):
//!
//! * `FED_SEED`    — base seed (default 42)
//! * `FED_SEEDS`   — consecutive seeds to sweep (default 1)
//! * `FED_WINDOWS` — producer windows per seed (default 8)
//! * `FED_KILLS`   — SIGKILLs per seed (default 2)
//! * `FED_ARTIFACT_DIR` — where failing node dirs land (default
//!   `target/federation-artifacts`)
//!
//! Reproduce a failure with `FED_SEED=<seed> FED_SEEDS=1 cargo run
//! --release -p streamrel-bench --bin federation_torture`.

#![deny(unsafe_code)]

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use streamrel_bench::ResultTable;
use streamrel_core::{Db, DbOptions, ExecResult, SubscriptionId};
use streamrel_net::{wire, Bridge, BridgeOptions, Client, Server};
use streamrel_types::time::MINUTES;
use streamrel_types::{Row, Value};

const PRODUCER_DDL: &[&str] = &[
    "CREATE STREAM hits (url varchar(100), htime timestamp CQTIME USER)",
    "CREATE TABLE hit_archive (url varchar(100), scnt integer, stime timestamp)",
    "CREATE STREAM hit_partials AS SELECT url, count(*) scnt, cq_close(*) stime \
     FROM hits <TUMBLING '1 minute'> GROUP BY url ORDER BY url",
    "CREATE CHANNEL hit_chan FROM hit_partials INTO hit_archive APPEND",
];
const CONSUMER_STREAM: &str =
    "CREATE STREAM partials (url varchar(100), scnt integer, stime timestamp CQTIME USER)";
const MERGED_CQ: &str = "SELECT url, sum(scnt) total, cq_close(*) w \
     FROM partials <TUMBLING '1 minute'> GROUP BY url ORDER BY url";

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// ---------------------------------------------------------------- child

/// Child mode: a serving node. Opens (or re-opens after a kill) the
/// durable database at `dir`, applies the pipeline DDL if this is a
/// fresh dir, binds `port` (0 = ephemeral; restarts retry the bind until
/// the OS releases the old listener) and prints `PORT=<n>`.
fn run_node(dir: &Path, port: u16) -> ! {
    let db = match Db::open(dir, DbOptions::default()) {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("node: cannot open {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    for stmt in PRODUCER_DDL {
        // Fresh dir: creates the pipeline. Restart: the catalog was
        // recovered from the WAL and each statement fails "exists" —
        // which is exactly the durability being tortured, so ignore.
        let _ = db.execute(stmt);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let server = loop {
        match Server::serve(db.clone(), ("127.0.0.1", port)) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("node: cannot bind 127.0.0.1:{port}: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    println!("PORT={}", server.local_addr().port());
    loop {
        std::thread::park();
    }
}

/// Spawn a serving node and wait for its `PORT=` line.
fn spawn_node(dir: &Path, port: u16) -> Result<(Child, u16), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .arg("--node")
        .arg(dir)
        .arg("--port")
        .arg(port.to_string())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn node: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.map_err(|e| format!("read node stdout: {e}"))?;
        if let Some(p) = line.strip_prefix("PORT=") {
            let port: u16 = p.parse().map_err(|e| format!("bad PORT line: {e}"))?;
            // Keep draining stdout so the child can never block on a
            // full pipe (it prints nothing more, but stay safe).
            std::thread::spawn(move || for _ in lines {});
            return Ok((child, port));
        }
    }
    let _ = child.kill();
    Err("node exited without printing PORT=".into())
}

// --------------------------------------------------------------- parent

/// Deterministic per-seed feed: `rows_of(seed, w)` is the same on every
/// run, so the parent can re-drive any suffix after a kill.
fn rows_of(seed: u64, w: i64, rows_per_window: i64) -> Vec<Row> {
    let mut x = seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..rows_per_window)
        .map(|i| {
            vec![
                Value::text(format!("/p{}", next() % 7)),
                Value::Timestamp(w * MINUTES + i * (MINUTES / rows_per_window)),
            ]
        })
        .collect()
}

/// Seed-chosen kill points: distinct windows in `1..windows` (never the
/// first, so there is always archived state to recover against).
fn kill_windows(seed: u64, windows: i64, kills: u64) -> Vec<i64> {
    // SplitMix64 over (seed, attempt): consecutive seeds get unrelated
    // schedules, unlike a raw xorshift whose low bits change slowly.
    let mix = |mut z: u64| {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut picked = Vec::new();
    let mut attempt = 0u64;
    while (picked.len() as u64) < kills.min(windows.saturating_sub(1) as u64) {
        let w = 1 + (mix(seed.wrapping_mul(0x100_0000) ^ attempt) % (windows as u64 - 1)) as i64;
        attempt += 1;
        if !picked.contains(&w) {
            picked.push(w);
        }
    }
    picked.sort_unstable();
    picked
}

fn subscribe(db: &Db, sql: &str) -> SubscriptionId {
    match db.execute(sql).unwrap() {
        ExecResult::Subscribed(s) => s,
        other => panic!("expected subscription from {sql}, got {other:?}"),
    }
}

fn canonical_outputs(outs: &[streamrel_cq::CqOutput]) -> Vec<(i64, Vec<u8>)> {
    outs.iter()
        .map(|o| (o.close, wire::encode_rows(&o.relation)))
        .collect()
}

/// The uncrashed reference: same pipeline, one process, no wire.
fn reference(seed: u64, windows: i64, rows_per_window: i64) -> Vec<(i64, Vec<u8>)> {
    let producer = Db::in_memory(DbOptions::default());
    for stmt in PRODUCER_DDL {
        producer.execute(stmt).unwrap();
    }
    let partials = producer.subscribe_stream("hit_partials").unwrap();
    let consumer = Db::in_memory(DbOptions::default());
    consumer.execute(CONSUMER_STREAM).unwrap();
    let merged = subscribe(&consumer, MERGED_CQ);
    for w in 0..windows {
        producer
            .ingest_batch("hits", rows_of(seed, w, rows_per_window))
            .unwrap();
        producer.heartbeat("hits", (w + 1) * MINUTES).unwrap();
    }
    producer.heartbeat("hits", (windows + 1) * MINUTES).unwrap();
    for out in producer.poll(partials).unwrap() {
        if !out.relation.rows().is_empty() {
            consumer
                .ingest_batch("partials", out.relation.rows().to_vec())
                .unwrap();
        }
        consumer.heartbeat("partials", out.close).unwrap();
    }
    canonical_outputs(&consumer.poll(merged).unwrap())
}

fn connect_retry(addr: &str, deadline: Duration) -> Result<Client, String> {
    let end = Instant::now() + deadline;
    loop {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => {
                if Instant::now() >= end {
                    return Err(format!("connect {addr}: {e}"));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// The archive high-water mark on the serving node: max `stime` in the
/// Active Table, or `i64::MIN` on an empty archive. Computed client-side
/// from a plain scan so the probe exercises no more SQL surface than the
/// pipeline itself.
fn archive_watermark(client: &Client) -> Result<i64, String> {
    let rel = client
        .execute("SELECT stime FROM hit_archive")
        .map_err(|e| format!("archive scan: {e}"))?;
    Ok(rel
        .rows()
        .iter()
        .filter_map(|r| match r.first() {
            Some(Value::Timestamp(t)) => Some(*t),
            _ => None,
        })
        .max()
        .unwrap_or(i64::MIN))
}

struct SeedOutcome {
    kills: u64,
    reconnects: u64,
    replayed_windows: u64,
    redriven_rows: u64,
    diverged: bool,
}

fn run_seed(
    seed: u64,
    windows: i64,
    rows_per_window: i64,
    kills: u64,
    artifact_dir: &Path,
) -> Result<SeedOutcome, String> {
    let expect = reference(seed, windows, rows_per_window);
    let dir = std::env::temp_dir().join(format!(
        "streamrel-fedtorture-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let (mut child, port) = spawn_node(&dir, 0)?;
    let addr = format!("127.0.0.1:{port}");

    // The downstream node: embedded consumer fed by a reconnecting bridge.
    let consumer = Arc::new(Db::in_memory(DbOptions::default()));
    consumer
        .execute(CONSUMER_STREAM)
        .map_err(|e| e.to_string())?;
    let merged = subscribe(&consumer, MERGED_CQ);
    let bridge = Bridge::start(
        consumer.clone(),
        addr.clone(),
        "hit_partials",
        "partials",
        BridgeOptions {
            backoff_initial: Duration::from_millis(20),
            backoff_max: Duration::from_millis(200),
            poll: Duration::from_millis(20),
            ..BridgeOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    if !bridge.wait_until_up(Duration::from_secs(10)) {
        return Err("bridge never attached to fresh node".into());
    }

    let kill_at = kill_windows(seed, windows, kills);
    let mut client = connect_retry(&addr, Duration::from_secs(10))?;
    let mut performed_kills = 0u64;
    let mut redriven_rows = 0u64;
    let mut w = 0i64;
    while w < windows {
        let rows = rows_of(seed, w, rows_per_window);
        if kill_at.contains(&w) {
            // Mid-ingest: half the window is in the node's open-window
            // runtime state when SIGKILL lands — gone with the process.
            let half = rows.len() / 2;
            client
                .ingest_batch("hits", &rows[..half])
                .map_err(|e| format!("pre-kill ingest: {e}"))?;
            child.kill().map_err(|e| format!("kill: {e}"))?;
            let _ = child.wait();
            performed_kills += 1;
            drop(client);

            // Restart on the same dir + port; the bridge's backoff loop
            // finds the new listener on its own.
            let (c2, p2) = spawn_node(&dir, port)?;
            child = c2;
            assert_eq!(p2, port, "node restarted on a different port");
            client = connect_retry(&addr, Duration::from_secs(10))?;

            // Producer-side recovery contract: everything at or above
            // the archive high-water mark is the feeder's to re-drive.
            let watermark = archive_watermark(&client)?;
            for wi in 0..=w {
                let redrive: Vec<Row> = rows_of(seed, wi, rows_per_window)
                    .into_iter()
                    .filter(|r| matches!(r[1], Value::Timestamp(t) if t >= watermark))
                    .collect();
                redriven_rows += redrive.len() as u64;
                if !redrive.is_empty() {
                    client
                        .ingest_batch("hits", &redrive)
                        .map_err(|e| format!("re-drive: {e}"))?;
                }
            }
            // Fall through: the loop re-runs window `w` from the top —
            // but its rows were just re-driven, so close it directly.
        } else {
            client
                .ingest_batch("hits", &rows)
                .map_err(|e| format!("ingest: {e}"))?;
        }
        client
            .heartbeat("hits", (w + 1) * MINUTES)
            .map_err(|e| format!("heartbeat: {e}"))?;
        w += 1;
    }
    client
        .heartbeat("hits", (windows + 1) * MINUTES)
        .map_err(|e| format!("flush heartbeat: {e}"))?;

    // Convergence: the consumer's merged windows equal the uncrashed
    // reference, byte for byte.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got = Vec::new();
    while got.len() < expect.len() && Instant::now() < deadline {
        got.extend(canonical_outputs(
            &consumer.poll(merged).map_err(|e| e.to_string())?,
        ));
        std::thread::sleep(Duration::from_millis(10));
    }
    let diverged = got != expect;
    if diverged {
        let seed_dir = artifact_dir.join(format!("seed{seed}"));
        let _ = std::fs::create_dir_all(&seed_dir);
        let _ = copy_dir(&dir, &seed_dir.join("node-data"));
        let detail = format!(
            "expected {} windows {:?}\ngot {} windows {:?}\n",
            expect.len(),
            expect.iter().map(|(c, _)| c).collect::<Vec<_>>(),
            got.len(),
            got.iter().map(|(c, _)| c).collect::<Vec<_>>()
        );
        let _ = std::fs::write(seed_dir.join("divergence.txt"), detail);
        eprintln!(
            "DIVERGENCE seed={seed} kills_at={kill_at:?}: consumer did not \
             converge (node data dir copied to {})\n  reproduce: FED_SEED={seed} \
             FED_SEEDS=1 cargo run --release -p streamrel-bench --bin federation_torture",
            seed_dir.display()
        );
    }

    // Replay stats come from the serving node's own counters.
    let replayed_windows = client
        .stats()
        .ok()
        .and_then(|rel| {
            rel.rows()
                .iter()
                .find(|r| r[0] == Value::text("fed.replayed_windows"))
                .and_then(|r| match r[2] {
                    Value::Int(v) => Some(v as u64),
                    _ => None,
                })
        })
        .unwrap_or(0);

    let reconnects = bridge.reconnects();
    bridge.shutdown();
    let _ = child.kill();
    let _ = child.wait(); // lint: wait-ok(process reap, not a condvar)
    if !diverged {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(SeedOutcome {
        kills: performed_kills,
        reconnects,
        replayed_windows,
        redriven_rows,
        diverged,
    })
}

fn copy_dir(from: &Path, to: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(to)?;
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        let dest = to.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir(&entry.path(), &dest)?;
        } else {
            std::fs::copy(entry.path(), &dest)?;
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Child mode?
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--node") {
        let dir = PathBuf::from(args.get(i + 1).expect("--node wants a dir"));
        let port = args
            .iter()
            .position(|a| a == "--port")
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u16);
        run_node(&dir, port);
    }

    let base_seed = env_u64("FED_SEED", 42);
    let seeds = env_u64("FED_SEEDS", 1).max(1);
    let windows = env_u64("FED_WINDOWS", 8) as i64;
    let rows_per_window = env_u64("FED_ROWS", 40) as i64;
    let kills = env_u64("FED_KILLS", 2);
    let artifact_dir = PathBuf::from(
        std::env::var("FED_ARTIFACT_DIR").unwrap_or_else(|_| "target/federation-artifacts".into()),
    );
    println!(
        "federation_torture: kill -9 the serving node at {kills} seeded windows \
         of {windows} ({rows_per_window} rows each), seeds {base_seed}..{}\n",
        base_seed + seeds - 1
    );

    let start = Instant::now();
    let mut table = ResultTable::new(&[
        "seed",
        "kills",
        "reconnects",
        "replayed windows",
        "re-driven rows",
        "converged",
    ]);
    let mut total = SeedOutcome {
        kills: 0,
        reconnects: 0,
        replayed_windows: 0,
        redriven_rows: 0,
        diverged: false,
    };
    let mut divergences = 0u64;
    for seed in base_seed..base_seed + seeds {
        let out = run_seed(seed, windows, rows_per_window, kills, &artifact_dir)?;
        table.row(&[
            seed.to_string(),
            out.kills.to_string(),
            out.reconnects.to_string(),
            out.replayed_windows.to_string(),
            out.redriven_rows.to_string(),
            (!out.diverged).to_string(),
        ]);
        if out.diverged {
            divergences += 1;
        }
        total.kills += out.kills;
        total.reconnects += out.reconnects;
        total.replayed_windows += out.replayed_windows;
        total.redriven_rows += out.redriven_rows;
    }
    let secs = start.elapsed().as_secs_f64();
    table.print();
    println!(
        "\n{} kills, {} reconnects, {} archive-replayed windows, {divergences} \
         divergences in {secs:.2}s",
        total.kills, total.reconnects, total.replayed_windows
    );

    let json = format!(
        "{{\n  \"base_seed\": {base_seed},\n  \"seeds\": {seeds},\n  \
         \"windows\": {windows},\n  \"kills\": {},\n  \"reconnects\": {},\n  \
         \"replayed_windows\": {},\n  \"redriven_rows\": {},\n  \
         \"divergences\": {divergences},\n  \"secs\": {secs:.3}\n}}\n",
        total.kills, total.reconnects, total.replayed_windows, total.redriven_rows
    );
    std::fs::write("BENCH_federation_torture.json", json)?;
    println!("recorded BENCH_federation_torture.json");

    if divergences > 0 {
        let _ = std::fs::create_dir_all(&artifact_dir);
        let _ = std::fs::write(
            artifact_dir.join("failing-seeds.txt"),
            format!("{divergences} diverging seeds; see seed dirs alongside\n"),
        );
        std::process::exit(1);
    }
    // A torture run that never killed anything proves nothing.
    assert!(
        total.kills >= seeds * kills.min(windows as u64 - 1),
        "kill schedule did not fire"
    );
    // Back-to-back kills can share one reconnect (the bridge may still
    // be backing off from the first when the second lands), but every
    // seed's link must have come back at least once.
    assert!(
        total.reconnects >= seeds,
        "bridge reconnected {} times across {seeds} seeds",
        total.reconnects
    );
    println!("federation recovery proof holds: zero divergence across all kills");
    Ok(())
}
