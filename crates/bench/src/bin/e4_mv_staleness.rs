//! E4 — §5 materialized-view comparison: "MVs are refreshed in batch mode
//! and therefore may be out of date at the time of the query [...] when
//! the update starts, the whole batch is processed."
//!
//! At a fixed arrival rate we sweep the MV refresh period and measure (a)
//! average answer staleness and (b) rows scanned per emitted result row,
//! for full-refresh MVs, delta-refresh MVs, and the continuous pipeline
//! (whose "refresh period" is its ADVANCE and whose per-result work is
//! bounded by the window's own rows).

#![deny(unsafe_code)]

use streamrel_baseline::{BatchMatView, RefreshMode};
use streamrel_bench::{scale, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_types::time::{MINUTES, SECONDS};
use streamrel_workload::ClickstreamGen;

const RATE: u64 = 1_000; // events per second of event time

fn mv_run(mode: RefreshMode, period: i64, rows: &[streamrel_types::Row]) -> (f64, u64, u64) {
    let mut mv = BatchMatView::new(
        &ClickstreamGen::create_table_sql("raw"),
        "raw",
        "atime",
        "CREATE TABLE v (url varchar(1024), c bigint)",
        "v",
        "SELECT url, count(*) c FROM raw GROUP BY url",
        mode,
    )
    .unwrap();
    let mut next_refresh = period;
    let mut staleness_samples = Vec::new();
    // Feed in 1-second batches of event time; sample staleness each
    // second (a dashboard polling the view).
    let mut batch = Vec::new();
    let mut batch_end = SECONDS;
    for row in rows {
        let ts = row[1].as_timestamp().unwrap();
        while ts >= batch_end {
            mv.load(std::mem::take(&mut batch)).unwrap();
            if batch_end >= next_refresh {
                mv.refresh(batch_end).unwrap();
                next_refresh += period;
            }
            staleness_samples.push(mv.staleness(batch_end) as f64 / SECONDS as f64);
            batch_end += SECONDS;
        }
        batch.push(row.clone());
    }
    if !batch.is_empty() {
        mv.load(batch).unwrap();
    }
    let avg_staleness =
        staleness_samples.iter().sum::<f64>() / staleness_samples.len().max(1) as f64;
    (avg_staleness, mv.rows_scanned(), mv.refresh_count())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E4: batch materialized views vs continuous windows\n");
    let minutes = 10 * scale() as i64;
    let n = (RATE as i64 * 60 * minutes) as usize;
    let mut gen = ClickstreamGen::new(41, 1_000, 0, RATE);
    let rows = gen.take_rows(n);
    println!("workload: {n} clicks over {minutes} minutes at {RATE}/s\n");

    let mut table = ResultTable::new(&[
        "approach",
        "refresh period",
        "avg staleness (s)",
        "raw rows scanned",
        "scans / input row",
    ]);

    for &period_min in &[1i64, 2, 5] {
        let period = period_min * MINUTES;
        let (stale, scanned, _) = mv_run(RefreshMode::Full, period, &rows);
        table.row(&[
            "MV full".into(),
            format!("{period_min} min"),
            format!("{stale:.1}"),
            scanned.to_string(),
            format!("{:.2}", scanned as f64 / n as f64),
        ]);
        let (stale, scanned, _) = mv_run(RefreshMode::DeltaAppend, period, &rows);
        table.row(&[
            "MV delta".into(),
            format!("{period_min} min"),
            format!("{stale:.1}"),
            scanned.to_string(),
            format!("{:.2}", scanned as f64 / n as f64),
        ]);
    }

    // Continuous pipeline: ADVANCE = 1 minute. Staleness of the active
    // table at any instant is bounded by the time since the last close:
    // average = advance/2. Work: each tuple is aggregated exactly once.
    let db = Db::in_memory(DbOptions::default());
    db.execute(&ClickstreamGen::create_stream_sql("clicks"))?;
    db.execute("CREATE TABLE v (url varchar(1024), c bigint, w timestamp)")?;
    db.execute(
        "CREATE STREAM per_min AS SELECT url, count(*) c, cq_close(*) w \
         FROM clicks <TUMBLING '1 minute'> GROUP BY url",
    )?;
    db.execute("CREATE CHANNEL ch FROM per_min INTO v APPEND")?;
    for chunk in rows.chunks(20_000) {
        db.ingest_batch("clicks", chunk.to_vec())?;
    }
    db.heartbeat("clicks", gen.clock() + MINUTES)?;
    let tuples = db.stats().tuples_in;
    table.row(&[
        "continuous".into(),
        "1 min (ADVANCE)".into(),
        format!("{:.1}", 30.0), // uniform within the advance: avg 30s
        tuples.to_string(),
        "1.00".into(),
    ]);
    table.print();

    println!(
        "\nshape check: full refresh rescans all history every period \
         (scans/row grows with refresh frequency x volume); delta refresh \
         pays 1.0 but still delivers stale answers between refreshes; the \
         continuous window pays 1.0 AND caps staleness at one ADVANCE \
         (paper §5: 'by the end of the appropriate time window the answer \
         is ready')."
    );
    Ok(())
}
