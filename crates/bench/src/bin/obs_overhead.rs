//! obs_overhead — what the observability layer costs on the E1 ingest
//! path.
//!
//! The metrics registry is always on, so "off vs on" cannot be compared
//! directly. Instead this harness (a) runs the E1 continuous-ingest
//! workload and measures its wall time, then (b) replays the instrument
//! operations that workload performed — counter bumps, gauge moves,
//! `Instant::now()` reads and histogram observations — against a private
//! registry, at a deliberate 10× multiplier. The replay time bounds the
//! instrumentation's share of the ingest path from above; the run fails
//! if even that inflated bound reaches 5% of ingest time.

#![deny(unsafe_code)]

use std::time::Instant;

use streamrel_bench::{fmt_dur, scale, timed, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_obs::Registry;
use streamrel_workload::NetsecGen;

/// Safety multiplier on the replayed instrument operations.
const REPLAY_FACTOR: u64 = 10;
/// Acceptance bound: instrumentation must stay under this share.
const MAX_OVERHEAD: f64 = 0.05;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("obs_overhead: metrics-layer cost on the E1 ingest path\n");
    let n = 200_000 * scale();
    const CHUNK: usize = 20_000;

    // ---- the instrumented workload: E1's continuous-ingest half ----
    let db = Db::in_memory(DbOptions::default());
    db.execute(&NetsecGen::create_stream_sql("events"))?;
    db.execute(
        "CREATE TABLE deny_report (src_ip varchar(40), denies bigint, \
         total_bytes bigint, w timestamp)",
    )?;
    db.execute(&NetsecGen::continuous_sql("events", "deny_now", "1 minute"))?;
    db.execute("CREATE CHANNEL ch FROM deny_now INTO deny_report APPEND")?;
    let mut gen = NetsecGen::new(11, 5_000, 0, 10_000);
    let rows = gen.take_rows(n);
    let clock = gen.clock();
    let (_, ingest_t) = timed(|| {
        for chunk in rows.chunks(CHUNK) {
            db.ingest_batch("events", chunk.to_vec()).unwrap();
        }
        db.heartbeat("events", clock + 60_000_000).unwrap();
    });

    // How many windows the workload actually closed (each close is one
    // histogram observation plus a trace event in the engine).
    let windows = db.stats().windows_out;

    // ---- replay the instrument traffic, overstated by REPLAY_FACTOR ----
    // Per ingest batch the engine pays ~1 Instant read, a handful of
    // counter bumps and 1 commit-latency observation; per window close,
    // 1 close-latency observation plus counters. Replay all of it 10×.
    let batches = rows.chunks(CHUNK).len() as u64 + 1; // + heartbeat
    let reg = Registry::new(1024);
    let counter = reg.counter("replay.counter");
    let gauge = reg.gauge("replay.gauge");
    let hist = reg.histogram("replay.hist_us");
    let (_, obs_t) = timed(|| {
        for _ in 0..REPLAY_FACTOR {
            for _ in 0..batches {
                let start = Instant::now();
                counter.add(CHUNK as u64);
                counter.inc();
                counter.inc();
                counter.inc();
                gauge.add(1);
                hist.observe_from(start);
            }
            for _ in 0..windows {
                let start = Instant::now();
                counter.inc();
                gauge.add(-1);
                hist.observe_from(start);
                reg.trace().record("replay", "bench", "window close", 0);
            }
        }
    });

    let share = obs_t.as_secs_f64() / ingest_t.as_secs_f64().max(1e-9);
    let mut table = ResultTable::new(&[
        "tuples",
        "windows",
        "ingest",
        "obs replay (10x)",
        "overhead bound",
    ]);
    table.row(&[
        n.to_string(),
        windows.to_string(),
        fmt_dur(ingest_t),
        fmt_dur(obs_t),
        format!("{:.3}%", share * 100.0),
    ]);
    table.print();

    println!(
        "\nshape check: even a 10x replay of the instrument traffic must \
         stay under {:.0}% of ingest time.",
        MAX_OVERHEAD * 100.0
    );
    assert!(
        share < MAX_OVERHEAD,
        "observability overhead bound {:.3}% exceeds {:.0}%",
        share * 100.0,
        MAX_OVERHEAD * 100.0
    );
    Ok(())
}
