//! ingest_parallel — aggregate ingest throughput under the sharded
//! execution core vs the seed's single-lock baseline.
//!
//! Four base streams are fed by four concurrent ingester threads for a
//! fixed wall-clock window. Three streams carry a cheap tumbling count;
//! the fourth carries a deliberately expensive CQ (a grouped sliding
//! window that re-scans a large buffer on every close). Under the
//! single-lock baseline every window close on the slow stream stalls
//! ingest on all three fast streams; under per-stream shards it stalls
//! only its own. The aggregate rows/sec across all four streams is the
//! headline number — the isolation win shows up even on a single-core
//! host, because baseline ingesters are *blocked* on the one lock while
//! sharded ingesters stay runnable.
//!
//! The run records the measurement to `BENCH_ingest_parallel.json` and
//! fails (non-zero exit, for the CI smoke job) if the sharded
//! configuration does not reach `MIN_SPEEDUP` over the baseline. The
//! floor is only enforced when the host actually has `STREAMS` cores:
//! on fewer cores the total CPU budget is fixed, so no lock layout can
//! multiply aggregate throughput and the number is reported as-is.

#![deny(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use streamrel_bench::ResultTable;
use streamrel_core::{Db, DbOptions};
use streamrel_types::Value;

/// Streams, ingester threads, and shards in the sharded configuration.
const STREAMS: usize = 4;
/// Measured ingest window per configuration.
const RUN: Duration = Duration::from_millis(2_500);
/// CI acceptance floor for sharded-vs-baseline aggregate throughput.
const MIN_SPEEDUP: f64 = 1.5;
/// Rows per `ingest_batch` call on the fast streams.
const FAST_BATCH: usize = 256;
/// Rows per `ingest_batch` call on the slow stream. Small on purpose:
/// each batch advances logical time enough to close several windows.
const SLOW_BATCH: usize = 48;

fn setup(db: &Db) {
    for i in 0..STREAMS - 1 {
        db.execute(&format!(
            "CREATE STREAM s{i} (v integer, ts timestamp CQTIME USER)"
        ))
        .unwrap();
        db.execute(&format!(
            "SELECT count(*) c, cq_close(*) w FROM s{i} <TUMBLING '1 minute'>"
        ))
        .unwrap();
    }
    // The slow stream: every 5-second advance re-scans a 10-minute
    // buffer, grouped and sorted — a stand-in for an expensive report.
    db.execute("CREATE STREAM slow (k varchar(8), ts timestamp CQTIME USER)")
        .unwrap();
    db.execute(
        "SELECT k, count(*) c FROM slow \
         <VISIBLE '10 minutes' ADVANCE '5 seconds'> \
         GROUP BY k ORDER BY c DESC, k",
    )
    .unwrap();
}

/// Feed all four streams concurrently for `RUN`; return aggregate rows/s.
fn run(opts: DbOptions) -> f64 {
    let db = Db::in_memory(opts);
    setup(&db);
    let total = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for i in 0..STREAMS - 1 {
            let (db, total) = (&db, &total);
            s.spawn(move || {
                let stream = format!("s{i}");
                let mut clock = 0i64;
                while start.elapsed() < RUN {
                    let rows: Vec<Vec<Value>> = (0..FAST_BATCH)
                        .map(|_| {
                            clock += 1_000_000;
                            vec![Value::Int(clock / 1_000_000), Value::Timestamp(clock)]
                        })
                        .collect();
                    db.ingest_batch(&stream, rows).unwrap();
                    total.fetch_add(FAST_BATCH as u64, Ordering::SeqCst);
                }
            });
        }
        let (db, total) = (&db, &total);
        s.spawn(move || {
            let mut clock = 0i64;
            while start.elapsed() < RUN {
                let rows: Vec<Vec<Value>> = (0..SLOW_BATCH)
                    .map(|n| {
                        clock += 1_000_000;
                        vec![Value::text(format!("k{}", n % 7)), Value::Timestamp(clock)]
                    })
                    .collect();
                db.ingest_batch("slow", rows).unwrap();
                total.fetch_add(SLOW_BATCH as u64, Ordering::SeqCst);
            }
        });
    });
    total.load(Ordering::SeqCst) as f64 / start.elapsed().as_secs_f64()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ingest_parallel: sharded execution core vs single-lock baseline\n");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let baseline = run(DbOptions::default().with_shards(1).with_pool_workers(0));
    let sharded = run(DbOptions::default().with_shards(STREAMS));
    let speedup = sharded / baseline;

    let mut table = ResultTable::new(&["configuration", "aggregate rows/s"]);
    table.row(&["single lock, inline eval".into(), format!("{baseline:.0}")]);
    table.row(&[
        format!("{STREAMS} shards, worker pool"),
        format!("{sharded:.0}"),
    ]);
    table.print();
    println!(
        "\n{STREAMS} streams / {STREAMS} ingesters on {cores} core(s): \
         {speedup:.2}x aggregate throughput"
    );

    let json = format!(
        "{{\n  \"streams\": {STREAMS},\n  \"shards\": {STREAMS},\n  \
         \"cores\": {cores},\n  \"baseline_tps\": {baseline:.1},\n  \
         \"sharded_tps\": {sharded:.1},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    std::fs::write("BENCH_ingest_parallel.json", json)?;
    println!("recorded BENCH_ingest_parallel.json");

    if cores < STREAMS {
        println!(
            "SKIP: {MIN_SPEEDUP}x floor needs {STREAMS} cores (host has \
             {cores}); aggregate throughput cannot scale past the CPU budget"
        );
        return Ok(());
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor");
        std::process::exit(1);
    }
    println!("PASS: speedup {speedup:.2}x >= {MIN_SPEEDUP}x");
    Ok(())
}
