//! ingest_parallel — *durable* aggregate ingest throughput under the
//! sharded execution core + per-shard WAL vs the seed's single-lock,
//! single-log baseline.
//!
//! Four base streams are fed by four concurrent ingester threads for a
//! fixed wall-clock window. Three streams carry a cheap tumbling count;
//! the fourth carries a deliberately expensive CQ (a grouped sliding
//! window that re-scans a large buffer on every close). Every stream
//! also archives its raw tuples through an APPEND channel, so each
//! ingest batch commits through the WAL — this is the path that
//! regressed when the sharded core (PR 4) funneled every shard's commit
//! through one `Mutex<Wal>`. The sharded configuration routes each
//! shard to its own `wal-<k>.log` commit domain with group commit
//! (DESIGN.md §13); the baseline pins one shard and one log.
//!
//! The run records the measurement to `BENCH_ingest_parallel.json` and
//! fails (non-zero exit, for the CI smoke job) if the sharded
//! configuration does not reach `MIN_SPEEDUP` over the baseline. The
//! floor is only enforced when the host actually has `STREAMS` cores:
//! on fewer cores the total CPU budget is fixed, so no lock or log
//! layout can multiply aggregate throughput. A skipped floor is recorded
//! honestly: the JSON carries `"skipped": true` plus the reason, so a
//! dashboard can never mistake a too-small host for a pass.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use streamrel_bench::ResultTable;
use streamrel_core::{Db, DbOptions};
use streamrel_storage::SyncMode;
use streamrel_types::Value;

/// Streams, ingester threads, and shards in the sharded configuration.
const STREAMS: usize = 4;
/// Measured ingest window per configuration.
const RUN: Duration = Duration::from_millis(2_500);
/// CI acceptance floor for sharded-vs-baseline aggregate throughput.
const MIN_SPEEDUP: f64 = 1.5;
/// Rows per `ingest_batch` call on the fast streams.
const FAST_BATCH: usize = 256;
/// Rows per `ingest_batch` call on the slow stream. Small on purpose:
/// each batch advances logical time enough to close several windows.
const SLOW_BATCH: usize = 48;

fn setup(db: &Db) {
    for i in 0..STREAMS - 1 {
        db.execute(&format!(
            "CREATE STREAM s{i} (v integer, ts timestamp CQTIME USER)"
        ))
        .unwrap();
        db.execute(&format!(
            "SELECT count(*) c, cq_close(*) w FROM s{i} <TUMBLING '1 minute'>"
        ))
        .unwrap();
        // Raw archive: every ingested batch commits through the WAL.
        db.execute(&format!("CREATE TABLE raw{i} (v integer, ts timestamp)"))
            .unwrap();
        db.execute(&format!(
            "CREATE CHANNEL ch{i} FROM s{i} INTO raw{i} APPEND"
        ))
        .unwrap();
    }
    // The slow stream: every 5-second advance re-scans a 10-minute
    // buffer, grouped and sorted — a stand-in for an expensive report.
    db.execute("CREATE STREAM slow (k varchar(8), ts timestamp CQTIME USER)")
        .unwrap();
    db.execute(
        "SELECT k, count(*) c FROM slow \
         <VISIBLE '10 minutes' ADVANCE '5 seconds'> \
         GROUP BY k ORDER BY c DESC, k",
    )
    .unwrap();
    db.execute("CREATE TABLE rawslow (k varchar(8), ts timestamp)")
        .unwrap();
    db.execute("CREATE CHANNEL chslow FROM slow INTO rawslow APPEND")
        .unwrap();
}

/// Feed all four streams concurrently for `RUN` against a durable
/// database in a scratch directory; return aggregate rows/s.
fn run(tag: &str, opts: DbOptions) -> f64 {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "streamrel-ingest-parallel-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Db::open(&dir, opts).unwrap();
    setup(&db);
    let total = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for i in 0..STREAMS - 1 {
            let (db, total) = (&db, &total);
            s.spawn(move || {
                let stream = format!("s{i}");
                let mut clock = 0i64;
                while start.elapsed() < RUN {
                    let rows: Vec<Vec<Value>> = (0..FAST_BATCH)
                        .map(|_| {
                            clock += 1_000_000;
                            vec![Value::Int(clock / 1_000_000), Value::Timestamp(clock)]
                        })
                        .collect();
                    db.ingest_batch(&stream, rows).unwrap();
                    total.fetch_add(FAST_BATCH as u64, Ordering::SeqCst);
                }
            });
        }
        let (db, total) = (&db, &total);
        s.spawn(move || {
            let mut clock = 0i64;
            while start.elapsed() < RUN {
                let rows: Vec<Vec<Value>> = (0..SLOW_BATCH)
                    .map(|n| {
                        clock += 1_000_000;
                        vec![Value::text(format!("k{}", n % 7)), Value::Timestamp(clock)]
                    })
                    .collect();
                db.ingest_batch("slow", rows).unwrap();
                total.fetch_add(SLOW_BATCH as u64, Ordering::SeqCst);
            }
        });
    });
    let tps = total.load(Ordering::SeqCst) as f64 / start.elapsed().as_secs_f64();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    tps
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "ingest_parallel: sharded core + per-shard WAL vs \
         single-lock, single-log baseline (durable, Fsync)\n"
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let baseline = run(
        "baseline",
        DbOptions::default()
            .with_sync(SyncMode::Fsync)
            .with_shards(1)
            .with_wal_shards(1)
            .with_pool_workers(0),
    );
    let sharded = run(
        "sharded",
        DbOptions::default()
            .with_sync(SyncMode::Fsync)
            .with_shards(STREAMS)
            .with_wal_shards(STREAMS),
    );
    let speedup = sharded / baseline;
    let skipped = cores < STREAMS;
    let skip_reason = if skipped {
        format!(
            "host has {cores} core(s); the {MIN_SPEEDUP}x floor needs \
             {STREAMS} — aggregate throughput cannot scale past the CPU budget"
        )
    } else {
        String::new()
    };

    let mut table = ResultTable::new(&["configuration", "aggregate rows/s"]);
    table.row(&[
        "1 shard, 1 wal log, inline eval".into(),
        format!("{baseline:.0}"),
    ]);
    table.row(&[
        format!("{STREAMS} shards, {STREAMS} wal logs, worker pool"),
        format!("{sharded:.0}"),
    ]);
    table.print();
    println!(
        "\n{STREAMS} streams / {STREAMS} ingesters on {cores} core(s): \
         {speedup:.2}x aggregate durable throughput"
    );

    let json = format!(
        "{{\n  \"streams\": {STREAMS},\n  \"shards\": {STREAMS},\n  \
         \"wal_shards\": {STREAMS},\n  \"durable\": true,\n  \
         \"cores\": {cores},\n  \"baseline_tps\": {baseline:.1},\n  \
         \"sharded_tps\": {sharded:.1},\n  \"speedup\": {speedup:.3},\n  \
         \"skipped\": {skipped},\n  \"skip_reason\": \"{skip_reason}\"\n}}\n"
    );
    std::fs::write("BENCH_ingest_parallel.json", json)?;
    println!("recorded BENCH_ingest_parallel.json");

    if skipped {
        println!("SKIP: {skip_reason}");
        return Ok(());
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor");
        std::process::exit(1);
    }
    println!("PASS: speedup {speedup:.2}x >= {MIN_SPEEDUP}x");
    Ok(())
}
