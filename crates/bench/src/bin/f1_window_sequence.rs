//! F1 — Figure 1 reproduction: "Windows Produce a Sequence of Tables".
//!
//! Demonstrates RSTREAM semantics concretely: the paper's Example 2 window
//! clause applied to a small clickstream, printing the sequence of
//! relations the window operator produces and the query result over each.

#![deny(unsafe_code)]

use streamrel_core::{Db, DbOptions};
use streamrel_types::time::MINUTES;
use streamrel_types::{format_timestamp, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("F1: Figure 1 — windows produce a sequence of tables\n");
    let db = Db::in_memory(DbOptions::default());
    db.execute(
        "CREATE STREAM url_stream (url varchar(1024), \
         atime timestamp CQTIME USER, client_ip varchar(50))",
    )?;

    // Raw window contents (SELECT *) and the aggregated query, side by
    // side, per window.
    let raw = db
        .execute("SELECT url, atime FROM url_stream <VISIBLE '2 minutes' ADVANCE '1 minute'>")?
        .subscription();
    let agg = db
        .execute(
            "SELECT url, count(*) url_count FROM url_stream \
             <VISIBLE '2 minutes' ADVANCE '1 minute'> \
             GROUP BY url ORDER BY url_count DESC",
        )?
        .subscription();

    let clicks = [
        ("/home", 10i64),
        ("/buy", 30),
        ("/home", 50),
        ("/home", MINUTES + 10),
        ("/buy", MINUTES + 40),
        ("/home", 2 * MINUTES + 5),
    ];
    for (url, ts) in clicks {
        db.ingest(
            "url_stream",
            vec![
                Value::text(url),
                Value::Timestamp(ts * 1_000_000 / 1_000_000),
                Value::text("1.2.3.4"),
            ],
        )?;
    }
    db.heartbeat("url_stream", 3 * MINUTES)?;

    let raw_windows = db.poll(raw)?;
    let agg_windows = db.poll(agg)?;
    assert_eq!(raw_windows.len(), agg_windows.len());
    println!(
        "the stream was cut into {} window relations (ADVANCE = 1 minute):\n",
        raw_windows.len()
    );
    for (rw, aw) in raw_windows.iter().zip(&agg_windows) {
        println!(
            "== window closing at {} (VISIBLE = last 2 minutes) ==",
            format_timestamp(rw.close)
        );
        println!("window relation ({} tuples):", rw.relation.len());
        print!("{}", rw.relation.to_table());
        println!("query result over this relation:");
        print!("{}", aw.relation.to_table());
        println!();
    }
    println!(
        "each window is an ordinary finite relation; the SQL query runs \
         unchanged over each, and the concatenated results form the output \
         stream (paper §3.1, Figure 1)."
    );
    Ok(())
}
