//! E5 — §1.3/§5 map-reduce comparison: "technologies such as map/reduce
//! [...] are inherently batch-oriented and are much more resource
//! intensive than the Jellybean processing that a stream-relational system
//! can provide."
//!
//! The same grouped count (denied high-severity events per source) is
//! computed by (a) the mini map/shuffle/reduce engine re-run over all
//! stored data each reporting period, with spill-to-disk intermediates,
//! and (b) the continuous pipeline. We report total work (rows touched)
//! and wall time across a day of periodic reporting.

#![deny(unsafe_code)]

use streamrel_baseline::{MiniMr, MrConfig};
use streamrel_bench::{fmt_dur, scale, timed, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_workload::NetsecGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E5: mini map/reduce (batch, rerun per report) vs continuous\n");
    let n = 400_000 * scale();
    let reports = 8; // periodic reporting runs over the same growing data
    let mut gen = NetsecGen::new(51, 5_000, 0, 10_000);
    let all_rows = gen.take_rows(n);
    println!("workload: {n} security events, {reports} reporting periods\n");

    // ---- map/reduce: rerun over everything stored so far, each period ----
    let spill = std::env::temp_dir().join(format!("streamrel-e5-{}", std::process::id()));
    let mut mr = MiniMr::new(MrConfig {
        workers: 4,
        partitions: 8,
        spill_dir: Some(spill.clone()),
    });
    let mut mr_rows_touched = 0u64;
    let mut mr_spilled = 0u64;
    let mut last_mr = Vec::new();
    let (_, mr_time) = timed(|| {
        for p in 1..=reports {
            let upto = n * p / reports;
            last_mr = mr
                .run_grouped_sum(&all_rows[..upto], MiniMr::netsec_deny_map)
                .unwrap();
            mr_rows_touched += mr.last_stats().mapped;
            mr_spilled += mr.last_stats().spilled_bytes;
        }
    });
    let _ = std::fs::remove_dir_all(&spill);

    // ---- continuous: every tuple processed once, reports are lookups ----
    let db = Db::in_memory(DbOptions::default());
    db.execute(&NetsecGen::create_stream_sql("events"))?;
    db.execute(
        "CREATE TABLE deny_report (src_ip varchar(40), denies bigint, \
         total_bytes bigint, w timestamp)",
    )?;
    db.execute(&NetsecGen::continuous_sql("events", "deny_now", "1 minute"))?;
    db.execute("CREATE CHANNEL ch FROM deny_now INTO deny_report APPEND")?;
    let mut cq_report =
        streamrel_types::Relation::empty(std::sync::Arc::new(streamrel_types::Schema::empty()));
    let (_, cq_time) = timed(|| {
        for p in 1..=reports {
            let lo = n * (p - 1) / reports;
            let hi = n * p / reports;
            for chunk in all_rows[lo..hi].chunks(20_000) {
                db.ingest_batch("events", chunk.to_vec()).unwrap();
            }
            // The periodic "report" is a lookup over the active table.
            cq_report = db
                .execute(
                    "SELECT src_ip, sum(total_bytes) tb FROM deny_report \
                     GROUP BY src_ip ORDER BY tb DESC",
                )
                .unwrap()
                .rows();
        }
        db.heartbeat("events", gen.clock() + 60_000_000).unwrap();
    });
    let cq_rows_touched = db.stats().tuples_in;

    // Same winner both ways.
    let mr_top = last_mr
        .iter()
        .max_by_key(|(_, bytes, _)| *bytes)
        .map(|(k, _, _)| k.clone())
        .unwrap();
    // (final CQ lookup ran before the last heartbeat; re-read to include it)
    let final_rel = db
        .execute(
            "SELECT src_ip, sum(total_bytes) tb FROM deny_report \
             GROUP BY src_ip ORDER BY tb DESC",
        )?
        .rows();
    assert_eq!(final_rel.rows()[0][0].as_text()?, mr_top);

    let mut table = ResultTable::new(&[
        "approach",
        "rows touched",
        "touch factor",
        "shuffle bytes",
        "wall time",
    ]);
    table.row(&[
        "mini map/reduce".into(),
        mr_rows_touched.to_string(),
        format!("{:.2}x", mr_rows_touched as f64 / n as f64),
        mr_spilled.to_string(),
        fmt_dur(mr_time),
    ]);
    table.row(&[
        "continuous".into(),
        cq_rows_touched.to_string(),
        format!("{:.2}x", cq_rows_touched as f64 / n as f64),
        "0".into(),
        fmt_dur(cq_time),
    ]);
    table.print();

    println!(
        "\nshape check: periodic batch MR touches each stored row once per \
         rerun (~{:.1}x total with {reports} reports over growing data) and \
         materializes shuffle intermediates; the continuous pipeline \
         touches each tuple exactly once.",
        (reports + 1) as f64 / 2.0
    );
    assert!(
        mr_rows_touched > cq_rows_touched * 3,
        "MR must re-touch data"
    );
    Ok(())
}
