//! check_overhead — what the Level-1 admission analysis costs at CQ
//! registration.
//!
//! A CQ registers once and runs for days, so the admission check can
//! afford to be thorough — but not unboundedly so: interactive clients
//! register subscriptions on connect, and DDL replay at recovery runs the
//! gate for every persisted derived stream. This harness runs
//! `check_plan` over a set of representative plan shapes (windowed scan,
//! shared-shape aggregate, stream-table join, raw-stream sort, and a
//! rejected unbounded plan) against a live shared registry, and fails if
//! the mean per-plan analysis exceeds 1 ms.

#![deny(unsafe_code)]

use std::sync::Arc;

use streamrel_bench::{fmt_dur, scale, timed, ResultTable};
use streamrel_check::{check_plan, CheckContext};
use streamrel_cq::SharedRegistry;
use streamrel_sql::analyzer::SchemaProvider;
use streamrel_sql::plan::SchemaRef;
use streamrel_sql::{parse_statement, Analyzer, LogicalPlan, RelKind, Statement};
use streamrel_types::schema::{Column, Schema};
use streamrel_types::DataType;

/// Acceptance bound: mean analysis time per CQ registration.
const MAX_PER_CQ_US: f64 = 1_000.0; // 1 ms

struct BenchProvider;

impl SchemaProvider for BenchProvider {
    fn relation(&self, name: &str) -> Option<(SchemaRef, RelKind)> {
        match name {
            "hits" => Some((
                Arc::new(Schema::new_unchecked(vec![
                    Column::new("ts", DataType::Timestamp),
                    Column::new("url", DataType::Text),
                    Column::new("bytes", DataType::Int),
                ])),
                RelKind::Stream { cqtime: Some(0) },
            )),
            "sites" => Some((
                Arc::new(Schema::new_unchecked(vec![
                    Column::new("url", DataType::Text),
                    Column::new("owner", DataType::Text),
                ])),
                RelKind::Table,
            )),
            _ => None,
        }
    }
}

const QUERIES: &[&str] = &[
    "SELECT url, bytes FROM hits <VISIBLE '5 minutes' ADVANCE '1 minute'>",
    "SELECT url, count(*) c, sum(bytes) b FROM hits <TUMBLING '1 minute'> GROUP BY url",
    "SELECT h.url, s.owner FROM hits <VISIBLE 100 ROWS ADVANCE 10 ROWS> h \
     JOIN sites s ON h.url = s.url",
    "SELECT url FROM hits <VISIBLE '2 minutes' ADVANCE '1 minute'> ORDER BY url",
    "SELECT url, count(*) c FROM hits GROUP BY url", // rejected: unbounded
];

fn plan_of(sql: &str) -> LogicalPlan {
    let Statement::Select(q) = parse_statement(sql).expect("parse") else {
        panic!("not a select: {sql}");
    };
    Analyzer::new(&BenchProvider)
        .analyze(&q)
        .expect("analyze")
        .plan
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("check_overhead: Level-1 admission analysis per CQ registration\n");
    let iters = 2_000 * scale();
    let plans: Vec<LogicalPlan> = QUERIES.iter().map(|q| plan_of(q)).collect();
    let registry = SharedRegistry::new();
    let ctx = CheckContext {
        sharing: true,
        ivm: true,
        registry: Some(&registry),
        budget: None,
    };

    // Warm-up plus sanity: the unbounded plan must be the one rejection.
    let rejected = plans
        .iter()
        .filter(|p| check_plan(p, &ctx).rejection().is_some())
        .count();
    assert_eq!(rejected, 1, "exactly one bench plan is unadmissible");

    let (checks, total) = timed(|| {
        let mut n = 0u64;
        for _ in 0..iters {
            for p in &plans {
                // The report is the registration gate's entire cost.
                let report = check_plan(p, &ctx);
                n += report.findings.len() as u64;
            }
        }
        n
    });
    let per_cq_us = total.as_secs_f64() * 1e6 / (iters * plans.len()) as f64;

    let mut table = ResultTable::new(&["plans", "checks run", "total", "mean per CQ"]);
    table.row(&[
        plans.len().to_string(),
        (iters * plans.len()).to_string(),
        fmt_dur(total),
        format!("{per_cq_us:.2} us"),
    ]);
    table.print();
    let _ = checks;

    println!(
        "\nshape check: registration-time analysis must stay under \
         {:.0} us ({} ms) per CQ.",
        MAX_PER_CQ_US,
        MAX_PER_CQ_US / 1_000.0
    );
    assert!(
        per_cq_us < MAX_PER_CQ_US,
        "admission analysis costs {per_cq_us:.2} us per CQ, over the 1 ms bound"
    );
    Ok(())
}
