//! E7 — §4 recovery: "it is possible to instead implement a strategy that
//! rebuilds runtime state from disk automatically" using Active Tables,
//! instead of checkpointing every operator or replaying the whole log.
//!
//! We run a pipeline for N windows, crash it, and compare recovery
//! strategies by tuples replayed and wall time:
//! - `active-table watermark`: resume at the archive's high-water mark,
//!   replaying only raw tuples past it (the paper's approach);
//! - `full replay`: reprocess the entire raw archive from the beginning
//!   (what a system without Active-Table watermarks must do).

#![deny(unsafe_code)]

use streamrel_bench::{fmt_dur, scale, timed, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_cq::recovery::{archive_watermark, full_replay_count, replay_rows_after};
use streamrel_storage::SyncMode;
use streamrel_types::time::MINUTES;
use streamrel_workload::ClickstreamGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E7: CQ recovery — active-table watermark vs full log replay\n");
    let minutes = 30 * scale() as i64;
    let rate = 1_000u64;
    let dir = std::env::temp_dir().join(format!("streamrel-e7-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let opts = DbOptions::default().with_sync(SyncMode::NoSync);
    let total_rows = (rate as i64 * 60 * minutes) as usize;
    let crash_clock;
    {
        let db = Db::open(&dir, opts)?;
        db.execute(&ClickstreamGen::create_stream_sql("clicks"))?;
        db.execute("CREATE TABLE raw (url varchar(1024), atime timestamp, ip varchar(50))")?;
        db.execute("CREATE CHANNEL raw_ch FROM clicks INTO raw APPEND")?;
        db.execute("CREATE TABLE agg (url varchar(1024), c bigint, w timestamp)")?;
        db.execute(
            "CREATE STREAM per_min AS SELECT url, count(*) c, cq_close(*) w \
             FROM clicks <TUMBLING '1 minute'> GROUP BY url",
        )?;
        db.execute("CREATE CHANNEL agg_ch FROM per_min INTO agg APPEND")?;
        let mut gen = ClickstreamGen::new(71, 1_000, 0, rate);
        for chunk in gen.take_rows(total_rows).chunks(20_000) {
            db.ingest_batch("clicks", chunk.to_vec())?;
        }
        // NOTE: no final heartbeat — the last partial minute is in-flight
        // runtime state, lost at the crash.
        crash_clock = gen.clock();
        // Crash.
    }

    // ---- recovery ----
    let (db, open_t) = timed(|| Db::open(&dir, opts).unwrap());

    // Strategy A: paper — watermark from the Active Table, replay tail.
    let ((_wm, tail), wm_t) = timed(|| {
        let wm = archive_watermark(db.engine(), "agg", "w")
            .unwrap()
            .unwrap_or(i64::MIN);
        let tail = replay_rows_after(db.engine(), "raw", "atime", wm).unwrap();
        (wm, tail)
    });
    let tail_len = tail.len();
    // Rebuild the in-flight window by replaying the tail (drop the raw
    // channel first so replayed tuples are not re-archived).
    let (_, rebuild_t) = timed(|| {
        db.execute("DROP CHANNEL raw_ch").unwrap();
        for chunk in tail.chunks(20_000) {
            db.ingest_batch("clicks", chunk.to_vec()).unwrap();
        }
        db.execute("CREATE CHANNEL raw_ch FROM clicks INTO raw APPEND")
            .unwrap();
    });

    // Strategy B: full replay cost (counted, and timed as a pure scan +
    // re-aggregation over everything in the raw archive).
    let (full_count, full_scan_t) = timed(|| full_replay_count(db.engine(), "raw").unwrap());
    // A full replay also has to redo every window's aggregation:
    let (_, full_agg_t) = timed(|| {
        db.execute("SELECT url, count(*) FROM raw GROUP BY url ORDER BY 2 DESC LIMIT 1")
            .unwrap()
            .rows()
    });

    println!(
        "durable-state recovery (WAL replay), common to both strategies: {}\n",
        fmt_dur(open_t)
    );
    let mut table =
        ResultTable::new(&["runtime-state strategy", "tuples replayed", "rebuild time"]);
    table.row(&[
        "active-table watermark (§4)".into(),
        tail_len.to_string(),
        fmt_dur(wm_t + rebuild_t),
    ]);
    table.row(&[
        "full raw replay".into(),
        full_count.to_string(),
        fmt_dur(full_scan_t + full_agg_t),
    ]);
    table.print();

    // Verify correctness of the resumed pipeline: complete the in-flight
    // window with fresh traffic and check continuity (no duplicates).
    let mut gen = ClickstreamGen::new(72, 1_000, crash_clock, rate);
    db.ingest_batch("clicks", gen.take_rows(1_000))?;
    db.heartbeat("clicks", gen.clock() + MINUTES)?;
    let dup = db
        .execute("SELECT w, url, count(*) FROM agg GROUP BY w, url HAVING count(*) > 1")?
        .rows();
    assert!(
        dup.is_empty(),
        "no window/url archived twice after recovery"
    );

    println!(
        "\nshape check: watermark recovery replays only the in-flight \
         fraction ({tail_len} of {full_count} tuples = {:.1}%); full replay \
         cost grows with total history while the watermark tail is bounded \
         by one window.",
        100.0 * tail_len as f64 / full_count as f64
    );
    assert!(
        tail_len * 10 < full_count as usize,
        "tail must be a small fraction"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
