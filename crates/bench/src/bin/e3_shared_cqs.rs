//! E3 — §2.2 "Jellybean processing" (refs [4, 12]): shared slice
//! aggregation lets many concurrent aggregate CQs cost roughly one CQ's
//! per-tuple work.
//!
//! We register 1..64 top-URL CQs over the same stream (identical grouping,
//! varying windows), feed an identical clickstream with sharing ON and
//! OFF, and report wall-clock throughput and per-tuple cost. Unshared
//! cost must grow ~linearly with the CQ count; shared cost must stay
//! near-flat.

#![deny(unsafe_code)]

use streamrel_bench::{fmt_dur, growth_factor, scale, timed, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_types::Row;
use streamrel_workload::ClickstreamGen;

fn run(n_cqs: usize, sharing: bool, rows: &[Row], end: i64) -> std::time::Duration {
    let opts = if sharing {
        DbOptions::default()
    } else {
        DbOptions::default().without_sharing()
    };
    let db = Db::in_memory(opts);
    db.execute(&ClickstreamGen::create_stream_sql("clicks"))
        .unwrap();
    let mut subs = Vec::new();
    for i in 0..n_cqs {
        let visible = 1 + (i % 4);
        let sub = db
            .execute(&format!(
                "SELECT url, count(*) c FROM clicks \
                 <VISIBLE '{visible} minutes' ADVANCE '1 minute'> \
                 GROUP BY url ORDER BY c DESC LIMIT 10"
            ))
            .unwrap()
            .subscription();
        subs.push(sub);
    }
    let (_, t) = timed(|| {
        for chunk in rows.chunks(10_000) {
            db.ingest_batch("clicks", chunk.to_vec()).unwrap();
        }
        db.heartbeat("clicks", end).unwrap();
    });
    // Sanity: every CQ produced identical final top-1 counts whether
    // shared or not.
    let mut top1 = None;
    for sub in subs {
        let outs = db.poll(sub).unwrap();
        let last = outs.last().expect("windows closed");
        let first_row = last.relation.rows()[0].clone();
        match &top1 {
            None => top1 = Some(first_row),
            Some(prev) => assert_eq!(prev[0], first_row[0]),
        }
    }
    t
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E3: shared vs unshared execution of N concurrent aggregate CQs\n");
    let n_tuples = 120_000 * scale();
    let mut gen = ClickstreamGen::new(31, 2_000, 0, 200);
    let rows = gen.take_rows(n_tuples);
    let end = gen.clock() + 60_000_000;
    println!(
        "workload: {n_tuples} clicks over {} minutes of event time\n",
        n_tuples / 200 / 60
    );

    let counts = [1usize, 4, 16, 64];
    let mut table = ResultTable::new(&[
        "CQs",
        "unshared",
        "shared",
        "unshared µs/tuple",
        "shared µs/tuple",
        "shared gain",
    ]);
    let mut unshared_cost = Vec::new();
    let mut shared_cost = Vec::new();
    for &n in &counts {
        let tu = run(n, false, &rows, end);
        let ts = run(n, true, &rows, end);
        let per_u = tu.as_micros() as f64 / n_tuples as f64;
        let per_s = ts.as_micros() as f64 / n_tuples as f64;
        unshared_cost.push(per_u);
        shared_cost.push(per_s);
        table.row(&[
            n.to_string(),
            fmt_dur(tu),
            fmt_dur(ts),
            format!("{per_u:.2}"),
            format!("{per_s:.2}"),
            format!("{:.1}x", per_u / per_s),
        ]);
    }
    table.print();

    let ug = growth_factor(&unshared_cost);
    let sg = growth_factor(&shared_cost);
    println!("\nper-step cost growth (CQ count x4/step): unshared {ug:.2}x, shared {sg:.2}x");
    println!(
        "shape check: unshared per-tuple cost grows with the number of \
         CQs; shared stays near-flat (one aggregation pass regardless of \
         fan-out) — the paper's [12] 'on-the-fly sharing'."
    );
    assert!(
        unshared_cost.last().unwrap() / shared_cost.last().unwrap() > 2.0,
        "sharing must win clearly at 64 CQs"
    );
    assert!(sg < ug, "shared cost must grow slower than unshared");
    Ok(())
}
