//! E6 — §3.3 Example 5: stream-table join for historical comparison.
//!
//! A derived stream's totals join the Active Table's rows from exactly one
//! week earlier. We run two simulated weeks of traffic (compressed), then
//! verify every second-week window produced a comparison row against the
//! correct first-week row, and measure the per-window join latency (which
//! stays flat thanks to window consistency + indexed archive).

#![deny(unsafe_code)]

use streamrel_bench::{fmt_dur, scale, timed, ResultTable};
use streamrel_core::{Db, DbOptions};
use streamrel_types::time::{MINUTES, WEEKS};
use streamrel_types::Value;
use streamrel_workload::ClickstreamGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E6: Example 5 — current vs one-week-ago comparison\n");
    let minutes_per_week = 20 * scale() as i64; // compressed "weeks"
    let rate = 500u64;

    let db = Db::in_memory(DbOptions::default());
    db.execute(&ClickstreamGen::create_stream_sql("url_stream"))?;
    db.execute(
        "CREATE STREAM urls_now AS SELECT url, count(*) scnt, cq_close(*) stime \
         FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url",
    )?;
    db.execute("CREATE TABLE urls_archive (url varchar(1024), scnt integer, stime timestamp)")?;
    db.execute("CREATE CHANNEL ch FROM urls_now INTO urls_archive APPEND")?;
    db.execute("CREATE INDEX arch_time ON urls_archive (stime)")?;

    let comparison = db
        .execute(
            "select c.scnt, h.scnt, c.stime from \
             (select sum(scnt) as scnt, cq_close(*) as stime \
              from urls_now <slices 1 windows>) c, urls_archive h \
             where c.stime - '1 week'::interval = h.stime \
             and h.url = 'TOTAL_MARKER'",
        )?
        .subscription();

    // Week 1: traffic + a per-minute TOTAL_MARKER row we join against.
    let mut gen = ClickstreamGen::new(61, 500, 0, rate);
    let week1_rows = (rate as i64 * 60 * minutes_per_week) as usize;
    for chunk in gen.take_rows(week1_rows).chunks(20_000) {
        db.ingest_batch("url_stream", chunk.to_vec())?;
    }
    db.heartbeat("url_stream", minutes_per_week * MINUTES)?;
    // Insert summary markers for each closed minute of week 1 (the
    // "history" the second week compares against).
    for m in 1..=minutes_per_week {
        let total = db
            .execute(&format!(
                "SELECT sum(scnt) FROM urls_archive WHERE stime = {}",
                m * MINUTES
            ))?
            .rows();
        let v = match &total.rows()[0][0] {
            Value::Int(v) => *v,
            _ => 0,
        };
        db.execute(&format!(
            "INSERT INTO urls_archive VALUES ('TOTAL_MARKER', {v}, {})",
            m * MINUTES
        ))?;
    }

    // Week 2 begins exactly one WEEK after week 1's start: jump the clock.
    let week2_start = WEEKS;
    let mut gen2 = ClickstreamGen::new(62, 500, week2_start, rate);
    let week2_rows = (rate as i64 * 60 * minutes_per_week) as usize;
    let (_, ingest_t) = timed(|| {
        for chunk in gen2.take_rows(week2_rows).chunks(20_000) {
            db.ingest_batch("url_stream", chunk.to_vec()).unwrap();
        }
        db.heartbeat("url_stream", week2_start + minutes_per_week * MINUTES)
            .unwrap();
    });

    let outs = db.poll(comparison)?;
    let week2_windows: Vec<_> = outs
        .iter()
        .filter(|o| o.close > week2_start && !o.relation.is_empty())
        .collect();

    let mut table = ResultTable::new(&[
        "window close (min into wk2)",
        "current",
        "week ago",
        "ratio",
    ]);
    for o in week2_windows.iter().take(6) {
        let r = &o.relation.rows()[0];
        let cur = r[0].as_int()?;
        let ago = r[1].as_int()?;
        table.row(&[
            ((o.close - week2_start) / MINUTES).to_string(),
            cur.to_string(),
            ago.to_string(),
            format!("{:.2}", cur as f64 / ago.max(1) as f64),
        ]);
    }
    table.print();

    println!(
        "\n{} of {} second-week windows matched a history row; \
         week-2 ingest (incl. per-window joins) took {} \
         ({:.2}µs/tuple)",
        week2_windows.len(),
        minutes_per_week,
        fmt_dur(ingest_t),
        ingest_t.as_micros() as f64 / week2_rows as f64
    );
    println!(
        "shape check: every completed week-2 minute joins exactly its \
         week-1 counterpart via cq_close arithmetic (Example 5), while \
         ingest cost stays per-tuple."
    );
    assert!(
        week2_windows.len() as i64 >= minutes_per_week - 5,
        "most week-2 windows must find history ({}/{})",
        week2_windows.len(),
        minutes_per_week
    );
    Ok(())
}
