//! Deterministic workload generators for the paper's "network-effect"
//! application domains (§1.1): web clickstreams, network-security event
//! feeds and ad-tech impression streams.
//!
//! All generators are seeded and fully deterministic, emit rows in CQTIME
//! order (the additive, time-ordered character §1.4 describes), and let
//! benchmarks dial the two axes the paper's argument turns on: total data
//! volume ("more data") and event rate vs. reporting latency ("less time").

#![deny(unsafe_code)]

pub mod adtech;
pub mod clickstream;
pub mod netsec;
pub mod zipf;

pub use adtech::AdImpressionGen;
pub use clickstream::ClickstreamGen;
pub use netsec::NetsecGen;
pub use zipf::Zipf;
