//! Ad-impression generator (the paper's §1.1 advertising-network domain):
//! campaign spend tracking with per-campaign budgets, used by the
//! `ad_dashboard` example and the growth-sweep experiment E2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamrel_types::{Row, Timestamp, Value};

use crate::zipf::Zipf;

/// Deterministic ad-impression stream.
pub struct AdImpressionGen {
    rng: StdRng,
    zipf: Zipf,
    campaigns: usize,
    publishers: Vec<Value>,
    clock: Timestamp,
    mean_gap: i64,
}

impl AdImpressionGen {
    /// New generator over `campaigns` campaigns and 32 publishers.
    pub fn new(
        seed: u64,
        campaigns: usize,
        start: Timestamp,
        events_per_sec: u64,
    ) -> AdImpressionGen {
        assert!(campaigns > 0 && events_per_sec > 0);
        let publishers = (0..32)
            .map(|i| Value::text(format!("pub-{i:02}")))
            .collect();
        AdImpressionGen {
            rng: StdRng::seed_from_u64(seed ^ 0xAD5_FEED),
            zipf: Zipf::new(campaigns, 0.8),
            campaigns,
            publishers,
            clock: start,
            mean_gap: 1_000_000 / events_per_sec as i64,
        }
    }

    /// Next impression: `[campaign_id, publisher, cost_micros, clicked, itime]`.
    pub fn next_row(&mut self) -> Row {
        let gap = self
            .rng
            .gen_range(self.mean_gap / 2..=self.mean_gap * 3 / 2)
            .max(1);
        self.clock += gap;
        let campaign = self.zipf.sample(&mut self.rng) as i64;
        let publisher = self.publishers[self.rng.gen_range(0..self.publishers.len())].clone();
        // CPM-style pricing: 500–5000 micro-dollars per impression.
        let cost: i64 = self.rng.gen_range(500..5000);
        let clicked = self.rng.gen_bool(0.02);
        vec![
            Value::Int(campaign),
            publisher,
            Value::Int(cost),
            Value::Bool(clicked),
            Value::Timestamp(self.clock),
        ]
    }

    /// Generate `n` impressions.
    pub fn take_rows(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_row()).collect()
    }

    /// Number of campaigns.
    pub fn campaigns(&self) -> usize {
        self.campaigns
    }

    /// Current event-time clock.
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// SQL declaring the matching stream.
    pub fn create_stream_sql(name: &str) -> String {
        format!(
            "CREATE STREAM {name} (campaign_id integer, publisher varchar(16), \
             cost_micros bigint, clicked boolean, itime timestamp CQTIME USER)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impressions_well_formed() {
        let mut g = AdImpressionGen::new(1, 50, 0, 1000);
        let rows = g.take_rows(1000);
        let mut clicks = 0;
        for r in &rows {
            assert_eq!(r.len(), 5);
            let c = r[0].as_int().unwrap();
            assert!((0..50).contains(&c));
            let cost = r[2].as_int().unwrap();
            assert!((500..5000).contains(&cost));
            if r[3] == Value::Bool(true) {
                clicks += 1;
            }
        }
        assert!(clicks < 100, "~2% CTR, got {clicks}");
    }

    #[test]
    fn deterministic() {
        let a = AdImpressionGen::new(3, 10, 0, 100).take_rows(64);
        let b = AdImpressionGen::new(3, 10, 0, 100).take_rows(64);
        assert_eq!(a, b);
    }
}
