//! URL clickstream generator (the paper's running example: `url_stream`
//! with `url`, `atime CQTIME USER`, `client_ip`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamrel_types::{Row, Timestamp, Value};

use crate::zipf::Zipf;

/// Deterministic clickstream: Zipf-skewed URLs, fixed mean event rate with
/// bounded jitter, monotone timestamps.
pub struct ClickstreamGen {
    rng: StdRng,
    zipf: Zipf,
    urls: Vec<Value>,
    ips: Vec<Value>,
    clock: Timestamp,
    mean_gap: i64,
    emitted: u64,
}

impl ClickstreamGen {
    /// New generator.
    ///
    /// - `seed`: determinism.
    /// - `n_urls`: distinct URLs (Zipf s=1.0 over them).
    /// - `start`: first event timestamp (µs).
    /// - `events_per_sec`: mean arrival rate in *event time*.
    pub fn new(seed: u64, n_urls: usize, start: Timestamp, events_per_sec: u64) -> ClickstreamGen {
        assert!(events_per_sec > 0);
        let urls: Vec<Value> = (0..n_urls)
            .map(|i| Value::text(format!("/page/{i:06}")))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC11C_5EED);
        let ips: Vec<Value> = (0..256)
            .map(|_| {
                Value::text(format!(
                    "{}.{}.{}.{}",
                    rng.gen_range(1..255u8),
                    rng.gen_range(0..255u8),
                    rng.gen_range(0..255u8),
                    rng.gen_range(1..255u8)
                ))
            })
            .collect();
        ClickstreamGen {
            rng,
            zipf: Zipf::new(n_urls, 1.0),
            urls,
            ips,
            clock: start,
            mean_gap: 1_000_000 / events_per_sec as i64,
            emitted: 0,
        }
    }

    /// Next event: `[url, atime, client_ip]`.
    pub fn next_row(&mut self) -> Row {
        // Jitter ±50% around the mean gap, never zero (strict order not
        // required — ties allowed — but monotonicity is).
        let jitter = self
            .rng
            .gen_range(self.mean_gap / 2..=self.mean_gap * 3 / 2)
            .max(1);
        self.clock += jitter;
        self.emitted += 1;
        let url = self.urls[self.zipf.sample(&mut self.rng)].clone();
        let ip = self.ips[self.rng.gen_range(0..self.ips.len())].clone();
        vec![url, Value::Timestamp(self.clock), ip]
    }

    /// Generate `n` events.
    pub fn take_rows(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_row()).collect()
    }

    /// Current event-time clock.
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// Events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The SQL to declare the matching stream.
    pub fn create_stream_sql(name: &str) -> String {
        format!(
            "CREATE STREAM {name} (url varchar(1024), \
             atime timestamp CQTIME USER, client_ip varchar(50))"
        )
    }

    /// The SQL to declare a matching raw-archive table.
    pub fn create_table_sql(name: &str) -> String {
        format!(
            "CREATE TABLE {name} (url varchar(1024), \
             atime timestamp, client_ip varchar(50))"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_ordered_and_well_formed() {
        let mut g = ClickstreamGen::new(1, 100, 0, 1000);
        let rows = g.take_rows(500);
        assert_eq!(rows.len(), 500);
        let mut last = i64::MIN;
        for r in &rows {
            assert_eq!(r.len(), 3);
            let ts = r[1].as_timestamp().unwrap();
            assert!(ts >= last, "monotone timestamps");
            last = ts;
            assert!(r[0].as_text().unwrap().starts_with("/page/"));
        }
        assert_eq!(g.emitted(), 500);
    }

    #[test]
    fn rate_is_approximately_respected() {
        let mut g = ClickstreamGen::new(2, 10, 0, 1000);
        let rows = g.take_rows(10_000);
        let span =
            rows.last().unwrap()[1].as_timestamp().unwrap() - rows[0][1].as_timestamp().unwrap();
        let secs = span as f64 / 1e6;
        let rate = 10_000.0 / secs;
        assert!((700.0..1300.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn deterministic() {
        let a: Vec<Row> = ClickstreamGen::new(9, 50, 0, 100).take_rows(50);
        let b: Vec<Row> = ClickstreamGen::new(9, 50, 0, 100).take_rows(50);
        assert_eq!(a, b);
        let c: Vec<Row> = ClickstreamGen::new(10, 50, 0, 100).take_rows(50);
        assert_ne!(a, c);
    }

    #[test]
    fn url_skew_present() {
        let mut g = ClickstreamGen::new(3, 1000, 0, 1000);
        let rows = g.take_rows(20_000);
        let mut counts = std::collections::HashMap::new();
        for r in &rows {
            *counts
                .entry(r[0].as_text().unwrap().to_string())
                .or_insert(0u32) += 1;
        }
        let max = counts.values().max().unwrap();
        assert!(*max > 500, "hottest URL dominates: {max}");
    }
}
