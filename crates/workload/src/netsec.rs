//! Network-security event generator for experiment E1 (the paper's §4
//! anecdote: "a network security reporting application" whose batch report
//! took 20+ minutes and dropped to milliseconds under continuous
//! processing).
//!
//! Events model firewall/IDS records: source/destination IPs, port,
//! action, severity, byte count, time. A small fraction of sources are
//! "attackers" producing bursts of denied high-severity events — the
//! signal the §4 report aggregates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use streamrel_types::{Row, Timestamp, Value};

/// Deterministic security-event stream.
pub struct NetsecGen {
    rng: StdRng,
    srcs: Vec<Value>,
    attackers: usize,
    clock: Timestamp,
    mean_gap: i64,
    emitted: u64,
}

impl NetsecGen {
    /// New generator with `n_sources` source hosts, ~2% of which attack.
    pub fn new(seed: u64, n_sources: usize, start: Timestamp, events_per_sec: u64) -> NetsecGen {
        assert!(n_sources > 0 && events_per_sec > 0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC0_FEED);
        let srcs: Vec<Value> = (0..n_sources)
            .map(|i| {
                Value::text(format!(
                    "10.{}.{}.{}",
                    i / 65536 % 256,
                    i / 256 % 256,
                    i % 256
                ))
            })
            .collect();
        let attackers = (n_sources / 50).max(1);
        let _ = &mut rng;
        NetsecGen {
            rng,
            srcs,
            attackers,
            clock: start,
            mean_gap: 1_000_000 / events_per_sec as i64,
            emitted: 0,
        }
    }

    /// Next event: `[src_ip, dst_port, action, severity, bytes, etime]`.
    pub fn next_row(&mut self) -> Row {
        let gap = self
            .rng
            .gen_range(self.mean_gap / 2..=self.mean_gap * 3 / 2)
            .max(1);
        self.clock += gap;
        self.emitted += 1;
        // 10% of traffic comes from the attacker pool.
        let (src, is_attack) = if self.rng.gen_bool(0.1) {
            let i = self.rng.gen_range(0..self.attackers);
            (self.srcs[i].clone(), true)
        } else {
            let i = self.rng.gen_range(0..self.srcs.len());
            (self.srcs[i].clone(), false)
        };
        let port: i64 = *[22, 80, 443, 3389, 8080]
            .get(self.rng.gen_range(0..5usize))
            .unwrap();
        let action = if is_attack && self.rng.gen_bool(0.7) {
            Value::text("deny")
        } else {
            Value::text("allow")
        };
        let severity: i64 = if is_attack {
            self.rng.gen_range(3..=5)
        } else {
            self.rng.gen_range(1..=2)
        };
        let bytes: i64 = self.rng.gen_range(64..64_000);
        vec![
            src,
            Value::Int(port),
            action,
            Value::Int(severity),
            Value::Int(bytes),
            Value::Timestamp(self.clock),
        ]
    }

    /// Generate `n` events.
    pub fn take_rows(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_row()).collect()
    }

    /// Current event-time clock.
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// SQL declaring the matching stream.
    pub fn create_stream_sql(name: &str) -> String {
        format!(
            "CREATE STREAM {name} (src_ip varchar(40), dst_port integer, \
             action varchar(8), severity integer, bytes bigint, \
             etime timestamp CQTIME USER)"
        )
    }

    /// SQL declaring a matching raw-archive table.
    pub fn create_table_sql(name: &str) -> String {
        format!(
            "CREATE TABLE {name} (src_ip varchar(40), dst_port integer, \
             action varchar(8), severity integer, bytes bigint, \
             etime timestamp)"
        )
    }

    /// The §4-style report over raw data: per-minute deny counts and byte
    /// volumes by source, restricted to high severity.
    pub fn report_sql(raw_table: &str) -> String {
        format!(
            "SELECT src_ip, count(*) denies, sum(bytes) total_bytes \
             FROM {raw_table} \
             WHERE action = 'deny' AND severity >= 3 \
             GROUP BY src_ip ORDER BY denies DESC LIMIT 20"
        )
    }

    /// The same report as a continuous query into an Active Table.
    pub fn continuous_sql(stream: &str, derived: &str, advance: &str) -> String {
        format!(
            "CREATE STREAM {derived} AS \
             SELECT src_ip, count(*) denies, sum(bytes) total_bytes, \
             cq_close(*) w FROM {stream} <TUMBLING '{advance}'> \
             WHERE action = 'deny' AND severity >= 3 \
             GROUP BY src_ip"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_well_formed_and_ordered() {
        let mut g = NetsecGen::new(1, 1000, 0, 5000);
        let rows = g.take_rows(1000);
        let mut last = i64::MIN;
        let mut denies = 0;
        for r in &rows {
            assert_eq!(r.len(), 6);
            let ts = r[5].as_timestamp().unwrap();
            assert!(ts >= last);
            last = ts;
            if r[2].as_text().unwrap() == "deny" {
                denies += 1;
            }
        }
        // ~7% of traffic is denied attack traffic.
        assert!(denies > 20 && denies < 300, "denies = {denies}");
    }

    #[test]
    fn attackers_concentrate_denials() {
        let mut g = NetsecGen::new(2, 1000, 0, 5000);
        let rows = g.take_rows(50_000);
        let mut deny_srcs = std::collections::HashSet::new();
        for r in rows.iter().filter(|r| r[2].as_text().unwrap() == "deny") {
            deny_srcs.insert(r[0].as_text().unwrap().to_string());
        }
        assert!(
            deny_srcs.len() <= 20,
            "denials come from the attacker pool, got {}",
            deny_srcs.len()
        );
    }

    #[test]
    fn deterministic() {
        let a = NetsecGen::new(5, 100, 0, 100).take_rows(100);
        let b = NetsecGen::new(5, 100, 0, 100).take_rows(100);
        assert_eq!(a, b);
    }
}
