//! Zipf-distributed sampling.
//!
//! Web traffic is heavily skewed: a handful of URLs draw most clicks. A
//! [`Zipf`] sampler over `n` items with exponent `s` draws item `k`
//! (1-based rank) with probability proportional to `1 / k^s`. Implemented
//! with a precomputed CDF + binary search: O(n) setup, O(log n) per draw,
//! no external distribution crate.

use rand::Rng;

/// Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with skew exponent `s` (typical web
    /// traffic: `s ≈ 1.0`; `s = 0` degenerates to uniform).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero items");
        assert!(s >= 0.0 && s.is_finite(), "bad Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler covers no items (never: `new` rejects n = 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a 0-based rank (0 is the hottest item).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skew_orders_frequencies() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9], "rank 0 hotter than rank 9");
        assert!(counts[0] > counts[50] * 5, "strong head skew");
        // Zipf(1): p(0)/p(9) = 10 → counts ratio roughly 10.
        let ratio = counts[0] as f64 / counts[9] as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.15, "uniform within 15%: {min} {max}");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(1000, 1.2);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic]
    fn zero_items_panics() {
        Zipf::new(0, 1.0);
    }
}
