//! Logical data types for columns and expressions.

use std::fmt;

/// The SQL data types supported by streamrel.
///
/// The set mirrors what the paper's TruSQL examples need: varchar, integer,
/// timestamp plus the numeric / boolean / interval types any realistic
/// analytics query requires. All temporal values are stored as microseconds
/// (`i64`), matching the convention in [`crate::time`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean (`true` / `false`).
    Bool,
    /// 64-bit signed integer. SQL `integer` / `bigint`.
    Int,
    /// 64-bit IEEE float. SQL `double precision` / `float`.
    Float,
    /// Variable-length UTF-8 string. SQL `varchar` / `text`.
    Text,
    /// Microseconds since the Unix epoch. SQL `timestamp`.
    Timestamp,
    /// Signed duration in microseconds. SQL `interval`.
    Interval,
}

impl DataType {
    /// True if the type participates in arithmetic (`+`, `-`, `*`, `/`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// True if the type is temporal (timestamp or interval).
    pub fn is_temporal(self) -> bool {
        matches!(self, DataType::Timestamp | DataType::Interval)
    }

    /// The common type two operands coerce to for comparison / arithmetic,
    /// or `None` if they are incompatible.
    ///
    /// Rules: identical types unify; `Int` widens to `Float`; everything else
    /// requires an explicit cast. Timestamp/interval arithmetic is handled
    /// separately by the expression type-checker because it is asymmetric
    /// (`timestamp - interval = timestamp` but `timestamp - timestamp =
    /// interval`).
    pub fn common_type(self, other: DataType) -> Option<DataType> {
        if self == other {
            return Some(self);
        }
        match (self, other) {
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => {
                Some(DataType::Float)
            }
            _ => None,
        }
    }

    /// Parse a SQL type name (case-insensitive), ignoring any length
    /// parameter such as `varchar(1024)` (handled by the parser).
    pub fn from_sql_name(name: &str) -> Option<DataType> {
        match name.to_ascii_lowercase().as_str() {
            "bool" | "boolean" => Some(DataType::Bool),
            "int" | "integer" | "bigint" | "smallint" | "int4" | "int8" => Some(DataType::Int),
            "float" | "double" | "real" | "float8" | "float4" | "numeric" | "decimal" => {
                Some(DataType::Float)
            }
            "text" | "varchar" | "char" | "string" => Some(DataType::Text),
            "timestamp" | "timestamptz" | "datetime" => Some(DataType::Timestamp),
            "interval" => Some(DataType::Interval),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "boolean",
            DataType::Int => "integer",
            DataType::Float => "float",
            DataType::Text => "varchar",
            DataType::Timestamp => "timestamp",
            DataType::Interval => "interval",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_name_round_trips() {
        for ty in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Timestamp,
            DataType::Interval,
        ] {
            assert_eq!(DataType::from_sql_name(&ty.to_string()), Some(ty));
        }
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(DataType::from_sql_name("VARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::from_sql_name("bigint"), Some(DataType::Int));
        assert_eq!(DataType::from_sql_name("double"), Some(DataType::Float));
        assert_eq!(DataType::from_sql_name("no_such_type"), None);
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            DataType::Int.common_type(DataType::Float),
            Some(DataType::Float)
        );
        assert_eq!(
            DataType::Float.common_type(DataType::Int),
            Some(DataType::Float)
        );
        assert_eq!(
            DataType::Int.common_type(DataType::Int),
            Some(DataType::Int)
        );
        assert_eq!(DataType::Text.common_type(DataType::Int), None);
        assert_eq!(DataType::Timestamp.common_type(DataType::Interval), None);
    }

    #[test]
    fn predicates() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(DataType::Timestamp.is_temporal());
        assert!(DataType::Interval.is_temporal());
        assert!(!DataType::Bool.is_temporal());
    }
}
