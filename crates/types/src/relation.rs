//! Finite relations: the unit of data flowing between operators.
//!
//! A [`Relation`] is a schema plus a bag of rows. Under the paper's RSTREAM
//! semantics (Figure 1), a window clause turns an unbounded stream into a
//! *sequence of relations*, and the relational query runs over each one; the
//! same type also carries snapshot-query results, making stream and table
//! processing share one executor.

use std::fmt;
use std::sync::Arc;

use crate::error::Result;
use crate::row::Row;
use crate::schema::{Schema, SchemaRef};

/// A finite, ordered bag of rows with a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: SchemaRef,
    rows: Vec<Row>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: SchemaRef) -> Relation {
        Relation {
            schema,
            rows: vec![],
        }
    }

    /// Build from parts without validation (rows are trusted to match).
    pub fn new(schema: SchemaRef, rows: Vec<Row>) -> Relation {
        Relation { schema, rows }
    }

    /// Build from parts, coercing every row against the schema.
    pub fn try_new(schema: SchemaRef, rows: Vec<Row>) -> Result<Relation> {
        let rows = rows
            .into_iter()
            .map(|r| schema.coerce_row(r))
            .collect::<Result<Vec<_>>>()?;
        Ok(Relation { schema, rows })
    }

    /// The schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The rows, in order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable row access (used by sort/limit operators).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row (trusted).
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Render as an aligned ASCII table — handy in examples and the bench
    /// harness for showing window-by-window output like the paper's Fig. 1.
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() && cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

/// Convenience: build an `Arc<Schema>`.
pub fn schema_ref(schema: Schema) -> SchemaRef {
    Arc::new(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::row;
    use crate::schema::Column;
    use crate::value::Value;

    fn s() -> SchemaRef {
        schema_ref(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::new("cnt", DataType::Int),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn try_new_coerces() {
        let rel = Relation::try_new(s(), vec![row!["/a", 3i64], row!["/b", 1i64]]).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows()[0][1], Value::Int(3));
    }

    #[test]
    fn try_new_rejects_bad_arity() {
        assert!(Relation::try_new(s(), vec![row!["/a"]]).is_err());
    }

    #[test]
    fn table_rendering_aligns() {
        let rel = Relation::try_new(s(), vec![row!["/index.html", 12i64]]).unwrap();
        let t = rel.to_table();
        assert!(t.contains("| url         | cnt |"), "got:\n{t}");
        assert!(t.contains("| /index.html | 12  |"), "got:\n{t}");
    }

    #[test]
    fn empty_relation() {
        let rel = Relation::empty(s());
        assert!(rel.is_empty());
        assert_eq!(rel.len(), 0);
    }
}
