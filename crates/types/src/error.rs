//! Unified error type for the whole engine.

use std::fmt;

/// Convenient result alias used across all streamrel crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Engine-wide error type.
///
/// A single enum (rather than per-crate error types) keeps the public API of
/// the umbrella crate small and lets SQL-level errors carry through the
/// executor and storage layers without conversion boilerplate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexing / parsing failure with position info baked into the message.
    Parse(String),
    /// Semantic analysis failure (unknown column, type mismatch, ...).
    Analysis(String),
    /// Type-system violation at runtime (e.g. `sum` over text).
    Type(String),
    /// Catalog-level failure (duplicate object, missing table, ...).
    Catalog(String),
    /// Storage-layer failure (WAL corruption, page errors, ...).
    Storage(String),
    /// Transaction aborted (write-write conflict, explicit rollback, ...).
    TxnAborted(String),
    /// Continuous-query runtime failure (bad window spec, ordering violation).
    Stream(String),
    /// Arithmetic fault (overflow, division by zero).
    Arithmetic(String),
    /// I/O error, stringified to keep `Error: Clone + PartialEq`.
    Io(String),
    /// The write-ahead log observed a failed flush or fsync and refuses
    /// all further appends/commits. An fsync failure leaves the durable
    /// state of the file indeterminate (the kernel may have dropped the
    /// dirty pages — "fsyncgate"), so retrying would silently risk
    /// acknowledging lost commits; the only safe recovery is to reopen
    /// the engine and replay the log.
    WalPoisoned(String),
    /// Feature present in the grammar but intentionally unsupported.
    Unsupported(String),
    /// Static plan-safety rejection from `streamrel-check` at CQ
    /// registration: the plan would accumulate unbounded state or hold a
    /// window that can never close. Carries the violated rule and an
    /// actionable fix hint for the client.
    Check {
        /// Rule identifier (e.g. `unbounded-join`).
        rule: String,
        /// What is wrong with the plan.
        message: String,
        /// How to fix the query.
        hint: String,
    },
}

impl Error {
    /// Shorthand constructor for parse errors.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }

    /// Shorthand constructor for analysis errors.
    pub fn analysis(msg: impl Into<String>) -> Self {
        Error::Analysis(msg.into())
    }

    /// Shorthand constructor for type errors.
    pub fn type_err(msg: impl Into<String>) -> Self {
        Error::Type(msg.into())
    }

    /// Shorthand constructor for catalog errors.
    pub fn catalog(msg: impl Into<String>) -> Self {
        Error::Catalog(msg.into())
    }

    /// Shorthand constructor for storage errors.
    pub fn storage(msg: impl Into<String>) -> Self {
        Error::Storage(msg.into())
    }

    /// Shorthand constructor for stream/CQ errors.
    pub fn stream(msg: impl Into<String>) -> Self {
        Error::Stream(msg.into())
    }

    /// Shorthand constructor for unsupported-feature errors.
    pub fn unsupported(msg: impl Into<String>) -> Self {
        Error::Unsupported(msg.into())
    }

    /// Shorthand constructor for plan-safety check rejections.
    pub fn check(
        rule: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Error::Check {
            rule: rule.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::TxnAborted(m) => write!(f, "transaction aborted: {m}"),
            Error::Stream(m) => write!(f, "stream error: {m}"),
            Error::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::WalPoisoned(m) => write!(
                f,
                "wal poisoned: {m}; the log accepts no further writes — \
                 reopen the engine to recover"
            ),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Check {
                rule,
                message,
                hint,
            } => write!(f, "check error [{rule}]: {message}; hint: {hint}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::parse("unexpected token `FROM`");
        assert_eq!(e.to_string(), "parse error: unexpected token `FROM`");
        let e = Error::TxnAborted("write-write conflict".into());
        assert!(e.to_string().contains("aborted"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::parse("x"), Error::parse("x"));
        assert_ne!(Error::parse("x"), Error::analysis("x"));
    }
}
