//! Timestamp and interval handling.
//!
//! All temporal quantities in streamrel are microseconds held in an `i64`:
//! [`Timestamp`] is microseconds since the Unix epoch, [`Interval`] is a
//! signed duration in microseconds. The paper's window clauses (`VISIBLE '5
//! minutes' ADVANCE '1 minute'`) and interval casts (`'1 week'::interval`)
//! parse through [`parse_interval`]; timestamp literals parse through
//! [`parse_timestamp`].

use crate::error::{Error, Result};

/// Microseconds since the Unix epoch (1970-01-01T00:00:00Z).
pub type Timestamp = i64;

/// Signed duration in microseconds.
pub type Interval = i64;

/// One microsecond, the base unit.
pub const MICROS: i64 = 1;
/// Microseconds per millisecond.
pub const MILLIS: i64 = 1_000;
/// Microseconds per second.
pub const SECONDS: i64 = 1_000_000;
/// Microseconds per minute.
pub const MINUTES: i64 = 60 * SECONDS;
/// Microseconds per hour.
pub const HOURS: i64 = 60 * MINUTES;
/// Microseconds per day.
pub const DAYS: i64 = 24 * HOURS;
/// Microseconds per (7-day) week.
pub const WEEKS: i64 = 7 * DAYS;

/// Parse an interval string like `'5 minutes'`, `'1 week'`, `'250 ms'`,
/// `'1.5 hours'` or a bare microsecond count like `'90000000'`.
///
/// Multiple clauses are summed: `'1 hour 30 minutes'` is 90 minutes.
/// Negative intervals (`'-5 minutes'`) are supported for historical offsets.
pub fn parse_interval(s: &str) -> Result<Interval> {
    let s = s.trim();
    if s.is_empty() {
        return Err(Error::parse("empty interval string"));
    }
    let mut total: i64 = 0;
    let mut toks = s.split_whitespace().peekable();
    let mut matched_any = false;
    while let Some(num_tok) = toks.next() {
        // Allow unit glued to number, e.g. "5min" / "250ms".
        let (num_str, glued_unit) = split_number_unit(num_tok);
        let magnitude: f64 = num_str
            .parse()
            .map_err(|_| Error::parse(format!("bad interval number `{num_tok}` in `{s}`")))?;
        let unit_str = if glued_unit.is_empty() {
            match toks.next() {
                Some(u) => u.to_string(),
                // A bare number with no unit means microseconds.
                None => "microseconds".to_string(),
            }
        } else {
            glued_unit.to_string()
        };
        let unit = unit_micros(&unit_str)
            .ok_or_else(|| Error::parse(format!("unknown interval unit `{unit_str}` in `{s}`")))?;
        let part = magnitude * unit as f64;
        if !part.is_finite() || part.abs() > i64::MAX as f64 / 2.0 {
            return Err(Error::Arithmetic(format!("interval overflow in `{s}`")));
        }
        total = total
            .checked_add(part.round() as i64)
            .ok_or_else(|| Error::Arithmetic(format!("interval overflow in `{s}`")))?;
        matched_any = true;
    }
    if !matched_any {
        return Err(Error::parse(format!("unparseable interval `{s}`")));
    }
    Ok(total)
}

fn split_number_unit(tok: &str) -> (&str, &str) {
    let split_at = tok
        .char_indices()
        .find(|(i, c)| c.is_ascii_alphabetic() && !(*i == 0 && (*c == '-' || *c == '+')))
        .map(|(i, _)| i)
        .unwrap_or(tok.len());
    tok.split_at(split_at)
}

fn unit_micros(unit: &str) -> Option<i64> {
    let lower = unit.to_ascii_lowercase();
    // Check exact short forms first so singularization doesn't eat them.
    match lower.as_str() {
        "us" | "usec" | "usecs" => return Some(MICROS),
        "ms" | "msec" | "msecs" => return Some(MILLIS),
        "s" | "sec" | "secs" => return Some(SECONDS),
        "m" | "min" | "mins" => return Some(MINUTES),
        "h" | "hr" | "hrs" => return Some(HOURS),
        "d" => return Some(DAYS),
        "w" | "wk" | "wks" => return Some(WEEKS),
        _ => {}
    }
    let singular = lower.strip_suffix('s').unwrap_or(&lower);
    match singular {
        "microsecond" => Some(MICROS),
        "millisecond" => Some(MILLIS),
        "second" => Some(SECONDS),
        "minute" => Some(MINUTES),
        "hour" => Some(HOURS),
        "day" => Some(DAYS),
        "week" => Some(WEEKS),
        _ => None,
    }
}

/// Parse a timestamp literal: `'2009-01-04 12:30:00'`,
/// `'2009-01-04T12:30:00.250'`, `'2009-01-04'`, or a bare integer (epoch µs).
pub fn parse_timestamp(s: &str) -> Result<Timestamp> {
    let s = s.trim();
    if let Ok(micros) = s.parse::<i64>() {
        return Ok(micros);
    }
    let (date_part, time_part) = match s.find([' ', 'T']) {
        Some(i) => (&s[..i], &s[i + 1..]),
        None => (s, ""),
    };
    let mut dp = date_part.split('-');
    let year: i64 = dp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| Error::parse(format!("bad timestamp `{s}`")))?;
    let month: i64 = dp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| Error::parse(format!("bad timestamp `{s}`")))?;
    let day: i64 = dp
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| Error::parse(format!("bad timestamp `{s}`")))?;
    if dp.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(Error::parse(format!("bad timestamp `{s}`")));
    }
    let mut micros = days_from_civil(year, month, day) * DAYS;
    if !time_part.is_empty() {
        let time_part = time_part.trim_end_matches('Z');
        let mut tp = time_part.split(':');
        let hour: i64 = tp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| Error::parse(format!("bad timestamp `{s}`")))?;
        let minute: i64 = tp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| Error::parse(format!("bad timestamp `{s}`")))?;
        let sec_str = tp.next().unwrap_or("0");
        if tp.next().is_some() || hour > 23 || minute > 59 {
            return Err(Error::parse(format!("bad timestamp `{s}`")));
        }
        let secs: f64 = sec_str
            .parse()
            .map_err(|_| Error::parse(format!("bad timestamp `{s}`")))?;
        if !(0.0..60.0).contains(&secs) {
            return Err(Error::parse(format!("bad timestamp `{s}`")));
        }
        micros += hour * HOURS + minute * MINUTES + (secs * SECONDS as f64).round() as i64;
    }
    Ok(micros)
}

/// Days since the Unix epoch for a proleptic-Gregorian civil date.
/// Howard Hinnant's `days_from_civil` algorithm.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Render a timestamp as `YYYY-MM-DD HH:MM:SS[.ffffff]` (UTC).
pub fn format_timestamp(ts: Timestamp) -> String {
    let days = ts.div_euclid(DAYS);
    let rem = ts.rem_euclid(DAYS);
    let (y, m, d) = civil_from_days(days);
    let hour = rem / HOURS;
    let minute = (rem % HOURS) / MINUTES;
    let sec = (rem % MINUTES) / SECONDS;
    let micros = rem % SECONDS;
    if micros == 0 {
        format!("{y:04}-{m:02}-{d:02} {hour:02}:{minute:02}:{sec:02}")
    } else {
        format!("{y:04}-{m:02}-{d:02} {hour:02}:{minute:02}:{sec:02}.{micros:06}")
    }
}

/// Render an interval in a compact human form, e.g. `5 minutes`, `1.5 hours`.
pub fn format_interval(iv: Interval) -> String {
    let abs = iv.unsigned_abs() as i64;
    let sign = if iv < 0 { "-" } else { "" };
    for (unit, name) in [
        (WEEKS, "week"),
        (DAYS, "day"),
        (HOURS, "hour"),
        (MINUTES, "minute"),
        (SECONDS, "second"),
        (MILLIS, "millisecond"),
    ] {
        if abs >= unit && abs % unit == 0 {
            let n = abs / unit;
            let plural = if n == 1 { "" } else { "s" };
            return format!("{sign}{n} {name}{plural}");
        }
    }
    format!("{iv} microseconds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_intervals() {
        assert_eq!(parse_interval("5 minutes").unwrap(), 5 * MINUTES);
        assert_eq!(parse_interval("1 minute").unwrap(), MINUTES);
        assert_eq!(parse_interval("1 week").unwrap(), WEEKS);
        assert_eq!(parse_interval("2 hours").unwrap(), 2 * HOURS);
        assert_eq!(parse_interval("30 seconds").unwrap(), 30 * SECONDS);
    }

    #[test]
    fn parses_compound_and_glued() {
        assert_eq!(
            parse_interval("1 hour 30 minutes").unwrap(),
            HOURS + 30 * MINUTES
        );
        assert_eq!(parse_interval("250ms").unwrap(), 250 * MILLIS);
        assert_eq!(parse_interval("5min").unwrap(), 5 * MINUTES);
        assert_eq!(parse_interval("10s").unwrap(), 10 * SECONDS);
    }

    #[test]
    fn parses_fractional_and_negative() {
        assert_eq!(parse_interval("1.5 hours").unwrap(), 90 * MINUTES);
        assert_eq!(parse_interval("-5 minutes").unwrap(), -5 * MINUTES);
        assert_eq!(parse_interval("42").unwrap(), 42);
    }

    #[test]
    fn rejects_garbage_intervals() {
        assert!(parse_interval("").is_err());
        assert!(parse_interval("five minutes").is_err());
        assert!(parse_interval("5 lightyears").is_err());
    }

    #[test]
    fn timestamp_round_trip_epoch() {
        assert_eq!(parse_timestamp("1970-01-01 00:00:00").unwrap(), 0);
        assert_eq!(format_timestamp(0), "1970-01-01 00:00:00");
    }

    #[test]
    fn timestamp_known_values() {
        // 2009-01-04 (CIDR 2009 start date) = 14248 days after epoch.
        let ts = parse_timestamp("2009-01-04 00:00:00").unwrap();
        assert_eq!(ts, 14_248 * DAYS);
        assert_eq!(format_timestamp(ts), "2009-01-04 00:00:00");
        let ts2 = parse_timestamp("2009-01-04T12:30:15.250").unwrap();
        assert_eq!(
            ts2,
            ts + 12 * HOURS + 30 * MINUTES + 15 * SECONDS + 250 * MILLIS
        );
        assert_eq!(format_timestamp(ts2), "2009-01-04 12:30:15.250000");
    }

    #[test]
    fn timestamp_date_only_and_numeric() {
        assert_eq!(
            parse_timestamp("2009-01-04").unwrap(),
            parse_timestamp("2009-01-04 00:00:00").unwrap()
        );
        assert_eq!(parse_timestamp("123456789").unwrap(), 123_456_789);
    }

    #[test]
    fn timestamp_rejects_garbage() {
        assert!(parse_timestamp("not a date").is_err());
        assert!(parse_timestamp("2009-13-01").is_err());
        assert!(parse_timestamp("2009-01-04 25:00:00").is_err());
    }

    #[test]
    fn civil_day_conversion_is_inverse() {
        for z in [-1_000_000, -1, 0, 1, 719_468, 14_248, 2_000_000] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z, "roundtrip for day {z}");
        }
    }

    #[test]
    fn pre_epoch_timestamps_format() {
        let ts = parse_timestamp("1969-12-31 23:00:00").unwrap();
        assert_eq!(ts, -HOURS);
        assert_eq!(format_timestamp(ts), "1969-12-31 23:00:00");
    }

    #[test]
    fn interval_formatting() {
        assert_eq!(format_interval(5 * MINUTES), "5 minutes");
        assert_eq!(format_interval(MINUTES), "1 minute");
        assert_eq!(format_interval(WEEKS), "1 week");
        assert_eq!(format_interval(-2 * HOURS), "-2 hours");
        assert_eq!(format_interval(1), "1 microseconds");
    }
}
