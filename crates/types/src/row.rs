//! Row representation.

use crate::value::Value;

/// A tuple of values. Rows are positional; names live in the
/// [`Schema`](crate::schema::Schema) that accompanies a relation.
pub type Row = Vec<Value>;

/// Helpers for building rows tersely in tests, examples and generators.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::value::Value::from($v)),*]
    };
}

/// Project a row onto the given column indexes.
pub fn project(row: &Row, indexes: &[usize]) -> Row {
    indexes.iter().map(|&i| row[i].clone()).collect()
}

/// Concatenate two rows (used by join operators).
pub fn concat(left: &Row, right: &Row) -> Row {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn row_macro_builds_values() {
        let r = row![1i64, "a", 2.5f64, true];
        assert_eq!(
            r,
            vec![
                Value::Int(1),
                Value::text("a"),
                Value::Float(2.5),
                Value::Bool(true)
            ]
        );
    }

    #[test]
    fn project_selects_indexes() {
        let r = row![10i64, 20i64, 30i64];
        assert_eq!(project(&r, &[2, 0]), row![30i64, 10i64]);
        assert_eq!(project(&r, &[]), Vec::<Value>::new());
    }

    #[test]
    fn concat_joins_rows() {
        let l = row![1i64];
        let r = row!["x"];
        assert_eq!(concat(&l, &r), row![1i64, "x"]);
    }
}
