//! Column and schema definitions.

use std::fmt;
use std::sync::Arc;

use crate::datatype::DataType;
use crate::error::{Error, Result};
use crate::row::Row;

/// One column of a table, stream, or intermediate relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower-cased by the analyzer; case-insensitive lookup).
    pub name: String,
    /// Logical type.
    pub ty: DataType,
    /// Whether NULL is permitted. Enforced on table/stream ingest.
    pub nullable: bool,
}

impl Column {
    /// A nullable column — the common case for query outputs.
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }
}

/// An ordered list of columns describing a relation or stream.
///
/// Schemas are immutable once built and shared via [`Arc`] (see
/// [`SchemaRef`]); operators that reshape rows build new schemas.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

/// Shared schema handle used throughout the executor.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from columns, rejecting duplicate names.
    pub fn new(columns: Vec<Column>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i]
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(Error::catalog(format!(
                    "duplicate column name `{}`",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Build a schema allowing duplicate names (query outputs may legally
    /// repeat names, e.g. `SELECT a, a FROM t`).
    pub fn new_unchecked(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// Empty schema (zero columns).
    pub fn empty() -> Schema {
        Schema { columns: vec![] }
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Position of the column with the given (case-insensitive) name.
    /// Errors if the name is missing or ambiguous.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.name.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    return Err(Error::analysis(format!("ambiguous column `{name}`")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| Error::analysis(format!("unknown column `{name}`")))
    }

    /// Concatenate two schemas (for join outputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Validate that a row conforms to this schema: arity, types (NULL is
    /// allowed only for nullable columns, ints silently widen to declared
    /// float columns). Returns a row coerced to the declared types.
    pub fn coerce_row(&self, row: Row) -> Result<Row> {
        if row.len() != self.columns.len() {
            return Err(Error::type_err(format!(
                "row has {} values but schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, c) in row.into_iter().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(Error::type_err(format!(
                        "NULL value for NOT NULL column `{}`",
                        c.name
                    )));
                }
                out.push(v);
                continue;
            }
            if v.data_type() == Some(c.ty) {
                out.push(v);
            } else {
                let coerced = v.cast(c.ty).map_err(|_| {
                    Error::type_err(format!(
                        "value {v} has wrong type for column `{}` ({})",
                        c.name, c.ty
                    ))
                })?;
                out.push(coerced);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if !c.nullable {
                write!(f, " not null")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn url_schema() -> Schema {
        Schema::new(vec![
            Column::not_null("url", DataType::Text),
            Column::not_null("atime", DataType::Timestamp),
            Column::new("client_ip", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Text),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn index_lookup_case_insensitive() {
        let s = url_schema();
        assert_eq!(s.index_of("URL").unwrap(), 0);
        assert_eq!(s.index_of("client_ip").unwrap(), 2);
        assert!(s.index_of("nope").is_err());
    }

    #[test]
    fn ambiguous_lookup_errors() {
        let s = Schema::new_unchecked(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Int),
        ]);
        assert!(matches!(s.index_of("a"), Err(Error::Analysis(_))));
    }

    #[test]
    fn join_concatenates() {
        let a = url_schema();
        let b = Schema::new(vec![Column::new("cnt", DataType::Int)]).unwrap();
        let j = a.join(&b);
        assert_eq!(j.len(), 4);
        assert_eq!(j.column(3).name, "cnt");
    }

    #[test]
    fn coerce_row_checks_arity_and_nulls() {
        let s = url_schema();
        assert!(s.coerce_row(vec![Value::text("x")]).is_err());
        let bad_null = vec![Value::Null, Value::Timestamp(0), Value::Null];
        assert!(s.coerce_row(bad_null).is_err());
        let ok = vec![Value::text("/a"), Value::Timestamp(5), Value::Null];
        assert_eq!(s.coerce_row(ok.clone()).unwrap(), ok);
    }

    #[test]
    fn coerce_row_widens_and_casts() {
        let s = Schema::new(vec![
            Column::new("f", DataType::Float),
            Column::new("t", DataType::Timestamp),
        ])
        .unwrap();
        let out = s.coerce_row(vec![Value::Int(3), Value::Int(1000)]).unwrap();
        assert_eq!(out, vec![Value::Float(3.0), Value::Timestamp(1000)]);
    }

    #[test]
    fn coerce_row_rejects_uncastable() {
        let s = Schema::new(vec![Column::new("n", DataType::Int)]).unwrap();
        assert!(s.coerce_row(vec![Value::text("not a number")]).is_err());
    }

    #[test]
    fn display_is_readable() {
        let s = url_schema();
        let d = s.to_string();
        assert!(d.contains("url varchar not null"), "{d}");
        assert!(d.contains("client_ip varchar"), "{d}");
    }
}
