//! Runtime values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::datatype::DataType;
use crate::error::{Error, Result};
use crate::time::{format_interval, format_timestamp, Interval, Timestamp};

/// A single SQL value.
///
/// Text is reference-counted (`Arc<str>`) because analytics workloads copy
/// string values heavily across operators (group keys, window relations,
/// archive rows); cloning a `Value::Text` is a pointer bump.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares per SQL three-valued logic in expressions; sorts
    /// last in ORDER BY and groups as a single key in GROUP BY.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(Arc<str>),
    /// Microseconds since the Unix epoch.
    Timestamp(Timestamp),
    /// Signed duration in microseconds.
    Interval(Interval),
}

impl Value {
    /// Build a text value from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// The runtime data type, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Interval(_) => Some(DataType::Interval),
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract a boolean, erroring on other types. NULL maps to `None`.
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(Error::type_err(format!("expected boolean, got {other}"))),
        }
    }

    /// Extract an i64 (int or timestamp/interval raw micros).
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Timestamp(t) => Ok(*t),
            Value::Interval(i) => Ok(*i),
            other => Err(Error::type_err(format!("expected integer, got {other}"))),
        }
    }

    /// Extract an f64, widening integers.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(Error::type_err(format!("expected numeric, got {other}"))),
        }
    }

    /// Extract the string slice of a text value.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(Error::type_err(format!("expected text, got {other}"))),
        }
    }

    /// Extract a timestamp (µs since epoch).
    pub fn as_timestamp(&self) -> Result<Timestamp> {
        match self {
            Value::Timestamp(t) => Ok(*t),
            Value::Int(i) => Ok(*i),
            other => Err(Error::type_err(format!("expected timestamp, got {other}"))),
        }
    }

    /// Cast this value to `target`, following SQL cast semantics.
    /// NULL casts to NULL of any type.
    pub fn cast(&self, target: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        if self.data_type() == Some(target) {
            return Ok(self.clone());
        }
        let fail = || {
            Err(Error::type_err(format!(
                "cannot cast {} to {target}",
                self.clone()
            )))
        };
        match (self, target) {
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) => {
                if f.is_finite() && (i64::MIN as f64..=i64::MAX as f64).contains(f) {
                    Ok(Value::Int(f.round() as i64))
                } else {
                    Err(Error::Arithmetic(format!("float {f} out of integer range")))
                }
            }
            (Value::Int(i), DataType::Timestamp) => Ok(Value::Timestamp(*i)),
            (Value::Int(i), DataType::Interval) => Ok(Value::Interval(*i)),
            (Value::Timestamp(t), DataType::Int) => Ok(Value::Int(*t)),
            (Value::Interval(i), DataType::Int) => Ok(Value::Int(*i)),
            (Value::Int(i), DataType::Bool) => Ok(Value::Bool(*i != 0)),
            (Value::Bool(b), DataType::Int) => Ok(Value::Int(*b as i64)),
            (Value::Text(s), DataType::Int) => {
                s.trim().parse::<i64>().map(Value::Int).or_else(|_| fail())
            }
            (Value::Text(s), DataType::Float) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .or_else(|_| fail()),
            (Value::Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "t" | "true" | "1" | "yes" => Ok(Value::Bool(true)),
                "f" | "false" | "0" | "no" => Ok(Value::Bool(false)),
                _ => fail(),
            },
            (Value::Text(s), DataType::Timestamp) => {
                crate::time::parse_timestamp(s).map(Value::Timestamp)
            }
            (Value::Text(s), DataType::Interval) => {
                crate::time::parse_interval(s).map(Value::Interval)
            }
            (v, DataType::Text) => Ok(Value::text(v.to_string())),
            _ => fail(),
        }
    }

    /// Total ordering used by ORDER BY, index keys and merge operations.
    ///
    /// NULL sorts after every non-null value ("NULLS LAST"). All numeric
    /// kinds — Int, Float, and the µs-backed Timestamp/Interval — form one
    /// numeric class and compare by value (exactly: i64↔f64 comparison
    /// does not round through f64). Cross-class comparisons fall back to a
    /// stable type-rank order so sorting never panics. The SQL analyzer
    /// rejects senseless cross-type comparisons before execution; this
    /// order only needs to be *total* and consistent with [`Hash`].
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            _ => {
                // Order by class first — the whole numeric class shares
                // one rank, so cross-class and within-class comparisons
                // can never disagree (transitivity).
                let (ca, cb) = (class_rank(self), class_rank(other));
                if ca != cb {
                    return ca.cmp(&cb);
                }
                match (self, other) {
                    (Bool(a), Bool(b)) => a.cmp(b),
                    (Text(a), Text(b)) => a.cmp(b),
                    (a, b) => cmp_numeric(
                        numeric_repr(a).expect("numeric class"),
                        numeric_repr(b).expect("numeric class"),
                    ),
                }
            }
        }
    }

    /// SQL equality for joins/grouping: NULL equals nothing (not even NULL)
    /// under `=`, but [`Value::group_eq`] treats NULLs as one group.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.sort_cmp(other) == Ordering::Equal)
    }

    /// Grouping equality: like `sql_eq` but NULL == NULL (SQL GROUP BY
    /// places all NULLs in a single group).
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self.is_null(), other.is_null()) {
            (true, true) => true,
            (false, false) => self.sort_cmp(other) == Ordering::Equal,
            _ => false,
        }
    }
}

/// The numeric class: exact 64-bit integers (Int, Timestamp, Interval —
/// the latter two are raw µs) or a float.
#[derive(Clone, Copy)]
enum Num {
    I(i64),
    F(f64),
}

fn numeric_repr(v: &Value) -> Option<Num> {
    match v {
        Value::Int(i) | Value::Timestamp(i) | Value::Interval(i) => Some(Num::I(*i)),
        Value::Float(f) => Some(Num::F(*f)),
        _ => None,
    }
}

/// Normalize floats so that `-0.0 == 0.0` (required: Int(0) compares
/// equal to both, so they must compare equal to each other).
fn norm_f64(f: f64) -> f64 {
    if f == 0.0 {
        0.0
    } else {
        f
    }
}

fn cmp_numeric(a: Num, b: Num) -> Ordering {
    match (a, b) {
        (Num::I(x), Num::I(y)) => x.cmp(&y),
        (Num::F(x), Num::F(y)) => norm_f64(x).total_cmp(&norm_f64(y)),
        (Num::I(x), Num::F(y)) => cmp_i64_f64(x, y),
        (Num::F(x), Num::I(y)) => cmp_i64_f64(y, x).reverse(),
    }
}

/// Exact comparison of an i64 against an f64 (no rounding through f64, so
/// the order stays transitive for integers beyond 2^53). NaN ordering
/// matches `total_cmp`: negative NaN below everything, positive NaN above.
fn cmp_i64_f64(a: i64, b: f64) -> Ordering {
    if b.is_nan() {
        return if b.is_sign_positive() {
            Ordering::Less
        } else {
            Ordering::Greater
        };
    }
    // i64::MAX as f64 == 2^63 > i64::MAX, so b beyond these bounds is
    // strictly outside i64's range.
    if b >= i64::MAX as f64 {
        return Ordering::Less;
    }
    if b < i64::MIN as f64 {
        return Ordering::Greater;
    }
    let bt = b.trunc() as i64; // exact: |b| < 2^63
    match a.cmp(&bt) {
        Ordering::Equal => {
            let frac = b - bt as f64;
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        o => o,
    }
}

/// Cross-class sort rank: booleans, then the numeric class (Int, Float,
/// Timestamp, Interval), then text. NULL is handled before ranking.
fn class_rank(v: &Value) -> u8 {
    match v {
        Value::Bool(_) => 0,
        Value::Int(_) | Value::Float(_) | Value::Timestamp(_) | Value::Interval(_) => 1,
        Value::Text(_) => 2,
        Value::Null => 3,
    }
}

/// Equality for use as hash-map keys (group-by, hash join build keys).
/// Follows [`Value::group_eq`] semantics: NULLs are equal to each other,
/// `1` and `1.0` are equal (they compare equal numerically).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats must hash identically when numerically equal
            // because they compare equal; hash every numeric as f64 bits
            // unless the int is not exactly representable.
            Value::Int(i) => {
                let f = *i as f64;
                if f as i64 == *i {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                } else {
                    3u8.hash(state);
                    i.hash(state);
                }
            }
            Value::Float(f) => {
                2u8.hash(state);
                // Normalized so -0.0 hashes like 0.0 (they compare equal).
                norm_f64(*f).to_bits().hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            // Temporal values compare equal to bare ints of the same µs
            // value, so they must hash through the integer scheme (the
            // resulting Timestamp/Interval cross-collisions are harmless).
            Value::Timestamp(t) | Value::Interval(t) => {
                let f = *t as f64;
                if f as i64 == *t {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                } else {
                    3u8.hash(state);
                    t.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Timestamp(t) => f.write_str(&format_timestamp(*t)),
            Value::Interval(i) => f.write_str(&format_interval(*i)),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_last() {
        assert_eq!(Value::Null.sort_cmp(&Value::Int(1)), Ordering::Greater);
        assert_eq!(Value::Int(1).sort_cmp(&Value::Null), Ordering::Less);
        assert_eq!(Value::Null.sort_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(1).sort_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).sort_cmp(&Value::Int(2)), Ordering::Equal);
        assert!(Value::Int(2).group_eq(&Value::Float(2.0)));
    }

    #[test]
    fn numeric_hash_consistent_with_eq() {
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn group_eq_nulls_collapse() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::text("42").cast(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::text("1 week").cast(DataType::Interval).unwrap(),
            Value::Interval(crate::time::WEEKS)
        );
        assert_eq!(
            Value::Int(5).cast(DataType::Float).unwrap(),
            Value::Float(5.0)
        );
        assert_eq!(
            Value::Float(2.6).cast(DataType::Int).unwrap(),
            Value::Int(3)
        );
        assert_eq!(Value::Null.cast(DataType::Text).unwrap(), Value::Null);
        assert!(Value::text("xyz").cast(DataType::Int).is_err());
        assert!(Value::Float(f64::NAN).cast(DataType::Int).is_err());
    }

    #[test]
    fn cast_timestamp_text_roundtrip() {
        let ts = Value::text("2009-01-04 12:00:00")
            .cast(DataType::Timestamp)
            .unwrap();
        let txt = ts.cast(DataType::Text).unwrap();
        assert_eq!(txt.as_text().unwrap(), "2009-01-04 12:00:00");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::text("hi").to_string(), "hi");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn temporal_int_comparison_and_hash() {
        assert!(Value::Int(5).group_eq(&Value::Timestamp(5)));
        assert!(Value::Timestamp(5).group_eq(&Value::Int(5)));
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::Timestamp(5)));
        assert_eq!(
            Value::Timestamp(10).sort_cmp(&Value::Int(3)),
            Ordering::Greater
        );
        assert_eq!(Value::Int(3).sort_cmp(&Value::Interval(10)), Ordering::Less);
    }

    #[test]
    fn accessors_enforce_types() {
        assert!(Value::text("x").as_float().is_err());
        assert!(Value::Int(1).as_text().is_err());
        assert_eq!(Value::Int(1).as_float().unwrap(), 1.0);
        assert_eq!(Value::Bool(true).as_bool().unwrap(), Some(true));
        assert_eq!(Value::Null.as_bool().unwrap(), None);
    }
}
