//! Core data model for the streamrel stream-relational engine.
//!
//! This crate defines the value system shared by every layer of the stack:
//! SQL literals, stored tuples, stream records, window relations and query
//! results all use the same [`Value`] / [`Row`] / [`Schema`] representation,
//! which is the paper's core principle that "streaming data and stored data
//! are not intrinsically different" (§2.3).

#![deny(unsafe_code)]

pub mod datatype;
pub mod error;
pub mod relation;
pub mod row;
pub mod schema;
pub mod time;
pub mod value;

pub use datatype::DataType;
pub use error::{Error, Result};
pub use relation::Relation;
pub use row::Row;
pub use schema::{Column, Schema};
pub use time::{format_timestamp, parse_interval, parse_timestamp, Interval, Timestamp};
pub use value::Value;
