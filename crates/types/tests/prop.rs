//! Property-based tests for the value system and time parsing.

use proptest::prelude::*;
use streamrel_types::time::format_interval;
use streamrel_types::{format_timestamp, parse_interval, parse_timestamp, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[ -~]{0,24}".prop_map(Value::text),
        any::<i64>().prop_map(Value::Timestamp),
        any::<i64>().prop_map(Value::Interval),
    ]
}

proptest! {
    /// sort_cmp is a total order: antisymmetric and transitive.
    #[test]
    fn sort_cmp_total_order(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        prop_assert_eq!(a.sort_cmp(&b), b.sort_cmp(&a).reverse());
        prop_assert_eq!(a.sort_cmp(&a), Equal);
        if a.sort_cmp(&b) != Greater && b.sort_cmp(&c) != Greater {
            prop_assert_ne!(a.sort_cmp(&c), Greater,
                "transitivity violated: {:?} {:?} {:?}", a, b, c);
        }
    }

    /// Eq and Hash agree: equal values hash identically.
    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b), "{:?} == {:?} but hashes differ", a, b);
        }
    }

    /// Every value renders to text (cast-to-text is total for non-null).
    #[test]
    fn cast_to_text_total(v in arb_value()) {
        let t = v.cast(streamrel_types::DataType::Text).unwrap();
        if v.is_null() {
            prop_assert!(t.is_null());
        } else {
            prop_assert!(t.as_text().is_ok());
        }
    }

    /// Timestamp format → parse round-trips exactly.
    #[test]
    fn timestamp_roundtrip(ts in -4_102_444_800_000_000i64..4_102_444_800_000_000i64) {
        let s = format_timestamp(ts);
        prop_assert_eq!(parse_timestamp(&s).unwrap(), ts, "via {}", s);
    }

    /// Interval format → parse round-trips for unit-aligned values.
    #[test]
    fn interval_roundtrip(n in 1i64..10_000, unit in 0usize..6) {
        let micros = n * [1_000i64, 1_000_000, 60_000_000, 3_600_000_000,
                          86_400_000_000, 604_800_000_000][unit];
        let s = format_interval(micros);
        prop_assert_eq!(parse_interval(&s).unwrap(), micros, "via {}", s);
    }

    /// group_eq is an equivalence relation compatible with sort_cmp.
    #[test]
    fn group_eq_matches_sort_cmp(a in arb_value(), b in arb_value()) {
        if !a.is_null() && !b.is_null() {
            prop_assert_eq!(
                a.group_eq(&b),
                a.sort_cmp(&b) == std::cmp::Ordering::Equal
            );
        }
    }
}
