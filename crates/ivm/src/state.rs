//! Per-CQ incremental operator state.
//!
//! Time is cut into slices of width `gcd(VISIBLE, ADVANCE)` — the same
//! grid the shared "Jellybean" groups use — and each arriving tuple is
//! folded into its slice's state: hash-aggregate partials, (join key,
//! group key) partials, or a first-seen DISTINCT set. A window close
//! composes the covered slices by *merging partials*, so its cost is
//! proportional to the number of distinct keys touched since the previous
//! close (the delta), not to the number of buffered rows.
//!
//! Order exactness: tuples reach the CQ in CQTIME order (the reorder
//! buffer sits upstream), slices are contiguous time ranges, and each
//! slice records first-seen key order — so walking slices in time order
//! and keys in slice order reproduces the *global* first-seen order that
//! re-evaluation's hash aggregate produces. That argument, plus the
//! lowering pass only admitting order-insensitive-exact accumulators, is
//! what makes IVM output byte-identical to re-evaluation.

use std::collections::{BTreeMap, HashMap, HashSet};

use streamrel_exec::expr::{eval, eval_predicate, EvalContext};
use streamrel_exec::{Accumulator, RelationSource};
use streamrel_sql::plan::{AggSpec, BoundExpr, SchemaRef};
use streamrel_types::{Error, Relation, Result, Row, Timestamp, Value};

use crate::lower::{AggShape, IvmProgram, IvmShape, RowOp, StreamPrefix};

/// Result of composing a window from slices.
pub enum WindowOutput {
    /// The anchor output is fully determined by stream state.
    Ready(Relation),
    /// A stream-table join: the delta must be counted against the window
    /// boundary snapshot inside the (pool-runnable) window task, so table
    /// visibility matches re-evaluation's consistency mode exactly.
    NeedsTable(Box<JoinDelta>),
}

/// The join-aggregate delta staged for one window close: slice-merged
/// partials keyed by join key, finalized against a table snapshot.
pub struct JoinDelta {
    table: String,
    table_filter: Option<BoundExpr>,
    right_key: Vec<BoundExpr>,
    index_column: Option<String>,
    /// `(join key, group key, merged partials)` in global first-seen
    /// pair order.
    entries: Vec<(Vec<Value>, Vec<Value>, Vec<Accumulator>)>,
    aggs: Vec<AggSpec>,
    schema: SchemaRef,
    /// Global aggregate (no GROUP BY): an empty result emits a defaults
    /// row, like re-evaluation's aggregate over an empty join.
    global: bool,
}

impl JoinDelta {
    /// Delta rows staged (trace accounting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no delta entries are staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolve match counts against `source` (the pinned snapshot) and
    /// emit the aggregate output. Each partial was built once per stream
    /// tuple; a tuple joined to `m` table rows contributes its update `m`
    /// times in re-evaluation, which is exactly `Accumulator::scale(m)`.
    /// Group order is the first-seen order over pairs with at least one
    /// match — the same order the re-evaluated hash aggregate sees.
    pub fn finalize(&self, source: &dyn RelationSource) -> Result<Relation> {
        let ectx = EvalContext::default();
        let mut counts: HashMap<Vec<Value>, i64> = HashMap::new();
        let indexed = match &self.index_column {
            // Probe-with-NULL is the engine's "does an index exist" idiom
            // (see try_index_join); NULL never matches any key.
            Some(col) => source
                .index_lookup(&self.table, col, &Value::Null)?
                .is_some(),
            None => false,
        };
        if indexed {
            let col = self.index_column.as_deref().unwrap_or_default();
            for (jk, _, _) in &self.entries {
                if counts.contains_key(jk) {
                    continue;
                }
                let candidates = source
                    .index_lookup(&self.table, col, &jk[0])?
                    .unwrap_or_default();
                let mut m = 0i64;
                for row in &candidates {
                    if self.row_matches(row, jk, &ectx)? {
                        m += 1;
                    }
                }
                counts.insert(jk.clone(), m);
            }
        } else {
            let rel = source.scan_table(&self.table)?;
            for row in rel.rows() {
                if let Some(f) = &self.table_filter {
                    if !eval_predicate(f, row, &ectx)? {
                        continue;
                    }
                }
                let rk: Vec<Value> = self
                    .right_key
                    .iter()
                    .map(|e| eval(e, row, &ectx))
                    .collect::<Result<_>>()?;
                if rk.iter().any(Value::is_null) {
                    continue;
                }
                *counts.entry(rk).or_insert(0) += 1;
            }
        }

        let mut merged: HashMap<&[Value], Vec<Accumulator>> = HashMap::new();
        let mut order: Vec<&[Value]> = Vec::new();
        for (jk, gk, accs) in &self.entries {
            let m = counts.get(jk).copied().unwrap_or(0);
            if m == 0 {
                continue;
            }
            let mut scaled = accs.clone();
            for a in &mut scaled {
                a.scale(m)?;
            }
            match merged.get_mut(gk.as_slice()) {
                Some(existing) => {
                    for (a, p) in existing.iter_mut().zip(&scaled) {
                        a.merge(p)?;
                    }
                }
                None => {
                    order.push(gk.as_slice());
                    merged.insert(gk.as_slice(), scaled);
                }
            }
        }
        let mut rel = Relation::empty(self.schema.clone());
        if merged.is_empty() && self.global {
            rel.push(
                self.aggs
                    .iter()
                    .map(|s| Accumulator::new(s).finish())
                    .collect(),
            );
            return Ok(rel);
        }
        for gk in order {
            let accs = &merged[gk];
            let mut row: Row = gk.to_vec();
            row.extend(accs.iter().map(Accumulator::finish));
            rel.push(row);
        }
        Ok(rel)
    }

    fn row_matches(&self, row: &Row, jk: &[Value], ectx: &EvalContext) -> Result<bool> {
        if let Some(f) = &self.table_filter {
            if !eval_predicate(f, row, ectx)? {
                return Ok(false);
            }
        }
        for (e, want) in self.right_key.iter().zip(jk) {
            let got = eval(e, row, ectx)?;
            if got.is_null() || got != *want {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

type PairKey = (Vec<Value>, Vec<Value>);

enum SliceKind {
    /// Aggregate partials keyed by group key.
    Groups {
        groups: HashMap<Vec<Value>, Vec<Accumulator>>,
        order: Vec<Vec<Value>>,
    },
    /// Join-aggregate partials keyed by (join key, group key).
    Pairs {
        pairs: HashMap<PairKey, Vec<Accumulator>>,
        order: Vec<PairKey>,
    },
    /// DISTINCT rows in first-seen order.
    Rows { seen: HashSet<Row>, order: Vec<Row> },
}

struct Slice {
    /// Approximate heap footprint (state-size accounting).
    bytes: usize,
    kind: SliceKind,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn val_bytes(v: &Value) -> usize {
    match v {
        Value::Text(s) => 24 + s.len(),
        _ => 16,
    }
}

fn key_bytes(vals: &[Value]) -> usize {
    24 + vals.iter().map(val_bytes).sum::<usize>()
}

/// Rough per-accumulator footprint (the DISTINCT set inside an
/// accumulator grows beyond this; the bound is an estimate, not a ledger).
const ACC_BYTES: usize = 64;

/// Incremental state for one lowered CQ.
pub struct IvmState {
    shape: IvmShape,
    width: i64,
    visible: i64,
    slices: BTreeMap<Timestamp, Slice>,
    delta_rows: u64,
}

impl IvmState {
    /// Fresh state for a lowered program.
    pub fn new(program: &IvmProgram) -> IvmState {
        IvmState {
            shape: program.shape.clone(),
            width: gcd(program.visible, program.advance).max(1),
            visible: program.visible,
            slices: BTreeMap::new(),
            delta_rows: 0,
        }
    }

    /// Slice width (µs).
    pub fn slice_width(&self) -> i64 {
        self.width
    }

    /// Number of live slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Rows folded into state so far (the `ivm.delta.rows` counter).
    pub fn delta_rows(&self) -> u64 {
        self.delta_rows
    }

    /// Approximate bytes held across live slices.
    pub fn state_bytes(&self) -> usize {
        self.slices.values().map(|s| s.bytes).sum()
    }

    fn prefix(&self) -> &StreamPrefix {
        match &self.shape {
            IvmShape::Agg { prefix, .. }
            | IvmShape::JoinAgg { prefix, .. }
            | IvmShape::Distinct { prefix, .. } => prefix,
        }
    }

    /// Fold one stream tuple into its slice. The caller guarantees CQTIME
    /// order (the reorder buffer sits upstream, as for shared groups).
    pub fn on_tuple(&mut self, row: &Row) -> Result<()> {
        let ectx = EvalContext::default();
        let prefix = self.prefix();
        let ts = row
            .get(prefix.cqtime)
            .ok_or_else(|| Error::stream("row too short for CQTIME"))?
            .as_timestamp()?;
        let Some(folded) = apply_ops(&prefix.ops, row, &ectx)? else {
            return Ok(());
        };
        let slice_start = ts.div_euclid(self.width) * self.width;
        let width = self.width;
        match &self.shape {
            IvmShape::Agg { agg, .. } => {
                let key: Vec<Value> = agg
                    .group_exprs
                    .iter()
                    .map(|e| eval(e, &folded, &ectx))
                    .collect::<Result<_>>()?;
                let slice = self.slices.entry(slice_start).or_insert_with(|| Slice {
                    bytes: 0,
                    kind: SliceKind::Groups {
                        groups: HashMap::new(),
                        order: Vec::new(),
                    },
                });
                let SliceKind::Groups { groups, order } = &mut slice.kind else {
                    return Err(Error::stream("ivm slice kind changed mid-stream"));
                };
                let accs = match groups.get_mut(&key) {
                    Some(a) => a,
                    None => {
                        slice.bytes += key_bytes(&key) + ACC_BYTES * agg.aggs.len();
                        order.push(key.clone());
                        groups
                            .entry(key)
                            .or_insert_with(|| agg.aggs.iter().map(Accumulator::new).collect())
                    }
                };
                update_accs(accs, &agg.aggs, &folded, &ectx)?;
            }
            IvmShape::JoinAgg { join, agg, .. } => {
                let jk: Vec<Value> = join
                    .left_key
                    .iter()
                    .map(|e| eval(e, &folded, &ectx))
                    .collect::<Result<_>>()?;
                if jk.iter().any(Value::is_null) {
                    // NULL join keys never match: re-evaluation emits no
                    // joined row, so there is nothing to maintain.
                    return Ok(());
                }
                let gk: Vec<Value> = agg
                    .group_exprs
                    .iter()
                    .map(|e| eval(e, &folded, &ectx))
                    .collect::<Result<_>>()?;
                let slice = self.slices.entry(slice_start).or_insert_with(|| Slice {
                    bytes: 0,
                    kind: SliceKind::Pairs {
                        pairs: HashMap::new(),
                        order: Vec::new(),
                    },
                });
                let SliceKind::Pairs { pairs, order } = &mut slice.kind else {
                    return Err(Error::stream("ivm slice kind changed mid-stream"));
                };
                let pair = (jk, gk);
                let accs = match pairs.get_mut(&pair) {
                    Some(a) => a,
                    None => {
                        slice.bytes +=
                            key_bytes(&pair.0) + key_bytes(&pair.1) + ACC_BYTES * agg.aggs.len();
                        order.push(pair.clone());
                        pairs
                            .entry(pair)
                            .or_insert_with(|| agg.aggs.iter().map(Accumulator::new).collect())
                    }
                };
                update_accs(accs, &agg.aggs, &folded, &ectx)?;
            }
            IvmShape::Distinct { .. } => {
                let slice = self.slices.entry(slice_start).or_insert_with(|| Slice {
                    bytes: 0,
                    kind: SliceKind::Rows {
                        seen: HashSet::new(),
                        order: Vec::new(),
                    },
                });
                let SliceKind::Rows { seen, order } = &mut slice.kind else {
                    return Err(Error::stream("ivm slice kind changed mid-stream"));
                };
                if seen.insert(folded.clone()) {
                    slice.bytes += key_bytes(&folded);
                    order.push(folded);
                }
            }
        }
        let _ = width;
        self.delta_rows += 1;
        Ok(())
    }

    /// Compose the anchor output for the window `[close - visible, close)`
    /// by merging covered slices.
    pub fn window_result(&self, close: Timestamp) -> Result<WindowOutput> {
        let lo = close - self.visible;
        match &self.shape {
            IvmShape::Agg { agg, .. } => {
                let mut merged: HashMap<&[Value], Vec<Accumulator>> = HashMap::new();
                let mut order: Vec<&[Value]> = Vec::new();
                for (_, slice) in self.slices.range(lo..close) {
                    let SliceKind::Groups { groups, order: so } = &slice.kind else {
                        return Err(Error::stream("ivm slice kind changed mid-stream"));
                    };
                    for key in so {
                        let partial = &groups[key];
                        match merged.get_mut(key.as_slice()) {
                            Some(accs) => {
                                for (a, p) in accs.iter_mut().zip(partial) {
                                    a.merge(p)?;
                                }
                            }
                            None => {
                                order.push(key.as_slice());
                                merged.insert(key.as_slice(), partial.clone());
                            }
                        }
                    }
                }
                Ok(WindowOutput::Ready(compose_groups(agg, merged, order)?))
            }
            IvmShape::JoinAgg { join, agg, .. } => {
                let mut merged: HashMap<&PairKey, Vec<Accumulator>> = HashMap::new();
                let mut order: Vec<&PairKey> = Vec::new();
                for (_, slice) in self.slices.range(lo..close) {
                    let SliceKind::Pairs { pairs, order: so } = &slice.kind else {
                        return Err(Error::stream("ivm slice kind changed mid-stream"));
                    };
                    for key in so {
                        let partial = &pairs[key];
                        match merged.get_mut(key) {
                            Some(accs) => {
                                for (a, p) in accs.iter_mut().zip(partial) {
                                    a.merge(p)?;
                                }
                            }
                            None => {
                                order.push(key);
                                merged.insert(key, partial.clone());
                            }
                        }
                    }
                }
                let entries = order
                    .into_iter()
                    .map(|k| {
                        let accs = merged.remove(k).unwrap_or_default();
                        (k.0.clone(), k.1.clone(), accs)
                    })
                    .collect();
                Ok(WindowOutput::NeedsTable(Box::new(JoinDelta {
                    table: join.table.clone(),
                    table_filter: join.table_filter.clone(),
                    right_key: join.right_key.clone(),
                    index_column: join.index_column.clone(),
                    entries,
                    aggs: agg.aggs.clone(),
                    schema: agg.schema.clone(),
                    global: agg.group_exprs.is_empty(),
                })))
            }
            IvmShape::Distinct { schema, .. } => {
                let mut seen: HashSet<&Row> = HashSet::new();
                let mut rel = Relation::empty(schema.clone());
                for (_, slice) in self.slices.range(lo..close) {
                    let SliceKind::Rows { order, .. } = &slice.kind else {
                        return Err(Error::stream("ivm slice kind changed mid-stream"));
                    };
                    for row in order {
                        if seen.insert(row) {
                            rel.push(row.clone());
                        }
                    }
                }
                Ok(WindowOutput::Ready(rel))
            }
        }
    }

    /// Drop slices no future window can reach: every slice whose end is at
    /// or before `horizon` (= next close − visible).
    pub fn evict(&mut self, horizon: Timestamp) {
        let width = self.width;
        self.slices.retain(|start, _| start + width > horizon);
    }
}

fn compose_groups(
    agg: &AggShape,
    merged: HashMap<&[Value], Vec<Accumulator>>,
    order: Vec<&[Value]>,
) -> Result<Relation> {
    let mut rel = Relation::empty(agg.schema.clone());
    if merged.is_empty() && agg.group_exprs.is_empty() {
        // Global aggregate over an empty window: defaults row, exactly as
        // the re-evaluated aggregate produces.
        rel.push(
            agg.aggs
                .iter()
                .map(|s| Accumulator::new(s).finish())
                .collect(),
        );
        return Ok(rel);
    }
    for key in order {
        let accs = &merged[key];
        let mut row: Row = key.to_vec();
        row.extend(accs.iter().map(Accumulator::finish));
        rel.push(row);
    }
    Ok(rel)
}

fn update_accs(
    accs: &mut [Accumulator],
    specs: &[AggSpec],
    row: &Row,
    ectx: &EvalContext,
) -> Result<()> {
    for (acc, spec) in accs.iter_mut().zip(specs) {
        match &spec.arg {
            Some(arg) => {
                let v = eval(arg, row, ectx)?;
                acc.update(Some(&v))?;
            }
            None => acc.update(None)?,
        }
    }
    Ok(())
}

fn apply_ops(ops: &[RowOp], row: &Row, ectx: &EvalContext) -> Result<Option<Row>> {
    let mut cur = row.clone();
    for op in ops {
        match op {
            RowOp::Filter(pred) => {
                if !eval_predicate(pred, &cur, ectx)? {
                    return Ok(None);
                }
            }
            RowOp::Project(exprs) => {
                cur = exprs
                    .iter()
                    .map(|e| eval(e, &cur, ectx))
                    .collect::<Result<_>>()?;
            }
        }
    }
    Ok(Some(cur))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use streamrel_sql::plan::{AggFunc, LogicalPlan};
    use streamrel_types::time::MINUTES;
    use streamrel_types::{row, Column, DataType, Schema};

    use crate::lower::{AggShape, JoinShape, StreamPrefix};

    fn stream_schema() -> SchemaRef {
        Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::not_null("atime", DataType::Timestamp),
            ])
            .unwrap(),
        )
    }

    fn col0() -> BoundExpr {
        BoundExpr::Column {
            index: 0,
            ty: DataType::Text,
        }
    }

    fn count_spec() -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
            name: "count".into(),
            ty: DataType::Int,
        }
    }

    fn prefix(ops: Vec<RowOp>) -> StreamPrefix {
        StreamPrefix {
            stream: "url_stream".into(),
            input_schema: stream_schema(),
            cqtime: 1,
            ops,
        }
    }

    fn count_agg(grouped: bool) -> AggShape {
        let (group_exprs, cols) = if grouped {
            (
                vec![col0()],
                vec![
                    Column::new("url", DataType::Text),
                    Column::new("count", DataType::Int),
                ],
            )
        } else {
            (vec![], vec![Column::new("count", DataType::Int)])
        };
        AggShape {
            group_exprs,
            aggs: vec![count_spec()],
            schema: Arc::new(Schema::new_unchecked(cols)),
        }
    }

    fn program(shape: IvmShape, visible: i64, advance: i64) -> IvmProgram {
        IvmProgram {
            shape,
            post_plan: LogicalPlan::OneRow,
            visible,
            advance,
        }
    }

    fn agg_state(ops: Vec<RowOp>, grouped: bool, visible: i64, advance: i64) -> IvmState {
        IvmState::new(&program(
            IvmShape::Agg {
                prefix: prefix(ops),
                agg: count_agg(grouped),
            },
            visible,
            advance,
        ))
    }

    fn tup(url: &str, ts: i64) -> Row {
        row![url, Value::Timestamp(ts)]
    }

    fn ready(out: WindowOutput) -> Relation {
        match out {
            WindowOutput::Ready(rel) => rel,
            WindowOutput::NeedsTable(_) => panic!("expected Ready output"),
        }
    }

    #[test]
    fn agg_window_merges_slices() {
        let mut s = agg_state(vec![], true, 2 * MINUTES, MINUTES);
        assert_eq!(s.slice_width(), MINUTES);
        s.on_tuple(&tup("/a", 10)).unwrap();
        s.on_tuple(&tup("/a", 20)).unwrap();
        s.on_tuple(&tup("/b", MINUTES + 5)).unwrap();
        let rel = ready(s.window_result(2 * MINUTES).unwrap());
        assert_eq!(rel.rows(), &[row!["/a", 2i64], row!["/b", 1i64]]);
        assert_eq!(s.delta_rows(), 3);
        assert!(s.state_bytes() > 0);
    }

    #[test]
    fn shorter_visible_sees_only_recent_slices() {
        let mut s = agg_state(vec![], true, MINUTES, MINUTES);
        s.on_tuple(&tup("/a", 10)).unwrap();
        s.on_tuple(&tup("/b", MINUTES + 5)).unwrap();
        let rel = ready(s.window_result(2 * MINUTES).unwrap());
        assert_eq!(rel.rows(), &[row!["/b", 1i64]]);
    }

    #[test]
    fn filter_op_applies_before_slicing() {
        let like = BoundExpr::Like {
            expr: Box::new(col0()),
            pattern: Box::new(BoundExpr::Literal(Value::text("/a%"))),
            negated: false,
        };
        let mut s = agg_state(vec![RowOp::Filter(like)], true, MINUTES, MINUTES);
        s.on_tuple(&tup("/a1", 10)).unwrap();
        s.on_tuple(&tup("/b1", 20)).unwrap();
        let rel = ready(s.window_result(MINUTES).unwrap());
        assert_eq!(rel.rows(), &[row!["/a1", 1i64]]);
        assert_eq!(s.delta_rows(), 1, "filtered rows never reach state");
    }

    #[test]
    fn empty_global_aggregate_yields_defaults() {
        let s = agg_state(vec![], false, MINUTES, MINUTES);
        let rel = ready(s.window_result(MINUTES).unwrap());
        assert_eq!(rel.rows(), &[row![0i64]]);
    }

    #[test]
    fn eviction_drops_unreachable_slices() {
        let mut s = agg_state(vec![], true, MINUTES, MINUTES);
        for i in 0..10 {
            s.on_tuple(&tup("/a", i * MINUTES + 1)).unwrap();
        }
        assert_eq!(s.slice_count(), 10);
        s.evict(2 * MINUTES);
        assert_eq!(s.slice_count(), 8);
        let bytes = s.state_bytes();
        s.evict(10 * MINUTES);
        assert_eq!(s.slice_count(), 0);
        assert!(s.state_bytes() < bytes);
    }

    #[test]
    fn distinct_first_seen_across_slices() {
        let shape = IvmShape::Distinct {
            prefix: prefix(vec![RowOp::Project(vec![col0()])]),
            schema: Arc::new(Schema::new_unchecked(vec![Column::new(
                "url",
                DataType::Text,
            )])),
        };
        let mut s = IvmState::new(&program(shape, 2 * MINUTES, MINUTES));
        s.on_tuple(&tup("/a", 10)).unwrap();
        s.on_tuple(&tup("/b", 20)).unwrap();
        s.on_tuple(&tup("/a", MINUTES + 5)).unwrap();
        let rel = ready(s.window_result(2 * MINUTES).unwrap());
        assert_eq!(rel.rows(), &[row!["/a"], row!["/b"]]);
    }

    fn join_state() -> IvmState {
        let shape = IvmShape::JoinAgg {
            prefix: prefix(vec![]),
            join: JoinShape {
                left_key: vec![col0()],
                table: "dims".into(),
                table_schema: dims_schema(),
                table_filter: None,
                right_key: vec![col0()],
                index_column: Some("url".into()),
            },
            agg: count_agg(true),
        };
        IvmState::new(&program(shape, MINUTES, MINUTES))
    }

    fn dims_schema() -> SchemaRef {
        Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::new("weight", DataType::Int),
            ])
            .unwrap(),
        )
    }

    fn dims_rel() -> Relation {
        let mut rel = Relation::empty(dims_schema());
        rel.push(row!["/a", 1i64]);
        rel.push(row!["/a", 2i64]);
        rel.push(row!["/b", 3i64]);
        rel
    }

    fn delta(s: &IvmState, close: i64) -> Box<JoinDelta> {
        match s.window_result(close).unwrap() {
            WindowOutput::NeedsTable(d) => d,
            WindowOutput::Ready(_) => panic!("expected NeedsTable output"),
        }
    }

    #[test]
    fn join_delta_scales_by_match_count() {
        let mut s = join_state();
        s.on_tuple(&tup("/a", 10)).unwrap();
        s.on_tuple(&tup("/a", 20)).unwrap();
        s.on_tuple(&tup("/b", 30)).unwrap();
        s.on_tuple(&tup("/c", 40)).unwrap();
        let d = delta(&s, MINUTES);
        let source = streamrel_exec::source::MapSource::new().with("dims", dims_rel());
        let rel = d.finalize(&source).unwrap();
        // `/a` matches 2 dim rows (2 tuples × 2), `/c` matches none.
        assert_eq!(rel.rows(), &[row!["/a", 4i64], row!["/b", 1i64]]);
    }

    #[test]
    fn join_delta_index_path_matches_scan_path() {
        struct Indexed(Relation);
        impl RelationSource for Indexed {
            fn scan_table(&self, _: &str) -> Result<Relation> {
                panic!("index path must not scan");
            }
            fn index_lookup(&self, _: &str, _: &str, key: &Value) -> Result<Option<Vec<Row>>> {
                Ok(Some(
                    self.0
                        .rows()
                        .iter()
                        .filter(|r| r[0] == *key)
                        .cloned()
                        .collect(),
                ))
            }
        }
        let mut s = join_state();
        s.on_tuple(&tup("/a", 10)).unwrap();
        s.on_tuple(&tup("/b", 30)).unwrap();
        let d = delta(&s, MINUTES);
        let via_index = d.finalize(&Indexed(dims_rel())).unwrap();
        let via_scan = d
            .finalize(&streamrel_exec::source::MapSource::new().with("dims", dims_rel()))
            .unwrap();
        assert_eq!(via_index.rows(), via_scan.rows());
        assert_eq!(via_index.rows(), &[row!["/a", 2i64], row!["/b", 1i64]]);
    }

    #[test]
    fn null_join_keys_never_staged() {
        let mut s = join_state();
        s.on_tuple(&row![Value::Null, Value::Timestamp(10)])
            .unwrap();
        let d = delta(&s, MINUTES);
        assert!(d.is_empty());
    }

    #[test]
    fn empty_global_join_aggregate_yields_defaults() {
        let shape = IvmShape::JoinAgg {
            prefix: prefix(vec![]),
            join: JoinShape {
                left_key: vec![col0()],
                table: "dims".into(),
                table_schema: dims_schema(),
                table_filter: None,
                right_key: vec![col0()],
                index_column: None,
            },
            agg: count_agg(false),
        };
        let s = IvmState::new(&program(shape, MINUTES, MINUTES));
        let d = delta(&s, MINUTES);
        let source = streamrel_exec::source::MapSource::new().with("dims", dims_rel());
        let rel = d.finalize(&source).unwrap();
        assert_eq!(rel.rows(), &[row![0i64]]);
    }
}
