//! The IVM planner pass: lowering a bound continuous plan to an
//! incremental program, or reporting why it must re-evaluate.
//!
//! A plan lowers when it has exactly one *anchor* — an `Aggregate` or a
//! `Distinct` — whose input is maintainable per tuple: a filter/project
//! chain over the stream scan, optionally (for aggregates) joined to a
//! stored table on hash-exact equi-keys. Everything above the anchor
//! becomes the *post-plan*, re-anchored on the synthetic [`IVM_INPUT`]
//! stream; at window close the runtime feeds it the relation composed
//! from slice partials.
//!
//! The eligibility rules are deliberately conservative: every admitted
//! shape must reproduce re-evaluation **byte-identically**, so anything
//! whose slice-merge could reorder floating-point accumulation (float
//! SUM/AVG, VARIANCE/STDDEV, float join keys) falls back. Each fallback
//! carries a stable reason string that `EXPLAIN CHECK` surfaces and the
//! `ivm.fallback` counter tallies.

use streamrel_exec::join::{extract_keys, flatten_and, shift_down};
use streamrel_sql::plan::{AggFunc, AggSpec, BoundExpr, JoinKind, LogicalPlan, SchemaRef};
use streamrel_sql::WindowSpec;
use streamrel_types::DataType;

/// Synthetic stream name the post-plan scans; the runtime binds it to the
/// relation composed from IVM state at each window close.
pub const IVM_INPUT: &str = "__ivm_delta";

/// One maintained row transformation below the anchor.
#[derive(Debug, Clone)]
pub enum RowOp {
    /// Drop rows failing the predicate.
    Filter(BoundExpr),
    /// Map the row through projection expressions.
    Project(Vec<BoundExpr>),
}

/// The stream-side pipeline below the anchor: which stream feeds it, where
/// its CQTIME lives, and the filter/project chain applied per tuple.
#[derive(Debug, Clone)]
pub struct StreamPrefix {
    /// Source stream name.
    pub stream: String,
    /// Stream schema (the chain's input).
    pub input_schema: SchemaRef,
    /// CQTIME column position in the *stream* row (ops may project it
    /// away; the timestamp is read before the chain runs).
    pub cqtime: usize,
    /// Filter/project chain, in application order.
    pub ops: Vec<RowOp>,
}

/// The grouping/aggregation applied at the anchor.
#[derive(Debug, Clone)]
pub struct AggShape {
    /// Group-by expressions over the anchor input row.
    pub group_exprs: Vec<BoundExpr>,
    /// Aggregate functions (arguments over the anchor input row).
    pub aggs: Vec<AggSpec>,
    /// Anchor output schema (`[groups..., aggs...]`).
    pub schema: SchemaRef,
}

/// An equi-join from the stream side to a stored table, reduced to what
/// incremental maintenance needs: key extraction on both sides and the
/// table-side filter. Per-tuple state is keyed by the join key; the match
/// count against the boundary snapshot is resolved at window close.
#[derive(Debug, Clone)]
pub struct JoinShape {
    /// Key expressions over the stream-side (left) row.
    pub left_key: Vec<BoundExpr>,
    /// Joined table name.
    pub table: String,
    /// Table schema.
    pub table_schema: SchemaRef,
    /// Combined table-side filter (scan filter AND right-only WHERE
    /// conjuncts), over the table row.
    pub table_filter: Option<BoundExpr>,
    /// Key expressions over the table row.
    pub right_key: Vec<BoundExpr>,
    /// When the single right key is a bare column, its name — the close
    /// path probes the table's index instead of scanning.
    pub index_column: Option<String>,
}

/// What state the runtime maintains for a lowered plan.
#[derive(Debug, Clone)]
pub enum IvmShape {
    /// `Aggregate` over a stream chain: per-slice delta hash aggregates.
    Agg { prefix: StreamPrefix, agg: AggShape },
    /// `Aggregate` over stream ⋈ table: per-slice partials keyed by
    /// (join key, group key); match counts resolved against the window
    /// boundary snapshot.
    JoinAgg {
        prefix: StreamPrefix,
        join: JoinShape,
        agg: AggShape,
    },
    /// `Distinct` over a stream chain: per-slice first-seen row sets.
    Distinct {
        prefix: StreamPrefix,
        /// Anchor output schema (= its input schema).
        schema: SchemaRef,
    },
}

/// A lowered continuous plan: the incremental shape plus the post-plan
/// that consumes the composed anchor output at window close.
#[derive(Debug, Clone)]
pub struct IvmProgram {
    /// State to maintain per tuple.
    pub shape: IvmShape,
    /// Plan over [`IVM_INPUT`] run at each close.
    pub post_plan: LogicalPlan,
    /// Window VISIBLE (µs).
    pub visible: i64,
    /// Window ADVANCE (µs).
    pub advance: i64,
}

/// Outcome of the lowering pass.
pub enum Lowering {
    /// The plan lowers to an incremental program.
    Lowered(Box<IvmProgram>),
    /// The plan must re-evaluate per window; the reason is stable text
    /// surfaced by `EXPLAIN CHECK` and the `ivm.fallback` counter.
    Fallback(&'static str),
}

/// Lower a bound continuous plan, or report the fallback reason.
pub fn lower(plan: &LogicalPlan) -> Lowering {
    let mut found: Option<(IvmShape, WindowSpec)> = None;
    let post_plan = match rewrite(plan, &mut found) {
        Ok(p) => p,
        Err(reason) => return Lowering::Fallback(reason),
    };
    match found {
        Some((shape, WindowSpec::Time { visible, advance })) => {
            Lowering::Lowered(Box::new(IvmProgram {
                shape,
                post_plan,
                visible,
                advance,
            }))
        }
        // parse_stream_chain only admits time windows; defense in depth.
        Some(_) => Lowering::Fallback(REASON_WINDOW),
        None => Lowering::Fallback(REASON_NO_ANCHOR),
    }
}

/// Why a plan does not lower, or `None` when it does. Admission checking
/// (`streamrel-check`) uses this to report the chosen execution path
/// without constructing runtime state.
pub fn fallback_reason(plan: &LogicalPlan) -> Option<&'static str> {
    match lower(plan) {
        Lowering::Lowered(_) => None,
        Lowering::Fallback(r) => Some(r),
    }
}

const REASON_NO_ANCHOR: &str = "no aggregate or distinct anchor to maintain incrementally";
const REASON_TWO_ANCHORS: &str = "more than one incremental anchor";
const REASON_WINDOW: &str = "only time windows lower to slices";
const REASON_DERIVED: &str = "derived-stream source arrives as whole result batches";
const REASON_NO_CQTIME: &str = "stream has no CQTIME column to slice on";
const REASON_CQ_CLOSE: &str = "cq_close(*) below the anchor is unknown at slice time";
const REASON_FLOAT_AGG: &str = "float sum/avg slice merge is not order-exact";
const REASON_VARIANCE: &str = "variance/stddev slice merge is not order-exact";
const REASON_JOIN_ABOVE: &str = "join above the incremental anchor";
const REASON_JOIN_KIND: &str = "only inner stream-table joins lower";
const REASON_CROSS_JOIN: &str = "cross join has no key to index on";
const REASON_NO_EQUI_KEY: &str = "join condition has no equi-key";
const REASON_RESIDUAL: &str = "non-equi join conjuncts require re-evaluation";
const REASON_KEY_TYPES: &str = "join key sides have different types";
const REASON_FLOAT_KEY: &str = "float join keys are not hash-exact";
const REASON_FILTER_SPANS: &str = "filter conjunct spans both join sides";
const REASON_GROUP_SIDE: &str = "group key references the table side";
const REASON_AGG_SIDE: &str = "aggregate argument references the table side";
const REASON_RIGHT_NOT_TABLE: &str = "join right side is not a stored table scan";
const REASON_STREAM_RIGHT: &str = "stream on the join's right side";
const REASON_BELOW_ANCHOR: &str = "unsupported operator below the anchor";

fn rewrite(
    plan: &LogicalPlan,
    found: &mut Option<(IvmShape, WindowSpec)>,
) -> Result<LogicalPlan, &'static str> {
    match plan {
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggs,
            schema,
        } => {
            if found.is_some() {
                return Err(REASON_TWO_ANCHORS);
            }
            let (shape, window) = lower_aggregate(input, group_exprs, aggs, schema)?;
            *found = Some((shape, window));
            Ok(LogicalPlan::StreamScan {
                stream: IVM_INPUT.to_string(),
                schema: schema.clone(),
                window,
                cqtime: None,
                derived: false,
            })
        }
        LogicalPlan::Distinct { input } => {
            if contains_aggregate(input) {
                // The aggregate below is the anchor; DISTINCT rides in the
                // post-plan over its (small) output.
                Ok(LogicalPlan::Distinct {
                    input: Box::new(rewrite(input, found)?),
                })
            } else {
                if found.is_some() {
                    return Err(REASON_TWO_ANCHORS);
                }
                let (prefix, window) = parse_stream_chain(input)?;
                let schema = input.schema();
                *found = Some((
                    IvmShape::Distinct {
                        prefix,
                        schema: schema.clone(),
                    },
                    window,
                ));
                Ok(LogicalPlan::StreamScan {
                    stream: IVM_INPUT.to_string(),
                    schema,
                    window,
                    cqtime: None,
                    derived: false,
                })
            }
        }
        LogicalPlan::Filter { input, predicate } => Ok(LogicalPlan::Filter {
            input: Box::new(rewrite(input, found)?),
            predicate: predicate.clone(),
        }),
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => Ok(LogicalPlan::Project {
            input: Box::new(rewrite(input, found)?),
            exprs: exprs.clone(),
            schema: schema.clone(),
        }),
        LogicalPlan::Sort { input, keys } => Ok(LogicalPlan::Sort {
            input: Box::new(rewrite(input, found)?),
            keys: keys.clone(),
        }),
        LogicalPlan::Limit { input, n } => Ok(LogicalPlan::Limit {
            input: Box::new(rewrite(input, found)?),
            n: *n,
        }),
        LogicalPlan::Join { .. } => Err(REASON_JOIN_ABOVE),
        LogicalPlan::StreamScan { .. } => Err(REASON_NO_ANCHOR),
        LogicalPlan::TableScan { .. } | LogicalPlan::OneRow => Err(REASON_NO_ANCHOR),
    }
}

fn contains_aggregate(plan: &LogicalPlan) -> bool {
    let mut found = false;
    plan.visit(&mut |p| {
        if matches!(p, LogicalPlan::Aggregate { .. }) {
            found = true;
        }
    });
    found
}

/// Walk a filter/project chain down to the stream scan.
fn parse_stream_chain(plan: &LogicalPlan) -> Result<(StreamPrefix, WindowSpec), &'static str> {
    let mut ops_rev: Vec<RowOp> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            LogicalPlan::Filter { input, predicate } => {
                if predicate.uses_cq_close() {
                    return Err(REASON_CQ_CLOSE);
                }
                ops_rev.push(RowOp::Filter(predicate.clone()));
                cur = input;
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema: _,
            } => {
                if exprs.iter().any(BoundExpr::uses_cq_close) {
                    return Err(REASON_CQ_CLOSE);
                }
                ops_rev.push(RowOp::Project(exprs.clone()));
                cur = input;
            }
            LogicalPlan::StreamScan {
                stream,
                schema,
                window,
                cqtime,
                derived,
            } => {
                if *derived {
                    return Err(REASON_DERIVED);
                }
                let WindowSpec::Time { .. } = window else {
                    return Err(REASON_WINDOW);
                };
                let Some(cqtime) = *cqtime else {
                    return Err(REASON_NO_CQTIME);
                };
                ops_rev.reverse();
                return Ok((
                    StreamPrefix {
                        stream: stream.clone(),
                        input_schema: schema.clone(),
                        cqtime,
                        ops: ops_rev,
                    },
                    *window,
                ));
            }
            _ => return Err(REASON_BELOW_ANCHOR),
        }
    }
}

/// Per-aggregate eligibility: only order-insensitive-exact partials lower.
/// Integer sums are exact; AVG keeps an f64 sum of integer-valued inputs,
/// which is addition of exactly-representable values (≤ 2⁵³), so slice
/// order cannot change the result. Float SUM/AVG and VARIANCE/STDDEV merge
/// float partials whose rounding depends on association order — those
/// re-evaluate.
fn agg_eligible(spec: &AggSpec) -> Result<(), &'static str> {
    if spec.arg.as_ref().is_some_and(BoundExpr::uses_cq_close) {
        return Err(REASON_CQ_CLOSE);
    }
    let float_arg = matches!(spec.arg.as_ref().map(BoundExpr::ty), Some(DataType::Float));
    match spec.func {
        AggFunc::Count | AggFunc::Min | AggFunc::Max => Ok(()),
        AggFunc::Sum | AggFunc::Avg if float_arg => Err(REASON_FLOAT_AGG),
        AggFunc::Sum | AggFunc::Avg => Ok(()),
        AggFunc::Variance | AggFunc::Stddev => Err(REASON_VARIANCE),
    }
}

fn lower_aggregate(
    input: &LogicalPlan,
    group_exprs: &[BoundExpr],
    aggs: &[AggSpec],
    schema: &SchemaRef,
) -> Result<(IvmShape, WindowSpec), &'static str> {
    if group_exprs.iter().any(BoundExpr::uses_cq_close) {
        return Err(REASON_CQ_CLOSE);
    }
    for spec in aggs {
        agg_eligible(spec)?;
    }
    let agg = AggShape {
        group_exprs: group_exprs.to_vec(),
        aggs: aggs.to_vec(),
        schema: schema.clone(),
    };

    // Peel WHERE filters sitting between the aggregate and a join; for a
    // plain chain they are handled by parse_stream_chain instead.
    let mut above: Vec<&BoundExpr> = Vec::new();
    let mut cur = input;
    while let LogicalPlan::Filter {
        input: inner,
        predicate,
    } = cur
    {
        above.push(predicate);
        cur = inner;
    }
    let LogicalPlan::Join {
        left,
        right,
        kind,
        on,
        schema: _,
    } = cur
    else {
        // No join below: the whole input is a stream chain.
        let (prefix, window) = parse_stream_chain(input)?;
        return Ok((IvmShape::Agg { prefix, agg }, window));
    };

    if *kind != JoinKind::Inner {
        return Err(REASON_JOIN_KIND);
    }
    let Some(on) = on else {
        return Err(REASON_CROSS_JOIN);
    };
    if on.uses_cq_close() {
        return Err(REASON_CQ_CLOSE);
    }

    // Stream on the left, stored table (with optional scan filter) on the
    // right — the shape `try_index_join` accelerates in the re-eval path.
    let (mut prefix, window) = parse_stream_chain(left).map_err(|e| {
        if matches!(left.as_ref(), LogicalPlan::TableScan { .. }) {
            REASON_STREAM_RIGHT
        } else {
            e
        }
    })?;
    let left_width = left.schema().len();
    let mut table_filters: Vec<BoundExpr> = Vec::new();
    let mut table_scan = right.as_ref();
    while let LogicalPlan::Filter {
        input: inner,
        predicate,
    } = table_scan
    {
        if predicate.uses_cq_close() {
            return Err(REASON_CQ_CLOSE);
        }
        table_filters.push(predicate.clone());
        table_scan = inner;
    }
    let LogicalPlan::TableScan {
        table,
        schema: table_schema,
    } = table_scan
    else {
        return Err(REASON_RIGHT_NOT_TABLE);
    };

    let Some(keys) = extract_keys(on, left_width) else {
        return Err(REASON_NO_EQUI_KEY);
    };
    if !keys.residual.is_empty() {
        return Err(REASON_RESIDUAL);
    }
    for (l, r) in keys.left.iter().zip(&keys.right) {
        if l.ty() != r.ty() {
            return Err(REASON_KEY_TYPES);
        }
        if l.ty() == DataType::Float {
            return Err(REASON_FLOAT_KEY);
        }
    }

    // Classify the peeled WHERE conjuncts by side: left-only ones join the
    // stream chain, right-only ones the table filter. A conjunct spanning
    // both sides would need the joined row — fall back.
    for predicate in above {
        if predicate.uses_cq_close() {
            return Err(REASON_CQ_CLOSE);
        }
        let mut conjuncts = Vec::new();
        flatten_and(predicate, &mut conjuncts);
        for mut c in conjuncts {
            let mut cols = Vec::new();
            c.referenced_columns(&mut cols);
            if cols.iter().all(|&i| i < left_width) {
                prefix.ops.push(RowOp::Filter(c));
            } else if cols.iter().all(|&i| i >= left_width) {
                shift_down(&mut c, left_width);
                table_filters.push(c);
            } else {
                return Err(REASON_FILTER_SPANS);
            }
        }
    }

    // Group keys and aggregate arguments must be computable from the
    // stream row alone (their partials are scaled by the match count).
    let mut cols = Vec::new();
    for e in &agg.group_exprs {
        e.referenced_columns(&mut cols);
    }
    if cols.iter().any(|&i| i >= left_width) {
        return Err(REASON_GROUP_SIDE);
    }
    cols.clear();
    for spec in &agg.aggs {
        if let Some(arg) = &spec.arg {
            arg.referenced_columns(&mut cols);
        }
    }
    if cols.iter().any(|&i| i >= left_width) {
        return Err(REASON_AGG_SIDE);
    }

    let index_column = match (keys.left.len(), keys.right.first()) {
        (1, Some(BoundExpr::Column { index, .. })) => {
            Some(table_schema.column(*index).name.clone())
        }
        _ => None,
    };
    let table_filter = table_filters.into_iter().reduce(|a, b| BoundExpr::Binary {
        op: streamrel_sql::ast::BinaryOp::And,
        left: Box::new(a),
        right: Box::new(b),
        ty: DataType::Bool,
    });
    Ok((
        IvmShape::JoinAgg {
            prefix,
            join: JoinShape {
                left_key: keys.left,
                table: table.clone(),
                table_schema: table_schema.clone(),
                table_filter,
                right_key: keys.right,
                index_column,
            },
            agg,
        },
        window,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use streamrel_sql::ast::WindowSpec;
    use streamrel_sql::plan::{BinaryOp, SortKey};
    use streamrel_types::time::MINUTES;
    use streamrel_types::{Column, DataType, Schema, Value};

    fn stream_schema() -> SchemaRef {
        Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::not_null("atime", DataType::Timestamp),
            ])
            .unwrap(),
        )
    }

    fn dims_schema() -> SchemaRef {
        Arc::new(
            Schema::new(vec![
                Column::new("url", DataType::Text),
                Column::new("weight", DataType::Int),
            ])
            .unwrap(),
        )
    }

    fn time_window() -> WindowSpec {
        WindowSpec::Time {
            visible: 2 * MINUTES,
            advance: MINUTES,
        }
    }

    fn scan(window: WindowSpec) -> LogicalPlan {
        LogicalPlan::StreamScan {
            stream: "url_stream".into(),
            schema: stream_schema(),
            window,
            cqtime: Some(1),
            derived: false,
        }
    }

    fn col(index: usize, ty: DataType) -> BoundExpr {
        BoundExpr::Column { index, ty }
    }

    fn count_spec() -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
            name: "count".into(),
            ty: DataType::Int,
        }
    }

    fn agg_schema() -> SchemaRef {
        Arc::new(Schema::new_unchecked(vec![
            Column::new("url", DataType::Text),
            Column::new("count", DataType::Int),
        ]))
    }

    fn count_plan(input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(input),
            group_exprs: vec![col(0, DataType::Text)],
            aggs: vec![count_spec()],
            schema: agg_schema(),
        }
    }

    #[test]
    fn grouped_count_lowers_to_agg_shape() {
        let plan = count_plan(scan(time_window()));
        let Lowering::Lowered(p) = lower(&plan) else {
            panic!("expected lowered: {:?}", fallback_reason(&plan));
        };
        assert!(matches!(p.shape, IvmShape::Agg { .. }));
        assert_eq!((p.visible, p.advance), (2 * MINUTES, MINUTES));
        // The post-plan is the anchor replacement alone: a scan of the
        // composed delta input.
        assert!(
            matches!(&p.post_plan, LogicalPlan::StreamScan { stream, .. } if stream == IVM_INPUT)
        );
        assert!(fallback_reason(&plan).is_none());
    }

    #[test]
    fn wrappers_above_anchor_stay_in_post_plan() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(count_plan(scan(time_window()))),
                keys: vec![SortKey {
                    expr: col(1, DataType::Int),
                    asc: false,
                }],
            }),
            n: 5,
        };
        let Lowering::Lowered(p) = lower(&plan) else {
            panic!("expected lowered: {:?}", fallback_reason(&plan));
        };
        assert!(matches!(p.post_plan, LogicalPlan::Limit { .. }));
    }

    #[test]
    fn rows_window_falls_back() {
        let plan = count_plan(scan(WindowSpec::Rows {
            visible: 10,
            advance: 5,
        }));
        assert_eq!(fallback_reason(&plan), Some(REASON_WINDOW));
    }

    #[test]
    fn float_sum_falls_back() {
        let mut plan = count_plan(scan(time_window()));
        let LogicalPlan::Aggregate { aggs, .. } = &mut plan else {
            unreachable!()
        };
        aggs[0] = AggSpec {
            func: AggFunc::Sum,
            arg: Some(BoundExpr::Literal(Value::Float(1.0))),
            distinct: false,
            name: "sum".into(),
            ty: DataType::Float,
        };
        assert_eq!(fallback_reason(&plan), Some(REASON_FLOAT_AGG));
        // Integer SUM stays eligible.
        let LogicalPlan::Aggregate { aggs, .. } = &mut plan else {
            unreachable!()
        };
        aggs[0] = AggSpec {
            func: AggFunc::Sum,
            arg: Some(BoundExpr::Literal(Value::Int(1))),
            distinct: false,
            name: "sum".into(),
            ty: DataType::Int,
        };
        assert!(fallback_reason(&plan).is_none());
    }

    #[test]
    fn plain_select_falls_back_without_anchor() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(time_window())),
            predicate: BoundExpr::Literal(Value::Bool(true)),
        };
        assert_eq!(fallback_reason(&plan), Some(REASON_NO_ANCHOR));
    }

    fn join_plan(on: Option<BoundExpr>) -> LogicalPlan {
        let mut cols: Vec<Column> = stream_schema().columns().to_vec();
        cols.extend(dims_schema().columns().iter().cloned());
        let join_schema = Arc::new(Schema::new_unchecked(cols));
        LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan(time_window())),
                right: Box::new(LogicalPlan::TableScan {
                    table: "dims".into(),
                    schema: dims_schema(),
                }),
                kind: JoinKind::Inner,
                on,
                schema: join_schema,
            }),
            group_exprs: vec![col(0, DataType::Text)],
            aggs: vec![count_spec()],
            schema: agg_schema(),
        }
    }

    fn url_eq() -> BoundExpr {
        BoundExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(col(0, DataType::Text)),
            right: Box::new(col(2, DataType::Text)),
            ty: DataType::Bool,
        }
    }

    #[test]
    fn equi_join_lowers_with_index_column() {
        let plan = join_plan(Some(url_eq()));
        let Lowering::Lowered(p) = lower(&plan) else {
            panic!("expected lowered: {:?}", fallback_reason(&plan));
        };
        let IvmShape::JoinAgg { join, .. } = &p.shape else {
            panic!("expected JoinAgg shape");
        };
        assert_eq!(join.table, "dims");
        assert_eq!(join.index_column.as_deref(), Some("url"));
    }

    #[test]
    fn cross_join_falls_back() {
        let plan = join_plan(None);
        assert_eq!(fallback_reason(&plan), Some(REASON_CROSS_JOIN));
    }

    #[test]
    fn group_key_on_table_side_falls_back() {
        let mut plan = join_plan(Some(url_eq()));
        let LogicalPlan::Aggregate { group_exprs, .. } = &mut plan else {
            unreachable!()
        };
        group_exprs[0] = col(3, DataType::Int);
        assert_eq!(fallback_reason(&plan), Some(REASON_GROUP_SIDE));
    }

    #[test]
    fn distinct_over_stream_lowers() {
        let plan = LogicalPlan::Distinct {
            input: Box::new(scan(time_window())),
        };
        let Lowering::Lowered(p) = lower(&plan) else {
            panic!("expected lowered: {:?}", fallback_reason(&plan));
        };
        assert!(matches!(p.shape, IvmShape::Distinct { .. }));
    }

    #[test]
    fn derived_stream_falls_back() {
        let plan = count_plan(LogicalPlan::StreamScan {
            stream: "hits_1m".into(),
            schema: stream_schema(),
            window: time_window(),
            cqtime: Some(1),
            derived: true,
        });
        assert_eq!(fallback_reason(&plan), Some(REASON_DERIVED));
    }
}
