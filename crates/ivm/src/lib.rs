//! Incremental view maintenance (IVM) for continuous queries.
//!
//! The paper's §4 thesis is that continuous analytics should reuse
//! relational machinery *incrementally*: a window produces a sequence of
//! tables, and recomputing each table from scratch throws away the overlap
//! between consecutive windows. This crate supplies the second execution
//! mode that exploits that overlap, in the style of DBToaster's delta
//! processing and Fegaras's incremental stream query processing:
//!
//! - [`lower`] is the planner pass: it inspects a bound continuous plan
//!   and, when the plan is expressible, splits it into an incremental
//!   *shape* (the state to maintain per tuple) plus a *post-plan* that
//!   runs over the maintained operator output at window close. Plans it
//!   cannot express fall back to per-window re-evaluation, each with a
//!   stable reason string surfaced by `EXPLAIN CHECK`.
//! - [`IvmState`] is the runtime state: per-slice delta hash aggregates
//!   with mergeable partials (generalizing the shared "Jellybean" slices),
//!   incremental filter/project, indexed incremental join state keyed by
//!   join columns, and first-seen DISTINCT sets. Window close composes the
//!   covered slices — a near-O(delta) merge — instead of re-running the
//!   Volcano operators over every buffered row.
//!
//! Byte-identical equivalence with re-evaluation is the contract: the
//! lowering rules only admit shapes whose slice-merge is order-exact (see
//! the fallback matrix in DESIGN.md §12), and `tests/ivm_equivalence.rs`
//! proves the contract property-style, including across crash recovery.

#![deny(unsafe_code)]

pub mod lower;
pub mod state;

pub use lower::{
    fallback_reason, lower, AggShape, IvmProgram, IvmShape, JoinShape, Lowering, RowOp,
    StreamPrefix, IVM_INPUT,
};
pub use state::{IvmState, JoinDelta, WindowOutput};
