//! CSV ingestion: load files into streams (ordered ingest) or tables
//! (bulk insert). Hand-rolled RFC-4180-style parser — quoted fields,
//! embedded commas/newlines, `""` escapes — so the engine has no external
//! format dependency.

use std::io::BufRead;

use streamrel_types::{DataType, Error, Result, Row, Value};

/// Parse one CSV record from `line_iter`-style input; returns fields.
/// Handles quoted fields spanning multiple lines by pulling more input.
fn parse_record(
    first_line: String,
    more: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut line = first_line;
    loop {
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            if in_quotes {
                match c {
                    '"' => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            cur.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    _ => cur.push(c),
                }
            } else {
                match c {
                    '"' => in_quotes = true,
                    ',' => fields.push(std::mem::take(&mut cur)),
                    _ => cur.push(c),
                }
            }
        }
        if in_quotes {
            // Quoted field continues on the next physical line.
            cur.push('\n');
            match more.next() {
                Some(Ok(next)) => line = next,
                Some(Err(e)) => return Err(e.into()),
                None => return Err(Error::parse("unterminated quoted CSV field")),
            }
        } else {
            fields.push(cur);
            return Ok(fields);
        }
    }
}

/// Convert CSV text fields to a row for `schema`. Empty unquoted fields
/// become NULL; everything else casts from text to the column type.
pub fn fields_to_row(fields: &[String], schema: &streamrel_types::Schema) -> Result<Row> {
    if fields.len() != schema.len() {
        return Err(Error::analysis(format!(
            "CSV record has {} fields but schema has {} columns",
            fields.len(),
            schema.len()
        )));
    }
    let mut row = Vec::with_capacity(fields.len());
    for (f, col) in fields.iter().zip(schema.columns()) {
        if f.is_empty() {
            row.push(Value::Null);
            continue;
        }
        let v = match col.ty {
            DataType::Text => Value::text(f),
            ty => Value::text(f)
                .cast(ty)
                .map_err(|e| Error::type_err(format!("column `{}`: {e}", col.name)))?,
        };
        row.push(v);
    }
    Ok(row)
}

/// Read CSV from `reader` into rows for `schema`. `has_header` skips the
/// first record. Returns rows plus the number of records read.
pub fn read_csv(
    reader: impl BufRead,
    schema: &streamrel_types::Schema,
    has_header: bool,
) -> Result<Vec<Row>> {
    let mut lines = reader.lines();
    let mut rows = Vec::new();
    let mut first = true;
    while let Some(line) = lines.next() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(line, &mut lines)?;
        if first && has_header {
            first = false;
            continue;
        }
        first = false;
        rows.push(fields_to_row(&fields, schema)?);
    }
    Ok(rows)
}

impl crate::Db {
    /// Bulk-load CSV into a stream (ordered ingest through all CQs) or a
    /// table (one transaction). Returns rows loaded.
    pub fn copy_csv(&self, target: &str, reader: impl BufRead, has_header: bool) -> Result<u64> {
        // Resolve the schema: stream first, then table.
        let schema = match self.stream_schema(target) {
            Some(s) => s,
            None => self.engine().table_schema(target)?,
        };
        let rows = read_csv(reader, &schema, has_header)?;
        let n = rows.len() as u64;
        if self.stream_schema(target).is_some() {
            self.ingest_batch(target, rows)?;
        } else {
            let id = self.engine().table_id(target)?;
            self.engine()
                .with_txn(|x| self.engine().insert_many(x, id, rows))?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Db, DbOptions};
    use std::io::Cursor;
    use streamrel_types::row;

    #[test]
    fn basic_csv_into_table() {
        let db = Db::in_memory(DbOptions::default());
        db.execute("CREATE TABLE t (name varchar(20), n integer, f float)")
            .unwrap();
        let csv = "name,n,f\nalice,1,2.5\nbob,2,3.5\n";
        let n = db.copy_csv("t", Cursor::new(csv), true).unwrap();
        assert_eq!(n, 2);
        let rel = db.execute("SELECT * FROM t ORDER BY n").unwrap().rows();
        assert_eq!(rel.rows()[0], row!["alice", 1i64, 2.5]);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let db = Db::in_memory(DbOptions::default());
        db.execute("CREATE TABLE t (a varchar(64), b integer)")
            .unwrap();
        let csv = "\"hello, world\",1\n\"she said \"\"hi\"\"\",2\n\"multi\nline\",3\n";
        db.copy_csv("t", Cursor::new(csv), false).unwrap();
        let rel = db.execute("SELECT a FROM t ORDER BY b").unwrap().rows();
        assert_eq!(rel.rows()[0][0], Value::text("hello, world"));
        assert_eq!(rel.rows()[1][0], Value::text("she said \"hi\""));
        assert_eq!(rel.rows()[2][0], Value::text("multi\nline"));
    }

    #[test]
    fn empty_fields_are_null() {
        let db = Db::in_memory(DbOptions::default());
        db.execute("CREATE TABLE t (a integer, b varchar(8))")
            .unwrap();
        db.copy_csv("t", Cursor::new("1,\n,x\n"), false).unwrap();
        let rel = db
            .execute("SELECT count(*), count(a), count(b) FROM t")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row![2i64, 1i64, 1i64]);
    }

    #[test]
    fn csv_into_stream_drives_cqs() {
        let db = Db::in_memory(DbOptions::default());
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        let sub = db
            .execute("SELECT sum(v) FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        let csv = "v,ts\n5,1970-01-01 00:00:10\n7,1970-01-01 00:00:30\n";
        db.copy_csv("s", Cursor::new(csv), true).unwrap();
        db.heartbeat("s", 60_000_000).unwrap();
        let outs = db.poll(sub).unwrap();
        assert_eq!(outs[0].relation.rows()[0][0], Value::Int(12));
    }

    #[test]
    fn bad_data_reports_column() {
        let db = Db::in_memory(DbOptions::default());
        db.execute("CREATE TABLE t (n integer)").unwrap();
        let e = db.copy_csv("t", Cursor::new("xyz\n"), false).unwrap_err();
        assert!(e.to_string().contains("column `n`"), "{e}");
        let e = db.copy_csv("t", Cursor::new("1,2\n"), false).unwrap_err();
        assert!(e.to_string().contains("2 fields"), "{e}");
    }

    #[test]
    fn unterminated_quote_errors() {
        let db = Db::in_memory(DbOptions::default());
        db.execute("CREATE TABLE t (a varchar(8))").unwrap();
        assert!(db.copy_csv("t", Cursor::new("\"open\n"), false).is_err());
    }
}
