//! Database configuration.

use streamrel_cq::ConsistencyMode;
use streamrel_storage::SyncMode;
use streamrel_types::Interval;

/// Tuning knobs for a [`crate::Db`]. The defaults are the paper's design
/// points; the alternatives exist for the ablation experiments.
#[derive(Debug, Clone, Copy)]
pub struct DbOptions {
    /// Pool compatible aggregate CQs into shared slice groups (§2.2
    /// "Jellybean processing"). Ablated by experiment E3.
    pub sharing: bool,
    /// Snapshot policy for table reads inside CQs (window consistency, §4).
    /// Ablated by experiment E8.
    pub consistency: ConsistencyMode,
    /// WAL durability for durable databases.
    pub sync: SyncMode,
    /// Out-of-order slack per stream (µs). 0 enforces strict CQTIME order;
    /// positive values insert a reorder buffer.
    pub slack: Interval,
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions {
            sharing: true,
            consistency: ConsistencyMode::WindowBoundary,
            sync: SyncMode::Flush,
            slack: 0,
        }
    }
}

impl DbOptions {
    /// Disable CQ sharing (ablation baseline).
    pub fn without_sharing(mut self) -> DbOptions {
        self.sharing = false;
        self
    }

    /// Set the out-of-order slack.
    pub fn with_slack(mut self, slack: Interval) -> DbOptions {
        self.slack = slack;
        self
    }

    /// Set the consistency mode.
    pub fn with_consistency(mut self, mode: ConsistencyMode) -> DbOptions {
        self.consistency = mode;
        self
    }

    /// Set the WAL sync mode.
    pub fn with_sync(mut self, sync: SyncMode) -> DbOptions {
        self.sync = sync;
        self
    }
}
