//! Database configuration.

use streamrel_cq::ConsistencyMode;
use streamrel_storage::SyncMode;
use streamrel_types::Interval;

use crate::subscription::{OverflowPolicy, DEFAULT_SUB_CAPACITY};

/// Tuning knobs for a [`crate::Db`]. The defaults are the paper's design
/// points; the alternatives exist for the ablation experiments.
#[derive(Debug, Clone, Copy)]
pub struct DbOptions {
    /// Pool compatible aggregate CQs into shared slice groups (§2.2
    /// "Jellybean processing"). Ablated by experiment E3.
    pub sharing: bool,
    /// Snapshot policy for table reads inside CQs (window consistency, §4).
    /// Ablated by experiment E8.
    pub consistency: ConsistencyMode,
    /// WAL durability for durable databases.
    pub sync: SyncMode,
    /// Out-of-order slack per stream (µs). 0 enforces strict CQTIME order;
    /// positive values insert a reorder buffer.
    pub slack: Interval,
    /// Max undelivered window results per subscription; a slow poller past
    /// this bound loses windows per `sub_overflow` instead of growing
    /// memory. The network server's backpressure rests on this.
    pub sub_queue_capacity: usize,
    /// Which window result to sacrifice when a subscription queue is full.
    pub sub_overflow: OverflowPolicy,
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions {
            sharing: true,
            consistency: ConsistencyMode::WindowBoundary,
            sync: SyncMode::Flush,
            slack: 0,
            sub_queue_capacity: DEFAULT_SUB_CAPACITY,
            sub_overflow: OverflowPolicy::DropOldest,
        }
    }
}

impl DbOptions {
    /// Disable CQ sharing (ablation baseline).
    pub fn without_sharing(mut self) -> DbOptions {
        self.sharing = false;
        self
    }

    /// Set the out-of-order slack.
    pub fn with_slack(mut self, slack: Interval) -> DbOptions {
        self.slack = slack;
        self
    }

    /// Set the consistency mode.
    pub fn with_consistency(mut self, mode: ConsistencyMode) -> DbOptions {
        self.consistency = mode;
        self
    }

    /// Set the WAL sync mode.
    pub fn with_sync(mut self, sync: SyncMode) -> DbOptions {
        self.sync = sync;
        self
    }

    /// Bound each subscription's undelivered-results queue.
    pub fn with_sub_queue(mut self, capacity: usize, overflow: OverflowPolicy) -> DbOptions {
        self.sub_queue_capacity = capacity;
        self.sub_overflow = overflow;
        self
    }
}
