//! Database configuration.

use streamrel_cq::ConsistencyMode;
use streamrel_storage::SyncMode;
use streamrel_types::Interval;

use crate::subscription::{OverflowPolicy, DEFAULT_SUB_CAPACITY};

/// Tuning knobs for a [`crate::Db`]. The defaults are the paper's design
/// points; the alternatives exist for the ablation experiments.
#[derive(Debug, Clone, Copy)]
pub struct DbOptions {
    /// Pool compatible aggregate CQs into shared slice groups (§2.2
    /// "Jellybean processing"). Ablated by experiment E3.
    pub sharing: bool,
    /// Lower eligible unshared CQs to incremental view maintenance (delta
    /// processing instead of per-window re-evaluation). Sharing takes
    /// precedence where both apply. Ablated by the `ivm_bench` baseline.
    pub ivm: bool,
    /// Snapshot policy for table reads inside CQs (window consistency, §4).
    /// Ablated by experiment E8.
    pub consistency: ConsistencyMode,
    /// WAL durability for durable databases.
    pub sync: SyncMode,
    /// Out-of-order slack per stream (µs). 0 enforces strict CQTIME order;
    /// positive values insert a reorder buffer.
    pub slack: Interval,
    /// Max undelivered window results per subscription; a slow poller past
    /// this bound loses windows per `sub_overflow` instead of growing
    /// memory. The network server's backpressure rests on this.
    pub sub_queue_capacity: usize,
    /// Which window result to sacrifice when a subscription queue is full.
    pub sub_overflow: OverflowPolicy,
    /// Number of execution shards. `0` (the default) gives every base
    /// stream its own shard, so ingest on distinct streams never contends;
    /// `N > 0` fixes N shard domains and assigns streams round-robin
    /// (`with_shards(1)` is the single-lock ablation baseline).
    pub shards: usize,
    /// Worker threads for closed-window plan evaluation. `None` (the
    /// default) sizes from the host's parallelism; `Some(0)` evaluates
    /// inline on the ingesting thread (the serial ablation baseline).
    pub pool_workers: Option<usize>,
    /// Number of WAL commit domains (`wal-<k>.log` files with independent
    /// fsyncs, DESIGN.md §13). `0` (the default) derives a count from
    /// `shards` or the host's parallelism via
    /// [`DbOptions::resolved_wal_shards`]; `1` is the single-log
    /// ablation baseline (all shards funnel through one commit mutex).
    pub wal_shards: usize,
    /// Cross-CQ standing-state budget in bytes. `None` (the default)
    /// admits any plan the Level-1 check accepts; `Some(cap)` admits a
    /// CQ only if its conservative byte bound fits alongside the bounds
    /// of every CQ already running — plans whose state cannot be
    /// byte-bounded (arrival-rate-dependent windows) are rejected
    /// outright under a budget.
    pub state_budget_bytes: Option<u64>,
}

impl Default for DbOptions {
    fn default() -> DbOptions {
        DbOptions {
            sharing: true,
            ivm: true,
            consistency: ConsistencyMode::WindowBoundary,
            sync: SyncMode::Flush,
            slack: 0,
            sub_queue_capacity: DEFAULT_SUB_CAPACITY,
            sub_overflow: OverflowPolicy::DropOldest,
            shards: 0,
            pool_workers: None,
            wal_shards: 0,
            state_budget_bytes: None,
        }
    }
}

impl DbOptions {
    /// Disable CQ sharing (ablation baseline).
    pub fn without_sharing(mut self) -> DbOptions {
        self.sharing = false;
        self
    }

    /// Disable incremental view maintenance (ablation baseline: every
    /// window close re-evaluates the full plan).
    pub fn without_ivm(mut self) -> DbOptions {
        self.ivm = false;
        self
    }

    /// Set the out-of-order slack.
    pub fn with_slack(mut self, slack: Interval) -> DbOptions {
        self.slack = slack;
        self
    }

    /// Set the consistency mode.
    pub fn with_consistency(mut self, mode: ConsistencyMode) -> DbOptions {
        self.consistency = mode;
        self
    }

    /// Set the WAL sync mode.
    pub fn with_sync(mut self, sync: SyncMode) -> DbOptions {
        self.sync = sync;
        self
    }

    /// Bound each subscription's undelivered-results queue.
    pub fn with_sub_queue(mut self, capacity: usize, overflow: OverflowPolicy) -> DbOptions {
        self.sub_queue_capacity = capacity;
        self.sub_overflow = overflow;
        self
    }

    /// Fix the number of execution shards (`1` = the single-lock
    /// baseline; `0` = one shard per stream).
    pub fn with_shards(mut self, shards: usize) -> DbOptions {
        self.shards = shards;
        self
    }

    /// Fix the window-evaluation worker count (`0` = evaluate inline).
    pub fn with_pool_workers(mut self, workers: usize) -> DbOptions {
        self.pool_workers = Some(workers);
        self
    }

    /// Fix the number of WAL commit domains (`1` = the single-log
    /// baseline; `0` = derive from `shards` / host parallelism).
    pub fn with_wal_shards(mut self, wal_shards: usize) -> DbOptions {
        self.wal_shards = wal_shards;
        self
    }

    /// Cap the summed standing-state bound of all running CQs at
    /// `bytes` (see [`DbOptions::state_budget_bytes`]).
    pub fn with_state_budget(mut self, bytes: u64) -> DbOptions {
        self.state_budget_bytes = Some(bytes);
        self
    }

    /// The effective commit-domain count: the configured count, or the
    /// execution-shard count when fixed, or the host's parallelism —
    /// capped at 8 (per-log fsyncs stop paying for themselves well
    /// before the file-descriptor cost does).
    pub fn resolved_wal_shards(&self) -> usize {
        if self.wal_shards > 0 {
            return self.wal_shards;
        }
        if self.shards > 0 {
            return self.shards.min(8);
        }
        std::thread::available_parallelism()
            .map(|n| n.get().clamp(1, 8))
            .unwrap_or(1)
    }

    /// The effective worker-pool size: the configured count, or a small
    /// host-derived default (never more than 4 — window evaluation shares
    /// the box with ingest threads).
    pub fn resolved_pool_workers(&self) -> usize {
        match self.pool_workers {
            Some(n) => n,
            None => std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1).clamp(1, 4))
                .unwrap_or(1),
        }
    }
}
