//! SchemaProvider over the database catalog: resolves names to tables
//! (storage engine), base streams, derived streams and views.

use std::collections::HashMap;
use std::sync::Arc;

use streamrel_sql::analyzer::{RelKind, SchemaProvider};
use streamrel_sql::plan::SchemaRef;
use streamrel_storage::StorageEngine;

/// Stream metadata the provider needs.
#[derive(Debug, Clone)]
pub struct StreamDecl {
    pub schema: SchemaRef,
    pub cqtime: Option<usize>,
}

/// Snapshot of the name space used during one analysis.
pub struct CatalogProvider<'a> {
    pub engine: &'a Arc<StorageEngine>,
    pub streams: &'a HashMap<String, StreamDecl>,
    pub deriveds: &'a HashMap<String, StreamDecl>,
    pub views: &'a HashMap<String, String>,
}

impl SchemaProvider for CatalogProvider<'_> {
    fn relation(&self, name: &str) -> Option<(SchemaRef, RelKind)> {
        // Engine-provided virtual relations (`streamrel_metrics`,
        // `streamrel_trace`) resolve as ordinary tables; the scan layer
        // serves them from the metrics registry. The `streamrel_` prefix
        // is reserved, so user objects can never shadow them.
        if let Some(schema) = streamrel_obs::virtual_schema(name) {
            return Some((Arc::new(schema), RelKind::Table));
        }
        let key = name.to_ascii_lowercase();
        if let Some(s) = self.streams.get(&key) {
            return Some((s.schema.clone(), RelKind::Stream { cqtime: s.cqtime }));
        }
        if let Some(d) = self.deriveds.get(&key) {
            return Some((
                d.schema.clone(),
                RelKind::DerivedStream { cqtime: d.cqtime },
            ));
        }
        if let Some(sql) = self.views.get(&key) {
            return Some((
                Arc::new(streamrel_types::Schema::empty()),
                RelKind::View { sql: sql.clone() },
            ));
        }
        if let Ok(schema) = self.engine.table_schema(name) {
            return Some((schema, RelKind::Table));
        }
        None
    }
}
