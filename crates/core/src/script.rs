//! SQL script utilities shared by every front end (the interactive shell,
//! the network server, `\i` script loading).

/// Split a script on top-level semicolons, respecting single-quoted
/// strings **including SQL's doubled-quote escape** (`'it''s'` is one
/// string literal, not two). Pieces that are empty after trimming are
/// discarded; the engine re-parses each returned piece.
pub fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // Consume the whole string literal, handling '' escapes:
                // a quote immediately followed by another quote is an
                // escaped quote *inside* the literal, not a terminator.
                cur.push(c);
                loop {
                    match chars.next() {
                        Some('\'') => {
                            cur.push('\'');
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                cur.push('\'');
                            } else {
                                break; // closing quote
                            }
                        }
                        Some(inner) => cur.push(inner),
                        None => break, // unterminated literal: keep as-is
                    }
                }
            }
            ';' => {
                if !cur.trim().is_empty() {
                    out.push(cur.clone());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_plain_statements() {
        let got = split_statements("create table t (a integer); insert into t values (1);");
        assert_eq!(got.len(), 2);
        assert!(got[0].starts_with("create table"));
        assert!(got[1].trim().starts_with("insert"));
    }

    #[test]
    fn semicolon_inside_string_does_not_split() {
        let got = split_statements("insert into t values ('a;b'); select 1");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], "insert into t values ('a;b')");
    }

    #[test]
    fn doubled_quote_escape_is_one_literal() {
        // The old implementation flipped in-string state on every quote,
        // so the '' in "it''s" ended the string and the ; after "done"
        // was treated as quoted — merging the two statements.
        let got = split_statements("insert into t values ('it''s done'); select 1");
        assert_eq!(got.len(), 2, "got {got:?}");
        assert_eq!(got[0], "insert into t values ('it''s done')");
        assert_eq!(got[1].trim(), "select 1");
    }

    #[test]
    fn escaped_quote_then_semicolon_in_string() {
        let got = split_statements("select 'a''; drop table t; --'");
        assert_eq!(got.len(), 1, "the whole thing is one statement: {got:?}");
    }

    #[test]
    fn trailing_statement_without_semicolon_kept() {
        let got = split_statements("select 1; select 2");
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn empty_and_whitespace_pieces_dropped() {
        assert!(split_statements(" ;;  ; ").is_empty());
    }

    #[test]
    fn unterminated_literal_does_not_loop_or_panic() {
        let got = split_statements("select 'oops; select 2");
        assert_eq!(got.len(), 1);
    }
}
