//! The stream-relational database object.
//!
//! Execution is sharded: catalog/DDL state lives behind one lock, while
//! each base stream's runtime (reorder buffer, CQ runtimes, channel
//! sinks) lives in its own [`Shard`] so ingest and heartbeat on distinct
//! streams never contend. Closed-window plan evaluation runs on a small
//! worker pool; results are re-sequenced into submission order — (CQ,
//! close) — so subscription output is byte-identical to serial execution.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};

use streamrel_check::{check_plan, CheckContext, StateBudget};
use streamrel_cq::recovery::{load_watermark, save_watermark_txn};
use streamrel_cq::{
    ContinuousQuery, CqOutput, CqStats, ReorderBuffer, SharedRegistry, WindowTask, WorkerPool,
};
use streamrel_exec::{execute, ExecContext, ExecMetrics};
use streamrel_obs::{Counter, Gauge};
use streamrel_sql::analyzer::Analyzer;
use streamrel_sql::ast::{ChannelMode, ColumnDef, Expr, ObjectKind, Query, ShowKind, Statement};
use streamrel_sql::parser::{parse_statement, parse_statements};
use streamrel_sql::plan::{BoundExpr, LogicalPlan};
use streamrel_storage::{Io, StdIo, StorageEngine};
use streamrel_types::{Column, Error, Relation, Result, Row, Schema, Timestamp, Value};

use crate::options::DbOptions;
use crate::provider::{CatalogProvider, StreamDecl};
use crate::shard::{ChannelSink, CqEntry, DerivedRuntime, Shard, ShardState, Sink, StreamRuntime};
use crate::subscription::{ResultNotifier, Subscription, SubscriptionId};

/// Result of [`Db::execute`].
#[derive(Debug)]
pub enum ExecResult {
    /// DDL succeeded; the created object's name.
    Created(String),
    /// DROP succeeded (or IF EXISTS found nothing).
    Dropped(String),
    /// Rows inserted (tables) or ingested (streams).
    Inserted(u64),
    /// Rows deleted.
    Deleted(u64),
    /// Table truncated.
    Truncated(String),
    /// Snapshot query result.
    Rows(Relation),
    /// Continuous query registered; poll with [`Db::poll`].
    Subscribed(SubscriptionId),
}

impl ExecResult {
    /// Unwrap a snapshot result (panics otherwise) — test/example sugar.
    pub fn rows(self) -> Relation {
        match self {
            ExecResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// Unwrap a subscription id (panics otherwise).
    pub fn subscription(self) -> SubscriptionId {
        match self {
            ExecResult::Subscribed(s) => s,
            other => panic!("expected subscription, got {other:?}"),
        }
    }
}

/// Aggregate runtime counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbStats {
    /// Tuples ingested across all streams.
    pub tuples_in: u64,
    /// Window results produced across all CQs.
    pub windows_out: u64,
    /// Rows archived into Active Tables by channels.
    pub rows_archived: u64,
    /// Tuples dropped as too late (outside slack).
    pub late_drops: u64,
    /// Window results dropped because a subscription queue overflowed.
    pub sub_drops: u64,
    /// Currently registered client subscriptions.
    pub live_subs: u64,
    /// Window results currently queued across all subscriptions.
    pub sub_queued: u64,
}

/// A base stream's catalog entry: its declaration plus which shard owns
/// its runtime.
struct CatStream {
    decl: StreamDecl,
    shard: usize,
}

/// A derived stream's catalog entry. The derived stream lives in the same
/// shard as the base stream its CQ DAG is rooted at, so `pump` never
/// crosses shards.
struct CatDerived {
    decl: StreamDecl,
    shard: usize,
    cq_id: u64,
}

/// A channel's definition. `rows_written` is shared with the
/// [`ChannelSink`] mirrored into the producing shard, so `SHOW CHANNELS`
/// reads it without any shard lock.
struct ChannelDef {
    table: String,
    mode: ChannelMode,
    rows_written: Arc<AtomicU64>,
}

// lock-order: catalog < state < g < subs
//
// The `Db::catalog` mutex (DDL state) is acquired before any shard's
// `state` lock; shard state precedes shared-group mutexes (`g`, via
// `SharedRegistry`), which precede the client `subs` table. A group lock
// is never held while acquiring shard state (the registry releases each
// group guard before returning). streamrel-lint checks every function in
// this file against this order.

/// Catalog and DDL state: everything that is *not* on the per-tuple hot
/// path. Stream/derived declarations, views, channel definitions, the
/// slice-sharing registry, and the shard map itself.
struct Catalog {
    streams: HashMap<String, CatStream>,
    deriveds: HashMap<String, CatDerived>,
    views: HashMap<String, String>,
    channels: HashMap<String, ChannelDef>,
    registry: SharedRegistry,
    /// The execution shards. Streams are assigned at CREATE time and
    /// never migrate; a dropped stream's shard slot stays (slots are
    /// cheap and ids must stay stable).
    shards: Vec<Arc<Shard>>,
    /// Which shard hosts each client subscription's CQs.
    sub_shard: HashMap<SubscriptionId, usize>,
    /// Which CQ each client subscription is a member of. Primaries and
    /// attached members ([`Db::subscribe_attach`]) map to the same CQ id.
    sub_cq: HashMap<SubscriptionId, u64>,
    /// Streams created so far (drives round-robin shard assignment).
    stream_seq: usize,
    next_cq: u64,
    next_sub: u64,
    ddl_seq: u64,
    /// Summed conservative state bounds of the running CQs, charged
    /// against `DbOptions::state_budget_bytes` at admission and released
    /// on teardown. Maintained even without a budget (it is cheap and
    /// the ledger must be warm if a budget is ever configured).
    admitted_state_bytes: u64,
    /// Per-CQ share of `admitted_state_bytes`, keyed by CQ id, so
    /// teardown releases exactly what admission charged.
    cq_state_bytes: HashMap<u64, u64>,
}

/// Cached handles into the engine's metrics registry. Held as `Arc`s so
/// the ingest/pump hot paths never touch the registry lock.
struct DbMetrics {
    tuples_in: Arc<Counter>,
    windows_out: Arc<Counter>,
    rows_archived: Arc<Counter>,
    late_drops: Arc<Counter>,
    sub_drops: Arc<Counter>,
    sub_queue_depth: Arc<Gauge>,
    /// Ingest/heartbeat calls that found their shard lock already held.
    shard_contention: Arc<Counter>,
    /// Plans refused by the Level-1 admission check.
    check_rejected: Arc<Counter>,
    /// Subset of rejections caused by the cross-CQ state budget.
    check_budget_rejected: Arc<Counter>,
    /// Warnings attached to admitted plans.
    check_warned: Arc<Counter>,
    /// Admitted continuous plans the check classified as IVM-lowerable.
    check_ivm_lowered: Arc<Counter>,
    /// Admitted continuous plans that fall back to re-evaluation.
    check_ivm_fallback: Arc<Counter>,
    exec: ExecMetrics,
}

impl DbMetrics {
    fn register(registry: &streamrel_obs::Registry) -> DbMetrics {
        DbMetrics {
            tuples_in: registry.counter("db.tuples_in"),
            windows_out: registry.counter("db.windows_out"),
            rows_archived: registry.counter("db.rows_archived"),
            late_drops: registry.counter("db.late_drops"),
            sub_drops: registry.counter("db.sub_drops"),
            sub_queue_depth: registry.gauge("db.sub_queue_depth"),
            shard_contention: registry.counter("db.shard.contention"),
            check_rejected: registry.counter("check.rejected"),
            check_budget_rejected: registry.counter("check.budget_rejected"),
            check_warned: registry.counter("check.warned"),
            check_ivm_lowered: registry.counter("check.ivm_lowered"),
            check_ivm_fallback: registry.counter("check.ivm_fallback"),
            exec: ExecMetrics::register(registry),
        }
    }
}

/// The stream-relational database: one SQL entry point over tables,
/// streams and their combinations (§2.3).
pub struct Db {
    engine: Arc<StorageEngine>,
    options: DbOptions,
    catalog: Mutex<Catalog>,
    /// Client subscription queues, behind their own lock so shards
    /// deliver results without serializing on the catalog.
    subs: Mutex<HashMap<SubscriptionId, Subscription>>,
    pool: WorkerPool,
    notify: Arc<ResultNotifier>,
    metrics: DbMetrics,
}

impl Db {
    /// Purely in-memory database (no WAL); for tests and baselines.
    pub fn in_memory(options: DbOptions) -> Db {
        Db::with_engine(Arc::new(StorageEngine::in_memory()), options)
    }

    /// Open (or create) a durable database at `dir`. Recovers durable
    /// state via the WAL, then replays persisted DDL to rebuild streams,
    /// views, derived streams and channels, then restores each derived
    /// CQ's position from its Active-Table watermark (§4 recovery).
    pub fn open(dir: impl AsRef<Path>, options: DbOptions) -> Result<Db> {
        let engine = Arc::new(StorageEngine::open_with_opts(
            dir.as_ref(),
            options.sync,
            StdIo::shared(),
            options.resolved_wal_shards(),
        )?);
        let db = Db::with_engine(engine, options);
        db.replay_ddl()?;
        db.restore_watermarks()?;
        Ok(db)
    }

    /// [`Db::open`] over an explicit storage [`Io`] implementation — the
    /// seam the crash-recovery torture harness uses to run the full SQL /
    /// CQ stack against a simulated fault-injecting disk (DESIGN.md §10).
    pub fn open_with_io(dir: impl AsRef<Path>, options: DbOptions, io: Arc<dyn Io>) -> Result<Db> {
        let engine = Arc::new(StorageEngine::open_with_opts(
            dir.as_ref(),
            options.sync,
            io,
            options.resolved_wal_shards(),
        )?);
        let db = Db::with_engine(engine, options);
        db.replay_ddl()?;
        db.restore_watermarks()?;
        Ok(db)
    }

    fn with_engine(engine: Arc<StorageEngine>, options: DbOptions) -> Db {
        // Arm the runtime lock witness with the merged global acquisition
        // order produced by `streamrel-lint --update-lock-graph`. Installing
        // the same table twice is a no-op, so repeated Db construction is
        // fine; validation itself stays off unless the `lock_witness`
        // feature (or `witness::enable()`) turns it on.
        parking_lot::witness::install_order(streamrel_check::lock_graph_gen::LOCK_MUST_PRECEDE);
        let metrics = DbMetrics::register(engine.metrics());
        let pool = WorkerPool::new(options.resolved_pool_workers(), engine.metrics());
        Db {
            catalog: Mutex::named(
                "core.catalog",
                Catalog {
                    streams: HashMap::new(),
                    deriveds: HashMap::new(),
                    views: HashMap::new(),
                    channels: HashMap::new(),
                    registry: SharedRegistry::new(),
                    shards: Vec::new(),
                    sub_shard: HashMap::new(),
                    sub_cq: HashMap::new(),
                    stream_seq: 0,
                    next_cq: 1,
                    next_sub: 1,
                    ddl_seq: 1,
                    admitted_state_bytes: 0,
                    cq_state_bytes: HashMap::new(),
                },
            ),
            subs: Mutex::named("core.subs", HashMap::new()),
            pool,
            notify: ResultNotifier::new(),
            metrics,
            engine,
            options,
        }
    }

    /// The underlying storage engine (checkpointing, stats, direct scans).
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    /// Aggregate runtime counters. Totals come from the metrics registry
    /// (shards bump them without any shared `Db` lock); queue figures
    /// come from the live subscription table.
    pub fn stats(&self) -> DbStats {
        let subs = self.subs.lock();
        DbStats {
            tuples_in: self.metrics.tuples_in.get(),
            windows_out: self.metrics.windows_out.get(),
            rows_archived: self.metrics.rows_archived.get(),
            late_drops: self.metrics.late_drops.get(),
            sub_drops: self.metrics.sub_drops.get(),
            live_subs: subs.len() as u64,
            sub_queued: subs.values().map(|s| s.pending() as u64).sum(),
        }
    }

    /// Snapshot of the `streamrel_metrics` virtual relation — the same
    /// relation `SELECT * FROM streamrel_metrics`, `SHOW METRICS` and the
    /// wire protocol's `Stats` frame all serve.
    pub fn metrics_relation(&self) -> Relation {
        self.engine.metrics().to_relation()
    }

    /// Snapshot of the `streamrel_trace` virtual relation (the trace ring).
    pub fn trace_relation(&self) -> Relation {
        self.engine.metrics().trace().to_relation()
    }

    /// Wakes whenever a client subscription receives a window result.
    /// Blocking consumers (the network server's delivery threads) wait on
    /// this instead of polling.
    pub fn notifier(&self) -> Arc<ResultNotifier> {
        self.notify.clone()
    }

    /// Schema of a base stream, if `name` is one.
    pub fn stream_schema(&self, name: &str) -> Option<streamrel_sql::plan::SchemaRef> {
        self.catalog
            .lock()
            .streams
            .get(&name.to_ascii_lowercase())
            .map(|s| s.decl.schema.clone())
    }

    /// Per-CQ counters for the CQ backing derived stream `name`.
    pub fn derived_cq_stats(&self, name: &str) -> Option<CqStats> {
        let (shard, cq_id) = {
            let catalog = self.catalog.lock();
            let d = catalog.deriveds.get(&name.to_ascii_lowercase())?;
            (shard_at(&catalog, d.shard).ok()?, d.cq_id)
        };
        let state = shard.state.lock();
        state.cqs.get(&cq_id).map(|e| e.cq.stats())
    }

    // ---- SQL entry points ---------------------------------------------------

    /// Execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<ExecResult> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(stmt, sql, true)
    }

    /// Execute a semicolon-separated script, returning the last result.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<ExecResult>> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            // Re-render is lossy; persist the original only for
            // single-statement DDL (scripts re-persist per statement by
            // rendering). For simplicity persist the whole source per DDL
            // statement is wrong, so scripts re-parse from stored text —
            // store the statement's own text via Debug-free rendering is
            // unavailable; instead persist the original sql only when the
            // script has exactly one statement.
            out.push(self.execute_stmt(stmt, sql, false)?);
        }
        Ok(out)
    }

    /// Drain pending window results for a subscription.
    ///
    /// Results are stored shared ([`Arc<CqOutput>`] — one allocation per
    /// closed window no matter how many subscriptions receive it); this
    /// convenience form unwraps the sole reference (free for the common
    /// single-subscriber case) or clones when other members still hold
    /// the window. Fan-out consumers that only need read access should
    /// use [`Db::poll_shared`] and skip the clone entirely.
    pub fn poll(&self, sub: SubscriptionId) -> Result<Vec<CqOutput>> {
        Ok(self
            .poll_shared(sub)?
            .into_iter()
            .map(|a| Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()))
            .collect())
    }

    /// Drain pending window results without copying the underlying
    /// windows: each result is the same reference-counted allocation the
    /// engine enqueued (and, under fan-out, the same one every other
    /// member of the CQ receives).
    pub fn poll_shared(&self, sub: SubscriptionId) -> Result<Vec<Arc<CqOutput>>> {
        let mut subs = self.subs.lock();
        subs.get_mut(&sub)
            .map(Subscription::drain)
            .ok_or_else(|| Error::stream(format!("unknown subscription {sub:?}")))
    }

    /// Drain many subscriptions under **one** queue-table acquisition.
    /// The i-th result corresponds to `ids[i]`; unknown (departed)
    /// subscriptions yield an empty vec rather than an error.
    ///
    /// Atomicity is the point, not convenience: the engine offers a
    /// closed window to every member of a fan-out group under a single
    /// lock acquisition, so a caller that also drains under a single
    /// acquisition observes each window on *all* of its subscriptions or
    /// on none — never a partial cut. The network reactor relies on this
    /// to encode each window exactly once per delivery sweep.
    pub fn poll_shared_many(&self, ids: &[SubscriptionId]) -> Vec<Vec<Arc<CqOutput>>> {
        let mut subs = self.subs.lock();
        ids.iter()
            .map(|id| {
                subs.get_mut(id)
                    .map(Subscription::drain)
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Push one tuple into a base stream (programmatic fast path; the SQL
    /// path is `INSERT INTO <stream> VALUES ...`).
    pub fn ingest(&self, stream: &str, row: Row) -> Result<()> {
        self.ingest_batch(stream, vec![row])
    }

    /// Push many tuples (one archiving transaction for raw channels).
    /// Only the owning shard's lock is held: concurrent ingest into
    /// other streams proceeds in parallel.
    pub fn ingest_batch(&self, stream: &str, rows: Vec<Row>) -> Result<()> {
        // One timestamp per ingest event; every window this batch closes
        // measures its latency from here (arrival → result enqueued).
        let start = Instant::now();
        let key = stream.to_ascii_lowercase();
        let shard = self.shard_of_stream(&key, stream)?;
        let mut state = self.lock_shard(&shard);
        self.ingest_sharded(&mut state, &key, rows, start)
    }

    /// Advance a stream's event time without data: closes due windows of
    /// every CQ over the stream (punctuation / heartbeat).
    ///
    /// If a CQ's window evaluation fails, results already produced by
    /// earlier CQs (and earlier windows of the failing CQ) are still
    /// delivered before the error is returned — an error in one plan
    /// never silently discards another CQ's output.
    pub fn heartbeat(&self, stream: &str, ts: Timestamp) -> Result<()> {
        let start = Instant::now();
        let key = stream.to_ascii_lowercase();
        let shard = self.shard_of_stream(&key, stream)?;
        let mut state = self.lock_shard(&shard);
        let cq_ids = state
            .streams
            .get(&key)
            .ok_or_else(|| Error::stream(format!("unknown stream `{stream}`")))?
            .cq_ids
            .clone();
        let mut staged: Vec<(u64, Vec<WindowTask>)> = Vec::new();
        let mut stage_err: Option<Error> = None;
        for id in cq_ids {
            let entry = state
                .cqs
                .get_mut(&id)
                .ok_or_else(|| Error::stream(format!("cq {id} not registered")))?;
            match entry.cq.stage_heartbeat(ts) {
                Ok(tasks) => staged.push((id, tasks)),
                Err(e) => {
                    stage_err = Some(e);
                    break;
                }
            }
        }
        self.eval_and_pump(&mut state, staged, stage_err, start)
    }

    // ---- statement dispatch -------------------------------------------------

    fn execute_stmt(&self, stmt: Statement, sql: &str, persistable: bool) -> Result<ExecResult> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                check_reserved(&name)?;
                if if_not_exists && self.engine.has_table(&name) {
                    return Ok(ExecResult::Created(name));
                }
                let schema = column_defs_to_schema(&columns)?;
                self.engine.create_table(&name, schema)?;
                Ok(ExecResult::Created(name))
            }
            Statement::CreateStream {
                name,
                columns,
                if_not_exists,
            } => self.create_stream(&name, &columns, if_not_exists, sql, persistable),
            Statement::CreateDerivedStream { name, query } => {
                self.create_derived(&name, &query, sql, persistable)
            }
            Statement::CreateView { name, query } => {
                self.create_view(&name, &query, sql, persistable)
            }
            Statement::CreateChannel {
                name,
                from_stream,
                into_table,
                mode,
            } => self.create_channel(&name, &from_stream, &into_table, mode, sql, persistable),
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => {
                self.engine.create_index(&name, &table, &columns)?;
                Ok(ExecResult::Created(name))
            }
            Statement::Drop {
                kind,
                name,
                if_exists,
            } => self.drop_object(kind, &name, if_exists),
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.insert(&table, columns.as_deref(), &rows),
            Statement::Delete { table, filter } => self.delete(&table, filter.as_ref()),
            Statement::Truncate { table } => {
                let id = self.engine.table_id(&table)?;
                self.engine.truncate(id)?;
                Ok(ExecResult::Truncated(table))
            }
            Statement::Select(query) => self.select(&query),
            Statement::CreateTableAs { name, query } => self.create_table_as(&name, &query),
            Statement::Explain(query) => self.explain(&query),
            Statement::ExplainCheck(query) => self.explain_check(&query),
            Statement::Show(kind) => Ok(ExecResult::Rows(self.show(kind))),
            Statement::Checkpoint => {
                self.engine.checkpoint()?;
                Ok(ExecResult::Created("checkpoint".into()))
            }
            Statement::Vacuum => {
                let n = self.engine.vacuum();
                Ok(ExecResult::Deleted(n as u64))
            }
        }
    }

    /// `CREATE TABLE name AS <snapshot query>`.
    fn create_table_as(&self, name: &str, query: &Query) -> Result<ExecResult> {
        let analyzed = {
            let catalog = self.catalog.lock();
            self.check_name_free(&catalog, &name.to_ascii_lowercase())?;
            let provider = self.provider(&catalog);
            Analyzer::new(&provider).analyze(query)?
        };
        if analyzed.is_continuous {
            return Err(Error::analysis(
                "CREATE TABLE AS requires a snapshot query                  (use CREATE STREAM ... AS + a channel for continuous results)",
            ));
        }
        let source = streamrel_cq::SnapshotSource::pin(self.engine.clone());
        let rel = execute(&analyzed.plan, &ExecContext::snapshot(&source))?;
        // Result columns may repeat names; disambiguate for the table.
        let mut cols: Vec<Column> = Vec::with_capacity(rel.schema().len());
        for c in rel.schema().columns() {
            let mut name = c.name.clone();
            let mut k = 1;
            while cols
                .iter()
                .any(|p: &Column| p.name.eq_ignore_ascii_case(&name))
            {
                k += 1;
                name = format!("{}_{k}", c.name);
            }
            cols.push(Column {
                name,
                ty: c.ty,
                nullable: true,
            });
        }
        let id = self.engine.create_table(name, Schema::new(cols)?)?;
        self.engine
            .with_txn(|x| self.engine.insert_many(x, id, rel.into_rows()))?;
        Ok(ExecResult::Created(name.to_string()))
    }

    /// `EXPLAIN <select>`: the bound plan, one node per row, plus the
    /// SQ/CQ classification of §3.1.
    fn explain(&self, query: &Query) -> Result<ExecResult> {
        let analyzed = {
            let catalog = self.catalog.lock();
            let provider = self.provider(&catalog);
            Analyzer::new(&provider).analyze(query)?
        };
        let schema = Arc::new(Schema::new_unchecked(vec![Column::new(
            "plan",
            streamrel_types::DataType::Text,
        )]));
        let mut rel = Relation::empty(schema);
        let kind = if analyzed.is_continuous {
            "Continuous Query (CQ): runs once per window"
        } else {
            "Snapshot Query (SQ): runs once over current state"
        };
        rel.push(vec![Value::text(kind)]);
        for line in analyzed.plan.explain().lines() {
            rel.push(vec![Value::text(line)]);
        }
        Ok(ExecResult::Rows(rel))
    }

    /// `EXPLAIN CHECK <select>`: the Level-1 static-safety report — the
    /// SQ/CQ classification, the admission verdict, every rule finding
    /// with its fix hint, and the conservative state-size bound — without
    /// registering anything.
    fn explain_check(&self, query: &Query) -> Result<ExecResult> {
        let report = {
            let catalog = self.catalog.lock();
            let provider = self.provider(&catalog);
            let analyzed = Analyzer::new(&provider).analyze(query)?;
            check_plan(
                &analyzed.plan,
                &CheckContext {
                    sharing: self.options.sharing,
                    ivm: self.options.ivm,
                    registry: Some(&catalog.registry),
                    budget: self.budget_context(&catalog),
                },
            )
        };
        Ok(ExecResult::Rows(report.to_relation()))
    }

    /// The live cross-CQ budget snapshot for one admission decision,
    /// when `DbOptions::state_budget_bytes` is configured.
    fn budget_context(&self, catalog: &Catalog) -> Option<StateBudget> {
        self.options
            .state_budget_bytes
            .map(|limit_bytes| StateBudget {
                limit_bytes,
                admitted_bytes: catalog.admitted_state_bytes,
            })
    }

    /// The Level-1 admission gate: every continuous plan is statically
    /// classified by `streamrel-check` *before* any runtime state (window
    /// buffers, subscriptions, shared-group membership) is allocated.
    /// Rejections surface as [`Error::Check`] with a fix hint; warnings
    /// only bump the `check.warned` counter.
    /// Returns the byte share to charge against the state-budget ledger
    /// for this CQ (its conservative bound, or 0 when unboundable —
    /// which only admits when no budget is configured).
    fn admit_plan(&self, catalog: &Catalog, plan: &LogicalPlan) -> Result<u64> {
        let report = check_plan(
            plan,
            &CheckContext {
                sharing: self.options.sharing,
                ivm: self.options.ivm,
                registry: Some(&catalog.registry),
                budget: self.budget_context(catalog),
            },
        );
        if let Some(err) = report.to_error() {
            if report.rejection().map(|f| f.rule) == Some("state-budget") {
                self.metrics.check_budget_rejected.inc();
            }
            self.metrics.check_rejected.inc();
            return Err(err);
        }
        self.metrics.check_warned.add(report.warnings() as u64);
        match report.path {
            "ivm" => self.metrics.check_ivm_lowered.inc(),
            "reeval" => self.metrics.check_ivm_fallback.inc(),
            _ => {}
        }
        Ok(report.state_bound_bytes.unwrap_or(0))
    }

    /// Charge an admitted CQ's state share to the budget ledger.
    fn charge_state(catalog: &mut Catalog, cq_id: u64, bytes: u64) {
        catalog.admitted_state_bytes += bytes;
        catalog.cq_state_bytes.insert(cq_id, bytes);
    }

    /// Release a torn-down CQ's state share back to the budget ledger.
    fn release_state(catalog: &mut Catalog, cq_id: u64) {
        if let Some(bytes) = catalog.cq_state_bytes.remove(&cq_id) {
            catalog.admitted_state_bytes = catalog.admitted_state_bytes.saturating_sub(bytes);
        }
    }

    /// Release several torn-down CQs' budget shares. Callers must hold
    /// no shard state lock: this takes the catalog, and the declared
    /// order is catalog < state.
    fn release_removed(&self, removed: Vec<u64>) {
        let mut catalog = self.catalog.lock();
        for id in removed {
            Self::release_state(&mut catalog, id);
        }
    }

    /// `SHOW TABLES|STREAMS|VIEWS|CHANNELS|METRICS|TRACE`.
    fn show(&self, kind: ShowKind) -> Relation {
        match kind {
            ShowKind::Metrics => return self.metrics_relation(),
            ShowKind::Trace => return self.trace_relation(),
            _ => {}
        }
        let catalog = self.catalog.lock();
        let schema = |cols: &[&str]| {
            Arc::new(Schema::new_unchecked(
                cols.iter()
                    .map(|c| Column::new(*c, streamrel_types::DataType::Text))
                    .collect(),
            ))
        };
        match kind {
            ShowKind::Tables => {
                let mut rel = Relation::empty(schema(&["table", "columns"]));
                for name in self.engine.table_names() {
                    let cols = self
                        .engine
                        .table_schema(&name)
                        .map(|s| s.to_string())
                        .unwrap_or_default();
                    rel.push(vec![Value::text(&name), Value::text(cols)]);
                }
                rel
            }
            ShowKind::Streams => {
                let mut rel = Relation::empty(schema(&["stream", "kind", "columns"]));
                let mut names: Vec<_> = catalog.streams.keys().cloned().collect();
                names.sort();
                for name in names {
                    let s = &catalog.streams[&name];
                    rel.push(vec![
                        Value::text(&name),
                        Value::text("base"),
                        Value::text(s.decl.schema.to_string()),
                    ]);
                }
                let mut names: Vec<_> = catalog.deriveds.keys().cloned().collect();
                names.sort();
                for name in names {
                    let d = &catalog.deriveds[&name];
                    rel.push(vec![
                        Value::text(&name),
                        Value::text("derived"),
                        Value::text(d.decl.schema.to_string()),
                    ]);
                }
                rel
            }
            ShowKind::Views => {
                let mut rel = Relation::empty(schema(&["view", "definition"]));
                let mut names: Vec<_> = catalog.views.keys().cloned().collect();
                names.sort();
                for name in names {
                    rel.push(vec![Value::text(&name), Value::text(&catalog.views[&name])]);
                }
                rel
            }
            ShowKind::Channels => {
                let mut rel =
                    Relation::empty(schema(&["channel", "into_table", "mode", "rows_written"]));
                let mut names: Vec<_> = catalog.channels.keys().cloned().collect();
                names.sort();
                for name in names {
                    let c = &catalog.channels[&name];
                    rel.push(vec![
                        Value::text(&name),
                        Value::text(&c.table),
                        Value::text(match c.mode {
                            ChannelMode::Append => "APPEND",
                            ChannelMode::Replace => "REPLACE",
                        }),
                        Value::text(c.rows_written.load(Ordering::SeqCst).to_string()),
                    ]);
                }
                rel
            }
            ShowKind::Metrics | ShowKind::Trace => unreachable!("handled above"),
        }
    }

    fn create_stream(
        &self,
        name: &str,
        columns: &[ColumnDef],
        if_not_exists: bool,
        sql: &str,
        persist: bool,
    ) -> Result<ExecResult> {
        let mut catalog = self.catalog.lock();
        let key = name.to_ascii_lowercase();
        if catalog.streams.contains_key(&key) {
            if if_not_exists {
                return Ok(ExecResult::Created(name.to_string()));
            }
            return Err(Error::catalog(format!("stream `{name}` already exists")));
        }
        self.check_name_free(&catalog, &key)?;
        let schema = column_defs_to_schema(columns)?;
        let cqtime = columns.iter().position(|c| c.cqtime_user);
        if let Some(i) = cqtime {
            if columns[i].ty != streamrel_types::DataType::Timestamp {
                return Err(Error::analysis("CQTIME column must be a timestamp"));
            }
        }
        let decl = StreamDecl {
            schema: Arc::new(schema),
            cqtime,
        };
        let reorder = match (self.options.slack, cqtime) {
            (s, Some(c)) if s > 0 => Some(ReorderBuffer::new(c, s)),
            _ => None,
        };
        let shard_idx = self.assign_shard(&mut catalog);
        catalog.streams.insert(
            key.clone(),
            CatStream {
                decl: decl.clone(),
                shard: shard_idx,
            },
        );
        let shard = shard_at(&catalog, shard_idx)?;
        shard.state.lock().streams.insert(
            key.clone(),
            StreamRuntime {
                decl,
                reorder,
                cq_ids: Vec::new(),
                raw_channels: Vec::new(),
                groups: Vec::new(),
            },
        );
        if persist {
            self.persist_ddl(&mut catalog, "stream", &key, sql)?;
        }
        Ok(ExecResult::Created(name.to_string()))
    }

    fn create_view(
        &self,
        name: &str,
        _query: &Query,
        sql: &str,
        persist: bool,
    ) -> Result<ExecResult> {
        let mut catalog = self.catalog.lock();
        let key = name.to_ascii_lowercase();
        self.check_name_free(&catalog, &key)?;
        // Validate by analyzing now (errors surface at CREATE time).
        {
            let provider = self.provider(&catalog);
            let Statement::CreateView { query, .. } = parse_statement(sql)? else {
                return Err(Error::analysis("stored view text is not CREATE VIEW"));
            };
            Analyzer::new(&provider).analyze(&query)?;
        }
        catalog.views.insert(key.clone(), sql.to_string());
        if persist {
            self.persist_ddl(&mut catalog, "view", &key, sql)?;
        }
        Ok(ExecResult::Created(name.to_string()))
    }

    fn create_derived(
        &self,
        name: &str,
        query: &Query,
        sql: &str,
        persist: bool,
    ) -> Result<ExecResult> {
        let mut catalog = self.catalog.lock();
        let key = name.to_ascii_lowercase();
        self.check_name_free(&catalog, &key)?;
        let analyzed = {
            let provider = self.provider(&catalog);
            Analyzer::new(&provider).analyze(query)?
        };
        if !analyzed.is_continuous {
            return Err(Error::analysis(
                "CREATE STREAM ... AS requires a continuous query \
                 (use CREATE VIEW or CREATE TABLE AS for snapshot queries)",
            ));
        }
        let state_bytes = self.admit_plan(&catalog, &analyzed.plan)?;
        let mut cq = ContinuousQuery::new(
            key.clone(),
            &analyzed,
            self.engine.clone(),
            self.options.consistency,
        )?;
        // Slice sharing applies to base-stream aggregates only: derived
        // streams deliver whole result batches, not tuples.
        let upstream = cq.stream().to_ascii_lowercase();
        let upstream_is_base = catalog.streams.contains_key(&upstream);
        if self.options.sharing && upstream_is_base {
            cq.try_share(&mut catalog.registry);
        }
        // Sharing won, or the shape didn't share: try delta processing
        // next. A shared CQ already folds each tuple once per group.
        if self.options.ivm && upstream_is_base && !cq.is_shared() {
            cq.try_lower_ivm();
        }
        let out_schema = analyzed.plan.schema();
        let cqtime = find_cq_close_column(&analyzed.plan);
        let shard_idx = if let Some(s) = catalog.streams.get(&upstream) {
            s.shard
        } else if let Some(d) = catalog.deriveds.get(&upstream) {
            d.shard
        } else {
            return Err(Error::stream(format!("unknown stream `{}`", cq.stream())));
        };
        let cq_id = catalog.next_cq;
        catalog.next_cq += 1;
        Self::charge_state(&mut catalog, cq_id, state_bytes);
        catalog.deriveds.insert(
            key.clone(),
            CatDerived {
                decl: StreamDecl {
                    schema: out_schema,
                    cqtime,
                },
                shard: shard_idx,
                cq_id,
            },
        );
        // Mirror the (possibly new) shared groups into the owning shard
        // so the ingest hot path folds tuples without the catalog lock.
        let groups = if upstream_is_base {
            catalog.registry.groups_on_stream(&upstream)
        } else {
            Vec::new()
        };
        let shard = shard_at(&catalog, shard_idx)?;
        let hist = self
            .engine
            .metrics()
            .histogram(&format!("cq.close_us.{key}"));
        {
            let mut state = shard.state.lock();
            if let Some(rt) = state.streams.get_mut(&upstream) {
                rt.groups = groups;
            }
            state.cqs.insert(
                cq_id,
                CqEntry {
                    cq,
                    sink: Sink::Derived(key.clone()),
                    close_hist: hist,
                },
            );
            attach_cq(&mut state, &upstream, cq_id)?;
            state
                .deriveds
                .insert(key.clone(), DerivedRuntime::default());
        }
        if persist {
            self.persist_ddl(&mut catalog, "derived", &key, sql)?;
        }
        Ok(ExecResult::Created(name.to_string()))
    }

    fn create_channel(
        &self,
        name: &str,
        from_stream: &str,
        into_table: &str,
        mode: ChannelMode,
        sql: &str,
        persist: bool,
    ) -> Result<ExecResult> {
        let mut catalog = self.catalog.lock();
        let key = name.to_ascii_lowercase();
        if catalog.channels.contains_key(&key) {
            return Err(Error::catalog(format!("channel `{name}` already exists")));
        }
        let from_key = from_stream.to_ascii_lowercase();
        let table_schema = self.engine.table_schema(into_table)?;
        // Validate schema compatibility (arity; types are coerced at
        // insert, so a count/arity check catches the real mistakes).
        let (src_schema, shard_idx, from_derived) = if let Some(d) = catalog.deriveds.get(&from_key)
        {
            (d.decl.schema.clone(), d.shard, true)
        } else if let Some(s) = catalog.streams.get(&from_key) {
            (s.decl.schema.clone(), s.shard, false)
        } else {
            return Err(Error::catalog(format!(
                "channel source `{from_stream}` is not a stream"
            )));
        };
        if src_schema.len() != table_schema.len() {
            return Err(Error::analysis(format!(
                "channel source has {} columns but table `{into_table}` has {}",
                src_schema.len(),
                table_schema.len()
            )));
        }
        let rows_written = Arc::new(AtomicU64::new(0));
        catalog.channels.insert(
            key.clone(),
            ChannelDef {
                table: into_table.to_string(),
                mode,
                rows_written: rows_written.clone(),
            },
        );
        let sink = ChannelSink {
            name: key.clone(),
            table: into_table.to_string(),
            mode,
            rows_written,
        };
        let shard = shard_at(&catalog, shard_idx)?;
        {
            let mut state = shard.state.lock();
            if from_derived {
                state
                    .deriveds
                    .entry(from_key.clone())
                    .or_default()
                    .channels
                    .push(sink);
            } else if let Some(rt) = state.streams.get_mut(&from_key) {
                rt.raw_channels.push(sink);
            }
        }
        if persist {
            self.persist_ddl(&mut catalog, "channel", &key, sql)?;
        }
        Ok(ExecResult::Created(name.to_string()))
    }

    fn drop_object(&self, kind: ObjectKind, name: &str, if_exists: bool) -> Result<ExecResult> {
        let key = name.to_ascii_lowercase();
        match kind {
            ObjectKind::Table => {
                if !self.engine.has_table(&key) {
                    return missing("table", name, if_exists);
                }
                self.engine.drop_table(&key)?;
                Ok(ExecResult::Dropped(name.to_string()))
            }
            ObjectKind::View => self.drop_view(&key, name, if_exists),
            ObjectKind::Stream => self.drop_stream(&key, name, if_exists),
            ObjectKind::Channel => self.drop_channel(&key, name, if_exists),
            ObjectKind::Index => {
                if self.engine.drop_index(&key)? {
                    Ok(ExecResult::Dropped(name.to_string()))
                } else {
                    missing("index", name, if_exists)
                }
            }
        }
    }

    fn drop_view(&self, key: &str, name: &str, if_exists: bool) -> Result<ExecResult> {
        let mut catalog = self.catalog.lock();
        if catalog.views.remove(key).is_none() {
            return missing("view", name, if_exists);
        }
        self.unpersist_ddl(&mut catalog, "view", key)?;
        Ok(ExecResult::Dropped(name.to_string()))
    }

    fn drop_stream(&self, key: &str, name: &str, if_exists: bool) -> Result<ExecResult> {
        let mut catalog = self.catalog.lock();
        if let Some(d) = catalog.deriveds.get(key) {
            let cq_id = d.cq_id;
            let shard = shard_at(&catalog, d.shard)?;
            {
                let mut state = shard.state.lock();
                let has_deps = state
                    .deriveds
                    .get(key)
                    .map(|rt| !rt.downstream_cqs.is_empty() || !rt.channels.is_empty())
                    .unwrap_or(false);
                if has_deps {
                    return Err(Error::catalog(format!(
                        "derived stream `{name}` has dependents; drop them first"
                    )));
                }
                state.deriveds.remove(key);
                state.cqs.remove(&cq_id);
                // Detach from upstream lists.
                for s in state.streams.values_mut() {
                    s.cq_ids.retain(|&id| id != cq_id);
                }
                for rt in state.deriveds.values_mut() {
                    rt.downstream_cqs.retain(|&id| id != cq_id);
                }
            }
            catalog.deriveds.remove(key);
            Self::release_state(&mut catalog, cq_id);
            self.engine.metrics().remove(&format!("cq.close_us.{key}"));
            self.unpersist_ddl(&mut catalog, "derived", key)?;
            return Ok(ExecResult::Dropped(name.to_string()));
        }
        if let Some(s) = catalog.streams.get(key) {
            let shard = shard_at(&catalog, s.shard)?;
            {
                let mut state = shard.state.lock();
                let has_deps = state
                    .streams
                    .get(key)
                    .map(|rt| !rt.cq_ids.is_empty() || !rt.raw_channels.is_empty())
                    .unwrap_or(false);
                if has_deps {
                    return Err(Error::catalog(format!(
                        "stream `{name}` has dependents; drop them first"
                    )));
                }
                state.streams.remove(key);
            }
            // The shard slot itself stays: ids must remain stable.
            catalog.streams.remove(key);
            self.unpersist_ddl(&mut catalog, "stream", key)?;
            return Ok(ExecResult::Dropped(name.to_string()));
        }
        missing("stream", name, if_exists)
    }

    fn drop_channel(&self, key: &str, name: &str, if_exists: bool) -> Result<ExecResult> {
        let mut catalog = self.catalog.lock();
        if catalog.channels.remove(key).is_none() {
            return missing("channel", name, if_exists);
        }
        for shard in catalog.shards.iter() {
            let mut state = shard.state.lock();
            for rt in state.deriveds.values_mut() {
                rt.channels.retain(|c| c.name != key);
            }
            for rt in state.streams.values_mut() {
                rt.raw_channels.retain(|c| c.name != key);
            }
        }
        self.unpersist_ddl(&mut catalog, "channel", key)?;
        Ok(ExecResult::Dropped(name.to_string()))
    }

    fn insert(
        &self,
        target: &str,
        columns: Option<&[String]>,
        value_rows: &[Vec<Expr>],
    ) -> Result<ExecResult> {
        // Evaluate constant expressions.
        let analyzer_rows: Vec<Row> = {
            let catalog = self.catalog.lock();
            let provider = self.provider(&catalog);
            let analyzer = Analyzer::new(&provider);
            let mut out = Vec::with_capacity(value_rows.len());
            for exprs in value_rows {
                let mut row = Vec::with_capacity(exprs.len());
                for e in exprs {
                    let bound = analyzer.bind_constant(e)?;
                    row.push(streamrel_exec::eval(
                        &bound,
                        &[],
                        &streamrel_exec::EvalContext::default(),
                    )?);
                }
                out.push(row);
            }
            out
        };
        let key = target.to_ascii_lowercase();
        // Stream ingest path.
        let stream_schema = {
            let catalog = self.catalog.lock();
            catalog.streams.get(&key).map(|s| s.decl.schema.clone())
        };
        if let Some(schema) = stream_schema {
            let rows = reorder_columns(&schema, columns, analyzer_rows)?;
            let n = rows.len() as u64;
            self.ingest_batch(&key, rows)?;
            return Ok(ExecResult::Inserted(n));
        }
        // Table path.
        let schema = self.engine.table_schema(target)?;
        let rows = reorder_columns(&schema, columns, analyzer_rows)?;
        let id = self.engine.table_id(target)?;
        let n = self
            .engine
            .with_txn(|x| self.engine.insert_many(x, id, rows))?;
        Ok(ExecResult::Inserted(n))
    }

    fn delete(&self, table: &str, filter: Option<&Expr>) -> Result<ExecResult> {
        let schema = self.engine.table_schema(table)?;
        let id = self.engine.table_id(table)?;
        let bound = match filter {
            Some(f) => {
                let catalog = self.catalog.lock();
                let provider = self.provider(&catalog);
                Some(Analyzer::new(&provider).bind_over_schema(f, &schema)?)
            }
            None => None,
        };
        let n = self.engine.with_txn(|x| {
            let snap = self.engine.snapshot_for(x);
            let victims = self.engine.scan(id, &snap)?;
            let mut n = 0;
            for (tid, row) in victims {
                let hit = match &bound {
                    Some(p) => streamrel_exec::eval_predicate(
                        p,
                        &row,
                        &streamrel_exec::EvalContext::default(),
                    )?,
                    None => true,
                };
                if hit {
                    self.engine.delete(x, tid)?;
                    n += 1;
                }
            }
            Ok(n)
        })?;
        Ok(ExecResult::Deleted(n))
    }

    fn select(&self, query: &Query) -> Result<ExecResult> {
        let mut catalog = self.catalog.lock();
        let analyzed = {
            let provider = self.provider(&catalog);
            Analyzer::new(&provider).analyze(query)?
        };
        if !analyzed.is_continuous {
            // Snapshot query: fresh snapshot, run to completion (§3.1 SQ).
            // Holds only the catalog lock — ingest proceeds in parallel.
            let source = streamrel_cq::SnapshotSource::pin(self.engine.clone());
            let ctx = ExecContext::snapshot(&source).with_metrics(&self.metrics.exec);
            let rel = execute(&analyzed.plan, &ctx)?;
            return Ok(ExecResult::Rows(rel));
        }
        // Continuous query: register a subscription-backed CQ.
        let state_bytes = self.admit_plan(&catalog, &analyzed.plan)?;
        let sub_id = SubscriptionId(catalog.next_sub);
        catalog.next_sub += 1;
        let mut cq = ContinuousQuery::new(
            format!("sub_{}", sub_id.0),
            &analyzed,
            self.engine.clone(),
            self.options.consistency,
        )?;
        let upstream = cq.stream().to_ascii_lowercase();
        let upstream_is_base = catalog.streams.contains_key(&upstream);
        if self.options.sharing && upstream_is_base {
            cq.try_share(&mut catalog.registry);
        }
        if self.options.ivm && upstream_is_base && !cq.is_shared() {
            cq.try_lower_ivm();
        }
        let shard_idx = if let Some(s) = catalog.streams.get(&upstream) {
            s.shard
        } else if let Some(d) = catalog.deriveds.get(&upstream) {
            d.shard
        } else {
            return Err(Error::stream(format!("unknown stream `{}`", cq.stream())));
        };
        let cq_id = catalog.next_cq;
        catalog.next_cq += 1;
        Self::charge_state(&mut catalog, cq_id, state_bytes);
        catalog.sub_shard.insert(sub_id, shard_idx);
        catalog.sub_cq.insert(sub_id, cq_id);
        let groups = if upstream_is_base {
            catalog.registry.groups_on_stream(&upstream)
        } else {
            Vec::new()
        };
        let shard = shard_at(&catalog, shard_idx)?;
        let hist = self
            .engine
            .metrics()
            .histogram(&format!("cq.close_us.sub_{}", sub_id.0));
        {
            let mut state = shard.state.lock();
            if let Some(rt) = state.streams.get_mut(&upstream) {
                rt.groups = groups;
            }
            state.cqs.insert(
                cq_id,
                CqEntry {
                    cq,
                    sink: Sink::Clients(vec![sub_id]),
                    close_hist: hist,
                },
            );
            attach_cq(&mut state, &upstream, cq_id)?;
        }
        drop(catalog);
        self.subs.lock().insert(
            sub_id,
            Subscription::bounded(self.options.sub_queue_capacity, self.options.sub_overflow)
                .with_depth_gauge(self.metrics.sub_queue_depth.clone()),
        );
        Ok(ExecResult::Subscribed(sub_id))
    }

    /// Attach a new subscription to the CQ behind `primary`, sharing its
    /// window computation: the CQ runs once, and every closed window is
    /// offered (reference-counted, not copied) to each member's own
    /// bounded queue. This is the engine half of the network server's
    /// serialize-once fan-out — N remote subscribers to one continuous
    /// query cost one CQ runtime and one window allocation per close.
    ///
    /// The returned subscription is independent for delivery purposes:
    /// it has its own queue, depth accounting and overflow policy, and
    /// unsubscribing it never disturbs other members. The CQ itself is
    /// torn down when its *last* member unsubscribes.
    pub fn subscribe_attach(&self, primary: SubscriptionId) -> Result<SubscriptionId> {
        let mut catalog = self.catalog.lock();
        let shard_idx = *catalog
            .sub_shard
            .get(&primary)
            .ok_or_else(|| Error::stream(format!("unknown subscription {primary:?}")))?;
        let cq_id = *catalog
            .sub_cq
            .get(&primary)
            .ok_or_else(|| Error::stream(format!("unknown subscription {primary:?}")))?;
        let sub_id = SubscriptionId(catalog.next_sub);
        catalog.next_sub += 1;
        catalog.sub_shard.insert(sub_id, shard_idx);
        catalog.sub_cq.insert(sub_id, cq_id);
        let shard = shard_at(&catalog, shard_idx)?;
        {
            // Lock order: catalog < state (the file-level declaration).
            let mut state = shard.state.lock();
            match state.cqs.get_mut(&cq_id).map(|e| &mut e.sink) {
                Some(Sink::Clients(members)) => members.push(sub_id),
                _ => {
                    // The primary unsubscribed between the catalog lookup
                    // and here (or points at a derived-stream CQ, which
                    // sub_cq never records). Roll back the reservation.
                    catalog.sub_shard.remove(&sub_id);
                    catalog.sub_cq.remove(&sub_id);
                    return Err(Error::stream(format!("unknown subscription {primary:?}")));
                }
            }
        }
        drop(catalog);
        self.subs.lock().insert(
            sub_id,
            Subscription::bounded(self.options.sub_queue_capacity, self.options.sub_overflow)
                .with_depth_gauge(self.metrics.sub_queue_depth.clone()),
        );
        Ok(sub_id)
    }

    /// The CQ id a client subscription feeds from, if it is still live.
    /// Two subscriptions report the same id exactly when they share one
    /// CQ runtime (i.e. one was [`Db::subscribe_attach`]ed to the other).
    pub fn subscription_cq(&self, sub: SubscriptionId) -> Option<u64> {
        self.catalog.lock().sub_cq.get(&sub).copied()
    }

    /// Terminate a continuous query / subscription (§3.1: "CQs run until
    /// they are explicitly terminated").
    ///
    /// With fan-out ([`Db::subscribe_attach`]) a CQ may have several
    /// member subscriptions; removing one only detaches it. The CQ
    /// runtime — and its state-budget charge and close histogram — is
    /// released when the last member leaves.
    pub fn unsubscribe(&self, sub: SubscriptionId) -> Result<()> {
        let mut catalog = self.catalog.lock();
        let shard_idx = catalog
            .sub_shard
            .remove(&sub)
            .ok_or_else(|| Error::stream(format!("unknown subscription {sub:?}")))?;
        catalog.sub_cq.remove(&sub);
        self.engine
            .metrics()
            .remove(&format!("cq.close_us.sub_{}", sub.0));
        let shard = shard_at(&catalog, shard_idx)?;
        drop(catalog);
        let removed = {
            let mut state = shard.state.lock();
            // Detach this subscription from every client-sinked CQ; a CQ
            // whose membership empties is torn down.
            let mut ids: Vec<u64> = Vec::new();
            for (id, e) in state.cqs.iter_mut() {
                if let Sink::Clients(members) = &mut e.sink {
                    members.retain(|&s| s != sub);
                    if members.is_empty() {
                        ids.push(*id);
                    }
                }
            }
            for &id in &ids {
                state.cqs.remove(&id);
                for s in state.streams.values_mut() {
                    s.cq_ids.retain(|&c| c != id);
                }
                for d in state.deriveds.values_mut() {
                    d.downstream_cqs.retain(|&c| c != id);
                }
            }
            ids
        };
        self.release_removed(removed);
        // Undelivered results leave the depth gauge with the subscription
        // (its Drop impl settles the account).
        self.subs.lock().remove(&sub);
        // Wake blocked deliverers so they notice the subscription is gone.
        self.notify.notify();
        Ok(())
    }

    // ---- federation -----------------------------------------------------------

    /// Subscribe to a stream's output as-is: each upstream batch (a
    /// derived stream's closed window, or a base stream's tuple) arrives
    /// as exactly one window result, unmodified. This is the engine half
    /// of the federation bridge — node A serves its derived stream over
    /// this subscription and node B re-ingests the rows. Implemented as
    /// `SELECT * FROM <name> <SLICES 1 WINDOWS>`, whose pass-through
    /// semantics the slice window guarantees (one `ClosedWindow` per
    /// upstream batch, same close, same rows).
    pub fn subscribe_stream(&self, name: &str) -> Result<SubscriptionId> {
        let key = name.to_ascii_lowercase();
        {
            let catalog = self.catalog.lock();
            if !catalog.streams.contains_key(&key) && !catalog.deriveds.contains_key(&key) {
                return Err(Error::stream(format!("unknown stream `{name}`")));
            }
        }
        match self.execute(&format!("SELECT * FROM {key} <SLICES 1 WINDOWS>"))? {
            ExecResult::Subscribed(id) => Ok(id),
            other => Err(Error::stream(format!(
                "subscribe_stream produced {other:?}, not a subscription"
            ))),
        }
    }

    /// Replay a derived stream's archived windows with `close > after`,
    /// in close order — the Active-Tables recovery story (§4) applied
    /// across nodes. Windows are reconstructed from the stream's first
    /// APPEND channel: rows are grouped by the stream's `cq_close(*)`
    /// column, so federation requires the derived stream to carry one
    /// (like the quickstart's `stime`) and to archive through an APPEND
    /// channel. `pump` commits each window's archive rows and resume
    /// watermark in one transaction *before* any delivery, so everything
    /// a subscriber ever saw is reconstructible here. The replay ends
    /// with an empty window at the stream's durable watermark when that
    /// is past the last archived close (heartbeat-only windows archive
    /// no rows but do commit the watermark).
    pub fn archived_windows(&self, stream: &str, after: Timestamp) -> Result<Vec<CqOutput>> {
        let key = stream.to_ascii_lowercase();
        let (schema, cqtime, shard_idx) = {
            let catalog = self.catalog.lock();
            let d = catalog
                .deriveds
                .get(&key)
                .ok_or_else(|| Error::stream(format!("`{stream}` is not a derived stream")))?;
            (d.decl.schema.clone(), d.decl.cqtime, d.shard)
        };
        let close_col = cqtime.ok_or_else(|| {
            Error::stream(format!(
                "derived stream `{stream}` has no cq_close(*) column; \
                 archived windows cannot be replayed"
            ))
        })?;
        let table = {
            let catalog = self.catalog.lock();
            let shard = shard_at(&catalog, shard_idx)?;
            let state = shard.state.lock();
            state
                .deriveds
                .get(&key)
                .and_then(|d| {
                    d.channels
                        .iter()
                        .find(|c| c.mode == ChannelMode::Append)
                        .map(|c| c.table.clone())
                })
                .ok_or_else(|| {
                    Error::stream(format!(
                        "derived stream `{stream}` has no APPEND channel to replay from"
                    ))
                })?
        };
        let tid = self.engine.table_id(&table)?;
        let snap = self.engine.snapshot();
        // Heap scan order is insertion order, and each window's rows were
        // inserted in one transaction in relation order — grouping into a
        // close-ordered map preserves the original row order per window.
        let mut by_close: std::collections::BTreeMap<Timestamp, Vec<Row>> =
            std::collections::BTreeMap::new();
        for (_, row) in self.engine.scan(tid, &snap)? {
            let close = row
                .get(close_col)
                .ok_or_else(|| {
                    Error::stream(format!(
                        "archived row in `{table}` is missing close column {close_col}"
                    ))
                })?
                .as_timestamp()?;
            if close > after {
                by_close.entry(close).or_default().push(row);
            }
        }
        let mut outs: Vec<CqOutput> = by_close
            .into_iter()
            .map(|(close, rows)| CqOutput {
                close,
                relation: Relation::new(schema.clone(), rows),
            })
            .collect();
        // Heartbeat-only windows archive no rows, but `pump` commits the
        // resume watermark for them all the same — so when the stream's
        // durable watermark is past the last archived close, finish the
        // replay with an empty window carrying it. Without this, a
        // subscriber whose gap ended in empty windows would reconnect
        // and never learn that event time had advanced.
        let last = outs.last().map(|o| o.close).unwrap_or(after);
        if let Some(wm) = load_watermark(&self.engine, &key)? {
            if wm > last {
                outs.push(CqOutput {
                    close: wm,
                    relation: Relation::new(schema, Vec::new()),
                });
            }
        }
        Ok(outs)
    }

    // ---- internals ------------------------------------------------------------

    fn check_name_free(&self, catalog: &Catalog, key: &str) -> Result<()> {
        check_reserved(key)?;
        if catalog.streams.contains_key(key)
            || catalog.deriveds.contains_key(key)
            || catalog.views.contains_key(key)
            || self.engine.has_table(key)
        {
            return Err(Error::catalog(format!("name `{key}` is already in use")));
        }
        Ok(())
    }

    fn provider<'a>(&'a self, catalog: &'a Catalog) -> ProviderView<'a> {
        ProviderView {
            engine: &self.engine,
            catalog,
        }
    }

    /// Pick (and if needed create) the shard for a new base stream.
    fn assign_shard(&self, catalog: &mut Catalog) -> usize {
        let idx = if self.options.shards == 0 {
            catalog.shards.len()
        } else {
            catalog.stream_seq % self.options.shards
        };
        catalog.stream_seq += 1;
        while catalog.shards.len() <= idx {
            // Each shard's durable writes (raw archives, channel writes,
            // watermarks) are pinned to one WAL commit domain so a shard
            // always fsyncs the same log (DESIGN.md §13). In-memory
            // engines report zero domains; clamp so the modulo is defined.
            let domain = catalog.shards.len() % self.engine.wal_shards().max(1);
            catalog.shards.push(Shard::new(domain));
        }
        idx
    }

    /// Resolve a base stream to its shard (brief catalog lock only).
    fn shard_of_stream(&self, key: &str, display: &str) -> Result<Arc<Shard>> {
        let catalog = self.catalog.lock();
        let idx = catalog
            .streams
            .get(key)
            .map(|s| s.shard)
            .ok_or_else(|| Error::stream(format!("unknown stream `{display}`")))?;
        shard_at(&catalog, idx)
    }

    /// Acquire a shard's state lock, counting contended acquisitions.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, ShardState> {
        if let Some(guard) = shard.state.try_lock() {
            return guard;
        }
        self.metrics.shard_contention.inc();
        shard.state.lock()
    }

    fn ingest_sharded(
        &self,
        state: &mut ShardState,
        key: &str,
        rows: Vec<Row>,
        start: Instant,
    ) -> Result<()> {
        let (schema, has_reorder) = {
            let rt = state
                .streams
                .get(key)
                .ok_or_else(|| Error::stream(format!("unknown stream `{key}`")))?;
            (rt.decl.schema.clone(), rt.reorder.is_some())
        };
        // Coerce rows against the stream schema (streams enforce their
        // declared types exactly like tables do).
        let mut coerced = Vec::with_capacity(rows.len());
        for r in rows {
            coerced.push(schema.coerce_row(r)?);
        }
        // Out-of-order slack.
        let released = if has_reorder {
            let rb = state
                .streams
                .get_mut(key)
                .and_then(|s| s.reorder.as_mut())
                .ok_or_else(|| Error::stream(format!("reorder buffer for `{key}` vanished")))?;
            let before = rb.late_drops();
            let mut released = Vec::new();
            for r in coerced {
                released.extend(rb.push(r)?);
            }
            self.metrics.late_drops.add(rb.late_drops() - before);
            released
        } else {
            coerced
        };
        if released.is_empty() {
            return Ok(());
        }
        self.metrics.tuples_in.add(released.len() as u64);

        let (raw_channels, groups, cqtime, cq_ids) = {
            let rt = state
                .streams
                .get(key)
                .ok_or_else(|| Error::stream(format!("unknown stream `{key}`")))?;
            (
                rt.raw_channels.clone(),
                rt.groups.clone(),
                rt.decl.cqtime,
                rt.cq_ids.clone(),
            )
        };

        // Raw archive channels (one transaction per batch).
        for ch in &raw_channels {
            let tid = self.engine.table_id(&ch.table)?;
            let n = self.engine.with_txn_on(state.domain, |x| {
                if ch.mode == ChannelMode::Replace {
                    self.engine.delete_all_visible(x, tid)?;
                }
                self.engine.insert_many(x, tid, released.clone())
            })?;
            ch.rows_written.fetch_add(n, Ordering::SeqCst);
            self.metrics.rows_archived.add(n);
        }

        // Shared groups: fold each tuple once per group.
        for g in &groups {
            let mut g = g.lock();
            for r in &released {
                g.on_tuple(r)?;
            }
        }

        // Per-CQ window staging. Shared CQs take the timestamp-only fast
        // path: the group already aggregated each tuple once. If staging
        // fails mid-way, whatever was staged so far is still evaluated
        // and delivered before the error surfaces (no silent drops).
        let timestamps: Option<Vec<i64>> = cqtime.map(|c| {
            released
                .iter()
                .map(|r| r[c].as_timestamp().unwrap_or(i64::MIN))
                .collect()
        });
        let mut staged: Vec<(u64, Vec<WindowTask>)> = Vec::new();
        let mut stage_err: Option<Error> = None;
        'cqs: for id in cq_ids {
            let entry = state
                .cqs
                .get_mut(&id)
                .ok_or_else(|| Error::stream(format!("cq {id} not registered")))?;
            let mut tasks = Vec::new();
            if entry.cq.is_shared() {
                let ts_list = timestamps
                    .as_ref()
                    .ok_or_else(|| Error::stream("shared CQ without CQTIME"))?;
                for &ts in ts_list {
                    match entry.cq.stage_note_shared(ts) {
                        Ok(t) => tasks.extend(t),
                        Err(e) => {
                            staged.push((id, std::mem::take(&mut tasks)));
                            stage_err = Some(e);
                            break 'cqs;
                        }
                    }
                }
            } else {
                for r in &released {
                    match entry.cq.stage_tuple(r.clone()) {
                        Ok(t) => tasks.extend(t),
                        Err(e) => {
                            staged.push((id, std::mem::take(&mut tasks)));
                            stage_err = Some(e);
                            break 'cqs;
                        }
                    }
                }
            }
            staged.push((id, tasks));
        }
        self.eval_and_pump(state, staged, stage_err, start)
    }

    /// Evaluate staged window tasks on the worker pool, then deliver.
    ///
    /// `run_ordered` hands results back in submission order — exactly the
    /// (CQ registration, window close) order serial execution produces —
    /// so downstream output is byte-identical to the single-threaded
    /// engine. Results produced before the first error (staging or
    /// evaluation) are always delivered; the error is returned after.
    fn eval_and_pump(
        &self,
        state: &mut ShardState,
        staged: Vec<(u64, Vec<WindowTask>)>,
        stage_err: Option<Error>,
        start: Instant,
    ) -> Result<()> {
        let mut flat: Vec<(u64, WindowTask)> = Vec::new();
        for (id, tasks) in staged {
            for t in tasks {
                flat.push((id, t));
            }
        }
        if flat.is_empty() {
            return match stage_err {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }
        let meta: Vec<(u64, usize)> = flat.iter().map(|(id, t)| (*id, t.input_rows())).collect();
        let jobs: Vec<_> = flat.into_iter().map(|(_, t)| move || t.run()).collect();
        let results = self.pool.run_ordered(jobs);
        let mut emitted: Vec<(u64, CqOutput)> = Vec::new();
        let mut eval_err: Option<Error> = None;
        for ((id, in_rows), res) in meta.into_iter().zip(results) {
            match res {
                Ok(out) => {
                    if let Some(entry) = state.cqs.get_mut(&id) {
                        entry.cq.finish_window(in_rows, &out);
                    }
                    emitted.push((id, out));
                }
                Err(e) => {
                    // Later tasks belong to later (CQ, close) pairs; serial
                    // execution would never have produced them.
                    eval_err = Some(e);
                    break;
                }
            }
        }
        let pump_res = self.pump(state, emitted, start);
        if let Some(e) = eval_err {
            return Err(e);
        }
        pump_res?;
        match stage_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Propagate CQ outputs through sinks: client queues, channels and
    /// downstream CQs (derived-stream composition, §3.2), breadth-first.
    /// `start` is the one timestamp taken when the triggering batch or
    /// heartbeat arrived; each CQ's close-latency histogram observes the
    /// elapsed time when its result is enqueued. Cascades stay inside the
    /// owning shard (a derived stream lives with its root base stream),
    /// and run serially to preserve exact visibility order.
    fn pump(
        &self,
        state: &mut ShardState,
        emitted: Vec<(u64, CqOutput)>,
        start: Instant,
    ) -> Result<()> {
        let mut queue: VecDeque<(u64, CqOutput)> = emitted.into();
        let mut published = false;
        while let Some((cq_id, out)) = queue.pop_front() {
            self.metrics.windows_out.inc();
            if let Some(entry) = state.cqs.get(&cq_id) {
                entry.close_hist.observe_from(start);
            }
            let sink_target = match state.cqs.get(&cq_id).map(|e| &e.sink) {
                Some(Sink::Clients(members)) => {
                    // One allocation per closed window: every member's
                    // queue holds the same Arc. All offers happen under a
                    // single `subs` acquisition, so a notifier wakeup
                    // (and hence one reactor sweep) observes either no
                    // copy or every copy of this window — the invariant
                    // the server's serialize-once encode cache relies on.
                    let members = members.clone();
                    let shared = Arc::new(out);
                    let mut subs = self.subs.lock();
                    let mut drops = 0;
                    let mut offered = false;
                    for s in &members {
                        if let Some(sub) = subs.get_mut(s) {
                            // The depth gauge is settled inside `offer`.
                            drops += sub.offer(shared.clone());
                            offered = true;
                        }
                    }
                    self.metrics.sub_drops.add(drops);
                    published |= offered;
                    continue;
                }
                Some(Sink::Derived(name)) => name.clone(),
                None => continue, // dropped mid-flight
            };
            let (channels, downstream) = match state.deriveds.get(&sink_target) {
                Some(d) => (d.channels.clone(), d.downstream_cqs.clone()),
                None => continue,
            };
            // One transaction covers every channel's rows AND the resume
            // watermark, so recovery can never observe a watermark without
            // its archived window or vice versa (exactly-once archiving
            // across crashes — the §4 recovery contract).
            let mut written: Vec<(Arc<AtomicU64>, u64)> = Vec::new();
            self.engine.with_txn_on(state.domain, |x| {
                for ch in &channels {
                    let tid = self.engine.table_id(&ch.table)?;
                    if ch.mode == ChannelMode::Replace {
                        self.engine.delete_all_visible(x, tid)?;
                    }
                    let n = self
                        .engine
                        .insert_many(x, tid, out.relation.rows().to_vec())?;
                    written.push((ch.rows_written.clone(), n));
                }
                save_watermark_txn(&self.engine, x, &sink_target, out.close)
            })?;
            for (cell, n) in written {
                cell.fetch_add(n, Ordering::SeqCst);
                self.metrics.rows_archived.add(n);
            }
            for ds in downstream {
                if let Some(entry) = state.cqs.get_mut(&ds) {
                    let outs = entry.cq.on_batch(out.close, out.relation.rows().to_vec())?;
                    for o in outs {
                        queue.push_back((ds, o));
                    }
                }
            }
        }
        if published {
            self.notify.notify();
        }
        Ok(())
    }

    fn persist_ddl(&self, catalog: &mut Catalog, kind: &str, key: &str, sql: &str) -> Result<()> {
        let seq = catalog.ddl_seq;
        catalog.ddl_seq += 1;
        let ddl_key = format!("ddl.{seq:020}");
        self.engine.catalog_put(&ddl_key, sql)?;
        self.engine
            .catalog_put(&format!("ddlref.{kind}.{key}"), &ddl_key)?;
        Ok(())
    }

    fn unpersist_ddl(&self, catalog: &mut Catalog, kind: &str, key: &str) -> Result<()> {
        let _ = catalog;
        let ref_key = format!("ddlref.{kind}.{key}");
        if let Some(ddl_key) = self.engine.catalog_get(&ref_key) {
            self.engine.catalog_del(&ddl_key)?;
            self.engine.catalog_del(&ref_key)?;
        }
        Ok(())
    }

    fn replay_ddl(&self) -> Result<()> {
        let entries = self.engine.catalog_scan("ddl.");
        let mut max_seq = 0u64;
        for (k, sql) in entries {
            if let Some(seq) = k.strip_prefix("ddl.").and_then(|s| s.parse::<u64>().ok()) {
                max_seq = max_seq.max(seq);
            }
            let stmt = parse_statement(&sql)?;
            self.execute_stmt(stmt, &sql, false)?;
        }
        self.catalog.lock().ddl_seq = max_seq + 1;
        Ok(())
    }

    fn restore_watermarks(&self) -> Result<()> {
        let catalog = self.catalog.lock();
        let entries: Vec<(String, usize, u64)> = catalog
            .deriveds
            .iter()
            .map(|(n, d)| (n.clone(), d.shard, d.cq_id))
            .collect();
        for (name, shard_idx, cq_id) in entries {
            if let Some(wm) = load_watermark(&self.engine, &name)? {
                let shard = shard_at(&catalog, shard_idx)?;
                let mut state = shard.state.lock();
                if let Some(entry) = state.cqs.get_mut(&cq_id) {
                    entry.cq.resume_after(wm);
                }
            }
        }
        Ok(())
    }

    /// Rows written by a channel so far.
    pub fn channel_rows_written(&self, channel: &str) -> Option<u64> {
        self.catalog
            .lock()
            .channels
            .get(&channel.to_ascii_lowercase())
            .map(|c| c.rows_written.load(Ordering::SeqCst))
    }
}

/// `DROP` result for an object that was not found.
fn missing(what: &str, name: &str, if_exists: bool) -> Result<ExecResult> {
    if if_exists {
        Ok(ExecResult::Dropped(name.to_string()))
    } else {
        Err(Error::catalog(format!("{what} `{name}` does not exist")))
    }
}

/// Fetch a shard handle by index (all callers hold the catalog lock).
fn shard_at(catalog: &Catalog, idx: usize) -> Result<Arc<Shard>> {
    catalog
        .shards
        .get(idx)
        .cloned()
        .ok_or_else(|| Error::stream(format!("shard {idx} out of range")))
}

/// Register a CQ with its upstream's runtime inside the shard.
fn attach_cq(state: &mut ShardState, upstream: &str, cq_id: u64) -> Result<()> {
    if let Some(s) = state.streams.get_mut(upstream) {
        s.cq_ids.push(cq_id);
        return Ok(());
    }
    if let Some(d) = state.deriveds.get_mut(upstream) {
        d.downstream_cqs.push(cq_id);
        return Ok(());
    }
    Err(Error::stream(format!("unknown stream `{upstream}`")))
}

struct ProviderView<'a> {
    engine: &'a Arc<StorageEngine>,
    catalog: &'a Catalog,
}

impl streamrel_sql::analyzer::SchemaProvider for ProviderView<'_> {
    fn relation(
        &self,
        name: &str,
    ) -> Option<(
        streamrel_sql::plan::SchemaRef,
        streamrel_sql::analyzer::RelKind,
    )> {
        let streams: HashMap<String, StreamDecl> = self
            .catalog
            .streams
            .iter()
            .map(|(k, v)| (k.clone(), v.decl.clone()))
            .collect();
        let deriveds: HashMap<String, StreamDecl> = self
            .catalog
            .deriveds
            .iter()
            .map(|(k, v)| (k.clone(), v.decl.clone()))
            .collect();
        let p = CatalogProvider {
            engine: self.engine,
            streams: &streams,
            deriveds: &deriveds,
            views: &self.catalog.views,
        };
        streamrel_sql::analyzer::SchemaProvider::relation(&p, name)
    }
}

/// Locate the output column whose projection expression is `cq_close(*)`
/// (gives derived streams their time column for downstream time windows).
fn find_cq_close_column(plan: &LogicalPlan) -> Option<usize> {
    let top_schema = plan.schema();
    let mut found = None;
    plan.visit(&mut |p| {
        if let LogicalPlan::Project { exprs, schema, .. } = p {
            if Arc::ptr_eq(schema, &top_schema) || **schema == *top_schema {
                for (i, e) in exprs.iter().enumerate() {
                    if matches!(e, BoundExpr::CqClose) {
                        found = Some(i);
                    }
                }
            }
        }
    });
    found
}

/// User DDL may not claim the engine's `streamrel_` namespace: the virtual
/// relations (`streamrel_metrics`, `streamrel_trace`) must never be
/// shadowed by a real table or stream.
fn check_reserved(name: &str) -> Result<()> {
    if name
        .to_ascii_lowercase()
        .starts_with(streamrel_obs::RESERVED_PREFIX)
    {
        return Err(Error::catalog(format!(
            "name `{name}` uses the reserved `{}` prefix",
            streamrel_obs::RESERVED_PREFIX
        )));
    }
    Ok(())
}

fn column_defs_to_schema(columns: &[ColumnDef]) -> Result<Schema> {
    Schema::new(
        columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                ty: c.ty,
                nullable: !c.not_null,
            })
            .collect(),
    )
}

/// Rearrange INSERT values into schema order, filling omitted columns with
/// NULL.
fn reorder_columns(
    schema: &Schema,
    columns: Option<&[String]>,
    rows: Vec<Row>,
) -> Result<Vec<Row>> {
    match columns {
        None => Ok(rows),
        Some(cols) => {
            let mut positions = Vec::with_capacity(cols.len());
            for c in cols {
                positions.push(schema.index_of(c)?);
            }
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if row.len() != positions.len() {
                    return Err(Error::analysis(format!(
                        "INSERT has {} values for {} columns",
                        row.len(),
                        positions.len()
                    )));
                }
                let mut full = vec![Value::Null; schema.len()];
                for (v, &p) in row.into_iter().zip(&positions) {
                    full[p] = v;
                }
                out.push(full);
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OverflowPolicy;
    use streamrel_types::row;
    use streamrel_types::time::MINUTES;

    fn db() -> Db {
        Db::in_memory(DbOptions::default())
    }

    fn setup_paper_objects(db: &Db) {
        // Paper Example 1.
        db.execute(
            "CREATE STREAM url_stream ( url varchar(1024), \
             atime timestamp CQTIME USER, client_ip varchar(50) )",
        )
        .unwrap();
        // Paper Example 3 (adjusted: cq_close aliased for the archive).
        db.execute(
            "CREATE STREAM urls_now as SELECT url, count(*) as scnt, \
             cq_close(*) as stime FROM url_stream \
             <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP by url",
        )
        .unwrap();
        // Paper Example 4.
        db.execute(
            "CREATE TABLE urls_archive (url varchar(1024), scnt integer, \
             stime timestamp)",
        )
        .unwrap();
        db.execute("CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND")
            .unwrap();
    }

    fn click(url: &str, ts: i64) -> Row {
        row![url, Value::Timestamp(ts), "10.0.0.1"]
    }

    #[test]
    fn paper_examples_1_3_4_active_table_fills() {
        let db = db();
        setup_paper_objects(&db);
        for m in 0..3i64 {
            db.ingest("url_stream", click("/home", m * MINUTES + 1))
                .unwrap();
            db.ingest("url_stream", click("/buy", m * MINUTES + 2))
                .unwrap();
            db.ingest("url_stream", click("/home", m * MINUTES + 3))
                .unwrap();
        }
        db.heartbeat("url_stream", 3 * MINUTES).unwrap();
        // 3 windows closed, each emitting 2 groups → 6 archived rows.
        let rel = db
            .execute("SELECT url, scnt, stime FROM urls_archive ORDER BY stime, url")
            .unwrap()
            .rows();
        assert_eq!(rel.len(), 6);
        assert_eq!(rel.rows()[0], row!["/buy", 1i64, Value::Timestamp(MINUTES)]);
        assert_eq!(
            rel.rows()[1],
            row!["/home", 2i64, Value::Timestamp(MINUTES)]
        );
        // Cumulative over the sliding 5-minute window.
        assert_eq!(
            rel.rows()[5],
            row!["/home", 6i64, Value::Timestamp(3 * MINUTES)]
        );
        assert_eq!(db.stats().rows_archived, 6);
        assert_eq!(db.channel_rows_written("urls_channel"), Some(6));
    }

    #[test]
    fn active_table_is_a_regular_table() {
        let db = db();
        setup_paper_objects(&db);
        db.ingest("url_stream", click("/a", 1)).unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        // Index it, aggregate it, join it: it is just SQL (§3.3).
        db.execute("CREATE INDEX arch_by_url ON urls_archive (url)")
            .unwrap();
        let rel = db
            .execute("SELECT count(*) FROM urls_archive WHERE url = '/a'")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row![1i64]);
    }

    #[test]
    fn subscription_receives_windows() {
        let db = db();
        setup_paper_objects(&db);
        // Paper Example 2 as a client subscription.
        let sub = db
            .execute(
                "SELECT url, count(*) url_count FROM url_stream \
                 <VISIBLE '5 minutes' ADVANCE '1 minute'> \
                 GROUP by url ORDER by url_count desc LIMIT 10",
            )
            .unwrap()
            .subscription();
        db.ingest("url_stream", click("/top", 1)).unwrap();
        db.ingest("url_stream", click("/top", 2)).unwrap();
        db.ingest("url_stream", click("/other", 3)).unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        let outs = db.poll(sub).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].relation.rows()[0], row!["/top", 2i64]);
        assert!(db.poll(sub).unwrap().is_empty(), "drained");
        db.unsubscribe(sub).unwrap();
        assert!(db.poll(sub).is_err());
    }

    #[test]
    fn paper_example_5_historical_comparison() {
        let db = db();
        setup_paper_objects(&db);
        // Subscribe to the stream-table join comparing now vs 1 week ago.
        let sub = db
            .execute(
                "select c.scnt, h.scnt, c.stime from \
                 (select sum(scnt) as scnt, cq_close(*) as stime \
                  from urls_now <slices 1 windows>) c, urls_archive h \
                 where c.stime - '1 week'::interval = h.stime",
            )
            .unwrap()
            .subscription();
        // Seed last week's archive row directly (history).
        let week = streamrel_types::time::WEEKS;
        db.execute(&format!(
            "INSERT INTO urls_archive VALUES ('TOTAL', 42, '{}')",
            streamrel_types::format_timestamp(MINUTES - week)
        ))
        .unwrap();
        // Current traffic: 3 clicks in the first minute.
        for i in 0..3 {
            db.ingest("url_stream", click("/x", i + 1)).unwrap();
        }
        db.heartbeat("url_stream", MINUTES).unwrap();
        let outs = db.poll(sub).unwrap();
        assert_eq!(outs.len(), 1, "one comparison per window");
        let r = &outs[0].relation;
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.rows()[0],
            row![3i64, 42i64, Value::Timestamp(MINUTES)],
            "current=3 vs historical=42"
        );
    }

    #[test]
    fn insert_into_stream_is_ingest() {
        let db = db();
        setup_paper_objects(&db);
        db.execute("INSERT INTO url_stream VALUES ('/sql', '1970-01-01 00:00:05', '1.2.3.4')")
            .unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        let rel = db.execute("SELECT url FROM urls_archive").unwrap().rows();
        assert_eq!(rel.rows()[0], row!["/sql"]);
        assert_eq!(db.stats().tuples_in, 1);
    }

    #[test]
    fn replace_channel_keeps_latest_window_only() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        db.execute("CREATE TABLE latest (total bigint, w timestamp)")
            .unwrap();
        db.execute(
            "CREATE STREAM agg AS SELECT sum(v) total, cq_close(*) w \
             FROM s <TUMBLING '1 minute'>",
        )
        .unwrap();
        db.execute("CREATE CHANNEL ch FROM agg INTO latest REPLACE")
            .unwrap();
        db.ingest("s", row![5i64, Value::Timestamp(1)]).unwrap();
        db.heartbeat("s", MINUTES).unwrap();
        db.ingest("s", row![7i64, Value::Timestamp(MINUTES + 1)])
            .unwrap();
        db.heartbeat("s", 2 * MINUTES).unwrap();
        let rel = db.execute("SELECT total FROM latest").unwrap().rows();
        assert_eq!(rel.len(), 1, "REPLACE overwrites prior window");
        assert_eq!(rel.rows()[0], row![7i64]);
    }

    #[test]
    fn raw_channel_archives_base_stream() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        db.execute("CREATE TABLE raw (v integer, ts timestamp)")
            .unwrap();
        db.execute("CREATE CHANNEL raw_ch FROM s INTO raw APPEND")
            .unwrap();
        for i in 0..5i64 {
            db.ingest("s", row![i, Value::Timestamp(i)]).unwrap();
        }
        let rel = db.execute("SELECT count(*) FROM raw").unwrap().rows();
        assert_eq!(rel.rows()[0], row![5i64]);
    }

    #[test]
    fn cascaded_derived_streams() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        // First level: per-minute sums.
        db.execute(
            "CREATE STREAM minute_sums AS SELECT sum(v) sv, cq_close(*) w \
             FROM s <TUMBLING '1 minute'>",
        )
        .unwrap();
        // Second level: 3-minute rolling sum over the minute sums.
        db.execute(
            "CREATE STREAM rolling AS SELECT sum(sv) total, cq_close(*) w3 \
             FROM minute_sums <VISIBLE '3 minutes' ADVANCE '1 minute'>",
        )
        .unwrap();
        db.execute("CREATE TABLE out3 (total bigint, w3 timestamp)")
            .unwrap();
        db.execute("CREATE CHANNEL c3 FROM rolling INTO out3 APPEND")
            .unwrap();
        for m in 0..4i64 {
            db.ingest("s", row![m + 1, Value::Timestamp(m * MINUTES + 1)])
                .unwrap();
        }
        db.heartbeat("s", 4 * MINUTES).unwrap();
        let rel = db
            .execute("SELECT total, w3 FROM out3 ORDER BY w3")
            .unwrap()
            .rows();
        // minute sums: 1,2,3,4 at closes 1..4 min.
        // rolling(3): close 1min→1? Depends on the derived stream's time
        // window over batches: batch at close 1min has w=1min... rolling
        // windows close at 2,3,4 min with sums 1+2=3? See assertion:
        assert!(!rel.is_empty());
        // The final row must cover minutes 2..4: 2+3+4 = 9.
        let last = rel.rows().last().unwrap();
        assert_eq!(last[0], Value::Int(9));
    }

    #[test]
    fn views_over_streams_instantiate_per_subscription() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        db.execute("CREATE VIEW busy AS SELECT count(*) c FROM s <TUMBLING '1 minute'>")
            .unwrap();
        let sub = db.execute("SELECT c FROM busy").unwrap().subscription();
        db.ingest("s", row![1i64, Value::Timestamp(5)]).unwrap();
        db.heartbeat("s", MINUTES).unwrap();
        let outs = db.poll(sub).unwrap();
        assert_eq!(outs[0].relation.rows()[0], row![1i64]);
    }

    #[test]
    fn snapshot_queries_still_plain_sql() {
        let db = db();
        db.execute("CREATE TABLE t (a integer, b varchar(10))")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')")
            .unwrap();
        let rel = db
            .execute("SELECT b, count(*) c, sum(a) s FROM t GROUP BY b ORDER BY b")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row!["x", 2i64, 4i64]);
        assert_eq!(rel.rows()[1], row!["y", 1i64, 2i64]);
        let n = db.execute("DELETE FROM t WHERE b = 'x'").unwrap();
        assert!(matches!(n, ExecResult::Deleted(2)));
        let rel = db.execute("SELECT count(*) FROM t").unwrap().rows();
        assert_eq!(rel.rows()[0], row![1i64]);
    }

    #[test]
    fn insert_with_column_list_and_defaults() {
        let db = db();
        db.execute("CREATE TABLE t (a integer, b varchar(10), c float)")
            .unwrap();
        db.execute("INSERT INTO t (b, a) VALUES ('z', 9)").unwrap();
        let rel = db.execute("SELECT a, b, c FROM t").unwrap().rows();
        assert_eq!(
            rel.rows()[0],
            vec![Value::Int(9), Value::text("z"), Value::Null]
        );
    }

    #[test]
    fn name_collisions_rejected() {
        let db = db();
        db.execute("CREATE TABLE x (a integer)").unwrap();
        assert!(db
            .execute("CREATE STREAM x (v integer, ts timestamp CQTIME USER)")
            .is_err());
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        assert!(db.execute("CREATE VIEW s AS SELECT 1").is_err());
    }

    #[test]
    fn drop_order_enforced() {
        let db = db();
        setup_paper_objects(&db);
        assert!(
            db.execute("DROP STREAM urls_now").is_err(),
            "channel depends on it"
        );
        db.execute("DROP CHANNEL urls_channel").unwrap();
        db.execute("DROP STREAM urls_now").unwrap();
        db.execute("DROP STREAM url_stream").unwrap();
        assert!(db.execute("DROP STREAM url_stream").is_err());
        db.execute("DROP STREAM IF EXISTS url_stream").unwrap();
    }

    #[test]
    fn durable_recovery_resumes_cq_from_active_table() {
        let dir =
            std::env::temp_dir().join(format!("streamrel-db-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            setup_paper_objects(&db);
            for m in 0..2i64 {
                db.ingest("url_stream", click("/a", m * MINUTES + 1))
                    .unwrap();
            }
            db.heartbeat("url_stream", 2 * MINUTES).unwrap();
            let rel = db
                .execute("SELECT count(*) FROM urls_archive")
                .unwrap()
                .rows();
            assert_eq!(rel.rows()[0], row![2i64]);
            // Crash (drop without clean shutdown).
        }
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            // Archive survived; DDL was replayed; CQ resumed past window 2.
            let rel = db
                .execute("SELECT count(*) FROM urls_archive")
                .unwrap()
                .rows();
            assert_eq!(rel.rows()[0], row![2i64]);
            // New traffic continues where we left off — no duplicate
            // windows for minutes 1-2.
            db.ingest("url_stream", click("/a", 2 * MINUTES + 1))
                .unwrap();
            db.heartbeat("url_stream", 3 * MINUTES).unwrap();
            let rel = db
                .execute("SELECT count(*) FROM urls_archive")
                .unwrap()
                .rows();
            assert_eq!(rel.rows()[0], row![3i64], "exactly one new window row");
            let rel = db
                .execute("SELECT max(stime) FROM urls_archive")
                .unwrap()
                .rows();
            assert_eq!(rel.rows()[0], row![Value::Timestamp(3 * MINUTES)]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharing_enabled_by_default_for_aggregate_cqs() {
        let db = db();
        db.execute("CREATE STREAM s (k varchar(10), ts timestamp CQTIME USER)")
            .unwrap();
        let subs: Vec<SubscriptionId> = (0..4)
            .map(|_| {
                db.execute(
                    "SELECT k, count(*) c FROM s \
                     <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY k",
                )
                .unwrap()
                .subscription()
            })
            .collect();
        for i in 0..120i64 {
            db.ingest("s", row!["a", Value::Timestamp(i * 1_000_000)])
                .unwrap();
        }
        db.heartbeat("s", 2 * MINUTES).unwrap();
        for sub in subs {
            let outs = db.poll(sub).unwrap();
            assert_eq!(outs.len(), 2, "two windows closed");
            assert_eq!(outs[1].relation.rows()[0], row!["a", 120i64]);
        }
        // Sharing pooled all four CQs into one group.
        let catalog = db.catalog.lock();
        assert_eq!(catalog.registry.len(), 1);
    }

    #[test]
    fn slack_reorders_and_drops_late() {
        let db = Db::in_memory(DbOptions::default().with_slack(10 * 1_000_000));
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        let sub = db
            .execute("SELECT count(*) c FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        // Slightly out of order, within 10s slack.
        for ts in [5_000_000i64, 15_000_000, 12_000_000, 30_000_000, 25_000_000] {
            db.ingest("s", row![1i64, Value::Timestamp(ts)]).unwrap();
        }
        // Very late tuple: dropped.
        db.ingest("s", row![1i64, Value::Timestamp(1_000_000)])
            .unwrap();
        db.ingest("s", row![1i64, Value::Timestamp(80_000_000)])
            .unwrap();
        db.heartbeat("s", 2 * MINUTES).unwrap();
        assert_eq!(db.stats().late_drops, 1);
        let outs = db.poll(sub).unwrap();
        // Window 1 contains the 5 in-slack tuples... those ≤ 50s released
        // when watermark passed; the 80s tuple is in window 2 but was held
        // by slack until... heartbeat doesn't flush the reorder buffer, so
        // count what arrived: window[0] has the first-minute tuples that
        // were released.
        assert!(!outs.is_empty());
        assert_eq!(outs[0].relation.rows()[0], row![5i64]);
    }

    #[test]
    fn execute_script_runs_statements_in_order() {
        let db = db();
        let results = db
            .execute_script(
                "create table t (a integer); \
                 insert into t values (1), (2); \
                 select sum(a) from t;",
            )
            .unwrap();
        assert_eq!(results.len(), 3);
        match &results[2] {
            ExecResult::Rows(r) => assert_eq!(r.rows()[0], row![3i64]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_relation_is_selectable_and_live() {
        let db = db();
        setup_paper_objects(&db);
        db.ingest("url_stream", click("/a", 1)).unwrap();
        db.ingest("url_stream", click("/b", 2)).unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        // Ordinary SELECT over the virtual relation.
        let rel = db
            .execute("SELECT value FROM streamrel_metrics WHERE name = 'db.tuples_in'")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row![2i64]);
        // Aggregation works too — it is just a relation.
        let rel = db
            .execute("SELECT count(*) FROM streamrel_metrics")
            .unwrap()
            .rows();
        let n = rel.rows()[0][0].as_int().unwrap();
        assert!(n > 5, "expected several registered instruments, got {n}");
        // It is live: more traffic moves the counter.
        db.ingest("url_stream", click("/c", MINUTES + 1)).unwrap();
        let rel = db
            .execute("SELECT value FROM streamrel_metrics WHERE name = 'db.tuples_in'")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row![3i64]);
        // SHOW METRICS serves the identical relation (same schema + path).
        let shown = db.execute("SHOW METRICS").unwrap().rows();
        assert_eq!(**shown.schema(), streamrel_obs::metrics::metrics_schema());
        assert_eq!(shown.len(), db.metrics_relation().len());
    }

    #[test]
    fn per_cq_close_latency_histogram_populates() {
        let db = db();
        setup_paper_objects(&db);
        let sub = db
            .execute("SELECT count(*) c FROM url_stream <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        db.ingest("url_stream", click("/a", 1)).unwrap();
        db.heartbeat("url_stream", 2 * MINUTES).unwrap();
        // Both the derived-stream CQ and the subscription CQ closed
        // windows; each must have a populated latency histogram.
        let rel = db
            .execute(
                "SELECT name, value FROM streamrel_metrics \
                 WHERE kind = 'histogram' ORDER BY name",
            )
            .unwrap()
            .rows();
        let find = |n: &str| {
            rel.rows()
                .iter()
                .find(|r| r[0] == Value::text(n))
                .unwrap_or_else(|| panic!("missing histogram `{n}`"))[1]
                .as_int()
                .unwrap()
        };
        assert_eq!(find("cq.close_us.urls_now"), 2, "two windows closed");
        assert_eq!(find(&format!("cq.close_us.sub_{}", sub.0)), 2);
        db.unsubscribe(sub).unwrap();
        let rel = db
            .execute(&format!(
                "SELECT count(*) FROM streamrel_metrics \
                 WHERE name = 'cq.close_us.sub_{}'",
                sub.0
            ))
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row![0i64], "instrument removed with sub");
    }

    #[test]
    fn trace_relation_records_runtime_decisions() {
        let db = db();
        setup_paper_objects(&db);
        db.ingest("url_stream", click("/a", 1)).unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        let rel = db
            .execute("SELECT kind, scope FROM streamrel_trace WHERE kind = 'cq.close'")
            .unwrap()
            .rows();
        assert!(!rel.is_empty(), "window close must be traced");
        assert_eq!(rel.rows()[0][1], Value::text("urls_now"));
    }

    #[test]
    fn reserved_prefix_rejected_for_user_objects() {
        let db = db();
        assert!(db
            .execute("CREATE TABLE streamrel_metrics (a integer)")
            .is_err());
        assert!(db
            .execute("CREATE STREAM streamrel_s (v integer, ts timestamp CQTIME USER)")
            .is_err());
        assert!(db.execute("CREATE VIEW streamrel_v AS SELECT 1").is_err());
        assert!(db
            .execute("CREATE TABLE streamrel_anything AS SELECT 1 a")
            .is_err());
    }

    #[test]
    fn queue_depth_gauge_agrees_with_db_stats() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        let sub = db
            .execute("SELECT count(*) c FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        let gauge = db.engine().metrics().gauge("db.sub_queue_depth");
        db.ingest("s", row![1i64, Value::Timestamp(1)]).unwrap();
        db.heartbeat("s", 3 * MINUTES).unwrap();
        assert_eq!(db.stats().sub_queued, 3);
        assert_eq!(gauge.get(), 3);
        db.poll(sub).unwrap();
        assert_eq!(db.stats().sub_queued, 0);
        assert_eq!(gauge.get(), 0);
        db.heartbeat("s", 4 * MINUTES).unwrap();
        db.unsubscribe(sub).unwrap();
        assert_eq!(gauge.get(), 0, "pending results leave with the sub");
    }

    #[test]
    fn derived_stream_requires_continuous_query() {
        let db = db();
        db.execute("CREATE TABLE t (a integer)").unwrap();
        let e = db
            .execute("CREATE STREAM d AS SELECT a FROM t")
            .unwrap_err();
        assert!(e.to_string().contains("continuous"), "{e}");
    }

    /// Regression: when one CQ's window evaluation fails, windows already
    /// produced by *other* CQs on the same stream used to be silently
    /// dropped (the pump never ran). Partial outputs must be delivered,
    /// then the error returned.
    #[test]
    fn heartbeat_delivers_partial_outputs_before_erroring() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        // CQ 1: healthy.
        let healthy = db
            .execute("SELECT count(*) c, cq_close(*) w FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        // CQ 2: admits statically, but divides by min(v)=0 at runtime.
        let doomed = db
            .execute("SELECT 1 / min(v) r, cq_close(*) w FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        db.ingest("s", row![0i64, Value::Timestamp(10_000_000)])
            .unwrap();
        let err = db.heartbeat("s", MINUTES).unwrap_err();
        assert!(err.to_string().contains("division by zero"), "{err}");
        // The healthy CQ's window survived the neighbour's failure.
        let outs = db.poll(healthy).unwrap();
        assert_eq!(outs.len(), 1, "healthy CQ output was dropped");
        assert_eq!(outs[0].relation.rows()[0][0], Value::Int(1));
        assert!(db.poll(doomed).unwrap().is_empty());
        // Same contract on the ingest path: a zero lands in the next
        // window, and the tuple that closes it still delivers the
        // healthy CQ's output before the doomed CQ's error surfaces.
        db.ingest("s", row![0i64, Value::Timestamp(70_000_000)])
            .unwrap();
        db.ingest("s", row![5i64, Value::Timestamp(130_000_000)])
            .unwrap_err();
        assert_eq!(db.poll(healthy).unwrap().len(), 1);
    }

    /// The `db.sub_queue_depth` gauge must equal the sum of pending
    /// results across live subscriptions at all times — including after
    /// forced overflow drops under both policies.
    #[test]
    fn queue_depth_gauge_is_conserved_under_overflow() {
        for policy in [OverflowPolicy::DropOldest, OverflowPolicy::DropNewest] {
            let db = Db::in_memory(DbOptions::default().with_sub_queue(2, policy));
            db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
                .unwrap();
            let a = db
                .execute("SELECT count(*) c FROM s <TUMBLING '1 minute'>")
                .unwrap()
                .subscription();
            let b = db
                .execute("SELECT sum(v) t FROM s <TUMBLING '1 minute'>")
                .unwrap()
                .subscription();
            let gauge = db.engine().metrics().gauge("db.sub_queue_depth");
            let pending_sum = |db: &Db| {
                let subs = db.subs.lock();
                subs.values().map(|s| s.pending() as i64).sum::<i64>()
            };
            db.ingest("s", row![1i64, Value::Timestamp(1)]).unwrap();
            // Close 5 windows against capacity-2 queues: 3 forced drops
            // per subscription under either policy.
            db.heartbeat("s", 5 * MINUTES).unwrap();
            assert_eq!(db.stats().sub_drops, 6);
            assert_eq!(gauge.get(), 4, "2 queues × capacity 2 ({policy:?})");
            assert_eq!(gauge.get(), pending_sum(&db));
            // Drain one sub: gauge follows.
            assert_eq!(db.poll(a).unwrap().len(), 2);
            assert_eq!(gauge.get(), pending_sum(&db));
            assert_eq!(gauge.get(), 2);
            // Overflow again on the other sub.
            db.heartbeat("s", 8 * MINUTES).unwrap();
            assert_eq!(gauge.get(), pending_sum(&db));
            // Unsubscribing with results still queued settles the gauge.
            db.unsubscribe(b).unwrap();
            assert_eq!(gauge.get(), pending_sum(&db));
            db.unsubscribe(a).unwrap();
            assert_eq!(gauge.get(), 0, "all depth released ({policy:?})");
        }
    }

    #[test]
    fn attached_subscriptions_share_one_cq() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        let primary = db
            .execute("SELECT sum(v) t, cq_close(*) w FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        let member = db.subscribe_attach(primary).unwrap();
        assert_ne!(primary, member);
        assert_eq!(
            db.subscription_cq(primary),
            db.subscription_cq(member),
            "attach joins the primary's CQ, it does not start a new one"
        );
        let windows_before = db.stats().windows_out;
        db.ingest("s", row![5i64, Value::Timestamp(1)]).unwrap();
        db.heartbeat("s", MINUTES).unwrap();
        // The CQ ran once; both members received that one window.
        assert_eq!(db.stats().windows_out, windows_before + 1);
        let a = db.poll_shared(primary).unwrap();
        let b = db.poll_shared(member).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(
            Arc::ptr_eq(&a[0], &b[0]),
            "fan-out shares the window allocation, it does not copy"
        );
        assert_eq!(a[0].relation.rows()[0][0], Value::Int(5));
    }

    #[test]
    fn attached_member_survives_primary_unsubscribe() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        let primary = db
            .execute("SELECT count(*) c FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        let member = db.subscribe_attach(primary).unwrap();
        db.unsubscribe(primary).unwrap();
        assert!(db.poll(primary).is_err());
        // The CQ keeps running for the surviving member.
        db.ingest("s", row![1i64, Value::Timestamp(1)]).unwrap();
        db.heartbeat("s", MINUTES).unwrap();
        assert_eq!(db.poll(member).unwrap().len(), 1);
        // Attaching to a departed subscription is an error.
        assert!(db.subscribe_attach(primary).is_err());
        // Last member out tears the CQ down and releases its budget.
        db.unsubscribe(member).unwrap();
        assert!(db.poll(member).is_err());
        assert_eq!(db.catalog.lock().admitted_state_bytes, 0);
    }

    #[test]
    fn attached_members_drop_independently_on_overflow() {
        let db = Db::in_memory(DbOptions::default().with_sub_queue(2, OverflowPolicy::DropOldest));
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        let primary = db
            .execute("SELECT count(*) c FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        let member = db.subscribe_attach(primary).unwrap();
        db.ingest("s", row![1i64, Value::Timestamp(1)]).unwrap();
        // 5 closed windows against two capacity-2 queues: each member
        // overflows on its own account (3 drops each), and the drained
        // survivors are the same shared windows on both sides.
        db.heartbeat("s", 5 * MINUTES).unwrap();
        assert_eq!(db.stats().sub_drops, 6);
        let a = db.poll_shared(primary).unwrap();
        let b = db.poll_shared(member).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert!(Arc::ptr_eq(x, y));
        }
    }
}
