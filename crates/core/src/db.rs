//! The stream-relational database object.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use streamrel_check::{check_plan, CheckContext};
use streamrel_cq::recovery::{load_watermark, save_watermark_txn};
use streamrel_cq::{ContinuousQuery, CqOutput, CqStats, ReorderBuffer, SharedRegistry};
use streamrel_exec::{execute, ExecContext, ExecMetrics};
use streamrel_obs::{Counter, Gauge, Histogram};
use streamrel_sql::analyzer::Analyzer;
use streamrel_sql::ast::{ChannelMode, ColumnDef, Expr, ObjectKind, Query, ShowKind, Statement};
use streamrel_sql::parser::{parse_statement, parse_statements};
use streamrel_sql::plan::{BoundExpr, LogicalPlan};
use streamrel_storage::StorageEngine;
use streamrel_types::{Column, Error, Relation, Result, Row, Schema, Timestamp, Value};

use crate::options::DbOptions;
use crate::provider::{CatalogProvider, StreamDecl};
use crate::subscription::{ResultNotifier, Subscription, SubscriptionId};

/// Result of [`Db::execute`].
#[derive(Debug)]
pub enum ExecResult {
    /// DDL succeeded; the created object's name.
    Created(String),
    /// DROP succeeded (or IF EXISTS found nothing).
    Dropped(String),
    /// Rows inserted (tables) or ingested (streams).
    Inserted(u64),
    /// Rows deleted.
    Deleted(u64),
    /// Table truncated.
    Truncated(String),
    /// Snapshot query result.
    Rows(Relation),
    /// Continuous query registered; poll with [`Db::poll`].
    Subscribed(SubscriptionId),
}

impl ExecResult {
    /// Unwrap a snapshot result (panics otherwise) — test/example sugar.
    pub fn rows(self) -> Relation {
        match self {
            ExecResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    /// Unwrap a subscription id (panics otherwise).
    pub fn subscription(self) -> SubscriptionId {
        match self {
            ExecResult::Subscribed(s) => s,
            other => panic!("expected subscription, got {other:?}"),
        }
    }
}

/// Aggregate runtime counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbStats {
    /// Tuples ingested across all streams.
    pub tuples_in: u64,
    /// Window results produced across all CQs.
    pub windows_out: u64,
    /// Rows archived into Active Tables by channels.
    pub rows_archived: u64,
    /// Tuples dropped as too late (outside slack).
    pub late_drops: u64,
    /// Window results dropped because a subscription queue overflowed.
    pub sub_drops: u64,
    /// Currently registered client subscriptions.
    pub live_subs: u64,
    /// Window results currently queued across all subscriptions.
    pub sub_queued: u64,
}

struct BaseStream {
    decl: StreamDecl,
    reorder: Option<ReorderBuffer>,
    cq_ids: Vec<u64>,
    raw_channels: Vec<String>,
}

struct Derived {
    decl: StreamDecl,
    cq_id: u64,
    channels: Vec<String>,
    downstream_cqs: Vec<u64>,
}

struct Channel {
    table: String,
    mode: ChannelMode,
    rows_written: u64,
}

enum Sink {
    /// Feed a derived stream's subscribers.
    Derived(String),
    /// Queue for a client subscription.
    Client(SubscriptionId),
}

struct CqEntry {
    cq: ContinuousQuery,
    sink: Sink,
    /// Window-close latency (tuple arrival → result enqueued), µs. One
    /// instrument per CQ, registered as `cq.close_us.<name>`.
    close_hist: Arc<Histogram>,
}

// lock-order: inner < g
//
// The `Db::inner` mutex is always acquired before any shared-group mutex
// (`g`, via `SharedRegistry`); streamrel-lint checks every function in
// this file against that order.
struct Inner {
    streams: HashMap<String, BaseStream>,
    deriveds: HashMap<String, Derived>,
    views: HashMap<String, String>,
    channels: HashMap<String, Channel>,
    cqs: HashMap<u64, CqEntry>,
    subs: HashMap<SubscriptionId, Subscription>,
    registry: SharedRegistry,
    next_cq: u64,
    next_sub: u64,
    ddl_seq: u64,
    stats: DbStats,
}

/// Cached handles into the engine's metrics registry. Held as `Arc`s so
/// the ingest/pump hot paths never touch the registry lock.
struct DbMetrics {
    tuples_in: Arc<Counter>,
    windows_out: Arc<Counter>,
    rows_archived: Arc<Counter>,
    late_drops: Arc<Counter>,
    sub_drops: Arc<Counter>,
    sub_queue_depth: Arc<Gauge>,
    /// Plans refused by the Level-1 admission check.
    check_rejected: Arc<Counter>,
    /// Warnings attached to admitted plans.
    check_warned: Arc<Counter>,
    exec: ExecMetrics,
}

impl DbMetrics {
    fn register(registry: &streamrel_obs::Registry) -> DbMetrics {
        DbMetrics {
            tuples_in: registry.counter("db.tuples_in"),
            windows_out: registry.counter("db.windows_out"),
            rows_archived: registry.counter("db.rows_archived"),
            late_drops: registry.counter("db.late_drops"),
            sub_drops: registry.counter("db.sub_drops"),
            sub_queue_depth: registry.gauge("db.sub_queue_depth"),
            check_rejected: registry.counter("check.rejected"),
            check_warned: registry.counter("check.warned"),
            exec: ExecMetrics::register(registry),
        }
    }
}

/// The stream-relational database: one SQL entry point over tables,
/// streams and their combinations (§2.3).
pub struct Db {
    engine: Arc<StorageEngine>,
    options: DbOptions,
    inner: Mutex<Inner>,
    notify: Arc<ResultNotifier>,
    metrics: DbMetrics,
}

impl Db {
    /// Purely in-memory database (no WAL); for tests and baselines.
    pub fn in_memory(options: DbOptions) -> Db {
        Db::with_engine(Arc::new(StorageEngine::in_memory()), options)
    }

    /// Open (or create) a durable database at `dir`. Recovers durable
    /// state via the WAL, then replays persisted DDL to rebuild streams,
    /// views, derived streams and channels, then restores each derived
    /// CQ's position from its Active-Table watermark (§4 recovery).
    pub fn open(dir: impl AsRef<Path>, options: DbOptions) -> Result<Db> {
        let engine = Arc::new(StorageEngine::open_with(dir.as_ref(), options.sync)?);
        let db = Db::with_engine(engine, options);
        db.replay_ddl()?;
        db.restore_watermarks()?;
        Ok(db)
    }

    fn with_engine(engine: Arc<StorageEngine>, options: DbOptions) -> Db {
        let metrics = DbMetrics::register(engine.metrics());
        Db {
            engine,
            options,
            inner: Mutex::new(Inner {
                streams: HashMap::new(),
                deriveds: HashMap::new(),
                views: HashMap::new(),
                channels: HashMap::new(),
                cqs: HashMap::new(),
                subs: HashMap::new(),
                registry: SharedRegistry::new(),
                next_cq: 1,
                next_sub: 1,
                ddl_seq: 1,
                stats: DbStats::default(),
            }),
            notify: ResultNotifier::new(),
            metrics,
        }
    }

    /// The underlying storage engine (checkpointing, stats, direct scans).
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    /// Aggregate runtime counters.
    pub fn stats(&self) -> DbStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        stats.live_subs = inner.subs.len() as u64;
        stats.sub_queued = inner.subs.values().map(|s| s.pending() as u64).sum();
        stats
    }

    /// Snapshot of the `streamrel_metrics` virtual relation — the same
    /// relation `SELECT * FROM streamrel_metrics`, `SHOW METRICS` and the
    /// wire protocol's `Stats` frame all serve.
    pub fn metrics_relation(&self) -> Relation {
        self.engine.metrics().to_relation()
    }

    /// Snapshot of the `streamrel_trace` virtual relation (the trace ring).
    pub fn trace_relation(&self) -> Relation {
        self.engine.metrics().trace().to_relation()
    }

    /// Wakes whenever a client subscription receives a window result.
    /// Blocking consumers (the network server's delivery threads) wait on
    /// this instead of polling.
    pub fn notifier(&self) -> Arc<ResultNotifier> {
        self.notify.clone()
    }

    /// Schema of a base stream, if `name` is one.
    pub fn stream_schema(&self, name: &str) -> Option<streamrel_sql::plan::SchemaRef> {
        self.inner
            .lock()
            .streams
            .get(&name.to_ascii_lowercase())
            .map(|s| s.decl.schema.clone())
    }

    /// Per-CQ counters for the CQ backing derived stream `name`.
    pub fn derived_cq_stats(&self, name: &str) -> Option<CqStats> {
        let inner = self.inner.lock();
        let d = inner.deriveds.get(&name.to_ascii_lowercase())?;
        inner.cqs.get(&d.cq_id).map(|e| e.cq.stats())
    }

    // ---- SQL entry points ---------------------------------------------------

    /// Execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<ExecResult> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(stmt, sql, true)
    }

    /// Execute a semicolon-separated script, returning the last result.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<ExecResult>> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            // Re-render is lossy; persist the original only for
            // single-statement DDL (scripts re-persist per statement by
            // rendering). For simplicity persist the whole source per DDL
            // statement is wrong, so scripts re-parse from stored text —
            // store the statement's own text via Debug-free rendering is
            // unavailable; instead persist the original sql only when the
            // script has exactly one statement.
            out.push(self.execute_stmt(stmt, sql, false)?);
        }
        Ok(out)
    }

    /// Drain pending window results for a subscription.
    pub fn poll(&self, sub: SubscriptionId) -> Result<Vec<CqOutput>> {
        let mut inner = self.inner.lock();
        let outs = inner
            .subs
            .get_mut(&sub)
            .map(Subscription::drain)
            .ok_or_else(|| Error::stream(format!("unknown subscription {sub:?}")))?;
        self.metrics.sub_queue_depth.sub(outs.len() as i64);
        Ok(outs)
    }

    /// Push one tuple into a base stream (programmatic fast path; the SQL
    /// path is `INSERT INTO <stream> VALUES ...`).
    pub fn ingest(&self, stream: &str, row: Row) -> Result<()> {
        self.ingest_batch(stream, vec![row])
    }

    /// Push many tuples (one archiving transaction for raw channels).
    pub fn ingest_batch(&self, stream: &str, rows: Vec<Row>) -> Result<()> {
        // One timestamp per ingest event; every window this batch closes
        // measures its latency from here (arrival → result enqueued).
        let start = Instant::now();
        let mut inner = self.inner.lock();
        self.ingest_locked(&mut inner, stream, rows, start)
    }

    /// Advance a stream's event time without data: closes due windows of
    /// every CQ over the stream (punctuation / heartbeat).
    pub fn heartbeat(&self, stream: &str, ts: Timestamp) -> Result<()> {
        let start = Instant::now();
        let mut inner = self.inner.lock();
        let key = stream.to_ascii_lowercase();
        let cq_ids = inner
            .streams
            .get(&key)
            .ok_or_else(|| Error::stream(format!("unknown stream `{stream}`")))?
            .cq_ids
            .clone();
        let mut emitted = Vec::new();
        for id in cq_ids {
            let entry = inner
                .cqs
                .get_mut(&id)
                .ok_or_else(|| Error::stream(format!("cq {id} not registered")))?;
            let outs = entry.cq.on_heartbeat(ts)?;
            emitted.push((id, outs));
        }
        self.pump(&mut inner, emitted, start)
    }

    // ---- statement dispatch -------------------------------------------------

    fn execute_stmt(&self, stmt: Statement, sql: &str, persistable: bool) -> Result<ExecResult> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                check_reserved(&name)?;
                if if_not_exists && self.engine.has_table(&name) {
                    return Ok(ExecResult::Created(name));
                }
                let schema = column_defs_to_schema(&columns)?;
                self.engine.create_table(&name, schema)?;
                Ok(ExecResult::Created(name))
            }
            Statement::CreateStream {
                name,
                columns,
                if_not_exists,
            } => self.create_stream(&name, &columns, if_not_exists, sql, persistable),
            Statement::CreateDerivedStream { name, query } => {
                self.create_derived(&name, &query, sql, persistable)
            }
            Statement::CreateView { name, query } => {
                self.create_view(&name, &query, sql, persistable)
            }
            Statement::CreateChannel {
                name,
                from_stream,
                into_table,
                mode,
            } => self.create_channel(&name, &from_stream, &into_table, mode, sql, persistable),
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => {
                self.engine.create_index(&name, &table, &columns)?;
                Ok(ExecResult::Created(name))
            }
            Statement::Drop {
                kind,
                name,
                if_exists,
            } => self.drop_object(kind, &name, if_exists),
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.insert(&table, columns.as_deref(), &rows),
            Statement::Delete { table, filter } => self.delete(&table, filter.as_ref()),
            Statement::Truncate { table } => {
                let id = self.engine.table_id(&table)?;
                self.engine.truncate(id)?;
                Ok(ExecResult::Truncated(table))
            }
            Statement::Select(query) => self.select(&query),
            Statement::CreateTableAs { name, query } => self.create_table_as(&name, &query),
            Statement::Explain(query) => self.explain(&query),
            Statement::ExplainCheck(query) => self.explain_check(&query),
            Statement::Show(kind) => Ok(ExecResult::Rows(self.show(kind))),
            Statement::Checkpoint => {
                self.engine.checkpoint()?;
                Ok(ExecResult::Created("checkpoint".into()))
            }
            Statement::Vacuum => {
                let n = self.engine.vacuum();
                Ok(ExecResult::Deleted(n as u64))
            }
        }
    }

    /// `CREATE TABLE name AS <snapshot query>`.
    fn create_table_as(&self, name: &str, query: &Query) -> Result<ExecResult> {
        let analyzed = {
            let inner = self.inner.lock();
            self.check_name_free(&inner, &name.to_ascii_lowercase())?;
            let provider = self.provider(&inner);
            Analyzer::new(&provider).analyze(query)?
        };
        if analyzed.is_continuous {
            return Err(Error::analysis(
                "CREATE TABLE AS requires a snapshot query                  (use CREATE STREAM ... AS + a channel for continuous results)",
            ));
        }
        let source = streamrel_cq::SnapshotSource::pin(self.engine.clone());
        let rel = execute(&analyzed.plan, &ExecContext::snapshot(&source))?;
        // Result columns may repeat names; disambiguate for the table.
        let mut cols: Vec<Column> = Vec::with_capacity(rel.schema().len());
        for c in rel.schema().columns() {
            let mut name = c.name.clone();
            let mut k = 1;
            while cols
                .iter()
                .any(|p: &Column| p.name.eq_ignore_ascii_case(&name))
            {
                k += 1;
                name = format!("{}_{k}", c.name);
            }
            cols.push(Column {
                name,
                ty: c.ty,
                nullable: true,
            });
        }
        let id = self.engine.create_table(name, Schema::new(cols)?)?;
        self.engine
            .with_txn(|x| self.engine.insert_many(x, id, rel.into_rows()))?;
        Ok(ExecResult::Created(name.to_string()))
    }

    /// `EXPLAIN <select>`: the bound plan, one node per row, plus the
    /// SQ/CQ classification of §3.1.
    fn explain(&self, query: &Query) -> Result<ExecResult> {
        let analyzed = {
            let inner = self.inner.lock();
            let provider = self.provider(&inner);
            Analyzer::new(&provider).analyze(query)?
        };
        let schema = Arc::new(Schema::new_unchecked(vec![Column::new(
            "plan",
            streamrel_types::DataType::Text,
        )]));
        let mut rel = Relation::empty(schema);
        let kind = if analyzed.is_continuous {
            "Continuous Query (CQ): runs once per window"
        } else {
            "Snapshot Query (SQ): runs once over current state"
        };
        rel.push(vec![Value::text(kind)]);
        for line in analyzed.plan.explain().lines() {
            rel.push(vec![Value::text(line)]);
        }
        Ok(ExecResult::Rows(rel))
    }

    /// `EXPLAIN CHECK <select>`: the Level-1 static-safety report — the
    /// SQ/CQ classification, the admission verdict, every rule finding
    /// with its fix hint, and the conservative state-size bound — without
    /// registering anything.
    fn explain_check(&self, query: &Query) -> Result<ExecResult> {
        let report = {
            let inner = self.inner.lock();
            let provider = self.provider(&inner);
            let analyzed = Analyzer::new(&provider).analyze(query)?;
            check_plan(
                &analyzed.plan,
                &CheckContext {
                    sharing: self.options.sharing,
                    registry: Some(&inner.registry),
                },
            )
        };
        Ok(ExecResult::Rows(report.to_relation()))
    }

    /// The Level-1 admission gate: every continuous plan is statically
    /// classified by `streamrel-check` *before* any runtime state (window
    /// buffers, subscriptions, shared-group membership) is allocated.
    /// Rejections surface as [`Error::Check`] with a fix hint; warnings
    /// only bump the `check.warned` counter.
    fn admit_plan(&self, inner: &Inner, plan: &LogicalPlan) -> Result<()> {
        let report = check_plan(
            plan,
            &CheckContext {
                sharing: self.options.sharing,
                registry: Some(&inner.registry),
            },
        );
        if let Some(err) = report.to_error() {
            self.metrics.check_rejected.inc();
            return Err(err);
        }
        self.metrics.check_warned.add(report.warnings() as u64);
        Ok(())
    }

    /// `SHOW TABLES|STREAMS|VIEWS|CHANNELS|METRICS|TRACE`.
    fn show(&self, kind: ShowKind) -> Relation {
        match kind {
            ShowKind::Metrics => return self.metrics_relation(),
            ShowKind::Trace => return self.trace_relation(),
            _ => {}
        }
        let inner = self.inner.lock();
        let schema = |cols: &[&str]| {
            Arc::new(Schema::new_unchecked(
                cols.iter()
                    .map(|c| Column::new(*c, streamrel_types::DataType::Text))
                    .collect(),
            ))
        };
        match kind {
            ShowKind::Tables => {
                let mut rel = Relation::empty(schema(&["table", "columns"]));
                for name in self.engine.table_names() {
                    let cols = self
                        .engine
                        .table_schema(&name)
                        .map(|s| s.to_string())
                        .unwrap_or_default();
                    rel.push(vec![Value::text(&name), Value::text(cols)]);
                }
                rel
            }
            ShowKind::Streams => {
                let mut rel = Relation::empty(schema(&["stream", "kind", "columns"]));
                let mut names: Vec<_> = inner.streams.keys().cloned().collect();
                names.sort();
                for name in names {
                    let s = &inner.streams[&name];
                    rel.push(vec![
                        Value::text(&name),
                        Value::text("base"),
                        Value::text(s.decl.schema.to_string()),
                    ]);
                }
                let mut names: Vec<_> = inner.deriveds.keys().cloned().collect();
                names.sort();
                for name in names {
                    let d = &inner.deriveds[&name];
                    rel.push(vec![
                        Value::text(&name),
                        Value::text("derived"),
                        Value::text(d.decl.schema.to_string()),
                    ]);
                }
                rel
            }
            ShowKind::Views => {
                let mut rel = Relation::empty(schema(&["view", "definition"]));
                let mut names: Vec<_> = inner.views.keys().cloned().collect();
                names.sort();
                for name in names {
                    rel.push(vec![Value::text(&name), Value::text(&inner.views[&name])]);
                }
                rel
            }
            ShowKind::Channels => {
                let mut rel =
                    Relation::empty(schema(&["channel", "into_table", "mode", "rows_written"]));
                let mut names: Vec<_> = inner.channels.keys().cloned().collect();
                names.sort();
                for name in names {
                    let c = &inner.channels[&name];
                    rel.push(vec![
                        Value::text(&name),
                        Value::text(&c.table),
                        Value::text(match c.mode {
                            ChannelMode::Append => "APPEND",
                            ChannelMode::Replace => "REPLACE",
                        }),
                        Value::text(c.rows_written.to_string()),
                    ]);
                }
                rel
            }
            ShowKind::Metrics | ShowKind::Trace => unreachable!("handled above"),
        }
    }

    fn create_stream(
        &self,
        name: &str,
        columns: &[ColumnDef],
        if_not_exists: bool,
        sql: &str,
        persist: bool,
    ) -> Result<ExecResult> {
        let mut inner = self.inner.lock();
        let key = name.to_ascii_lowercase();
        if inner.streams.contains_key(&key) {
            if if_not_exists {
                return Ok(ExecResult::Created(name.to_string()));
            }
            return Err(Error::catalog(format!("stream `{name}` already exists")));
        }
        self.check_name_free(&inner, &key)?;
        let schema = column_defs_to_schema(columns)?;
        let cqtime = columns.iter().position(|c| c.cqtime_user);
        if let Some(i) = cqtime {
            if columns[i].ty != streamrel_types::DataType::Timestamp {
                return Err(Error::analysis("CQTIME column must be a timestamp"));
            }
        }
        let decl = StreamDecl {
            schema: Arc::new(schema),
            cqtime,
        };
        let reorder = match (self.options.slack, cqtime) {
            (s, Some(c)) if s > 0 => Some(ReorderBuffer::new(c, s)),
            _ => None,
        };
        inner.streams.insert(
            key.clone(),
            BaseStream {
                decl,
                reorder,
                cq_ids: Vec::new(),
                raw_channels: Vec::new(),
            },
        );
        if persist {
            self.persist_ddl(&mut inner, "stream", &key, sql)?;
        }
        Ok(ExecResult::Created(name.to_string()))
    }

    fn create_view(
        &self,
        name: &str,
        _query: &Query,
        sql: &str,
        persist: bool,
    ) -> Result<ExecResult> {
        let mut inner = self.inner.lock();
        let key = name.to_ascii_lowercase();
        self.check_name_free(&inner, &key)?;
        // Validate by analyzing now (errors surface at CREATE time).
        {
            let provider = self.provider(&inner);
            let Statement::CreateView { query, .. } = parse_statement(sql)? else {
                return Err(Error::analysis("stored view text is not CREATE VIEW"));
            };
            Analyzer::new(&provider).analyze(&query)?;
        }
        inner.views.insert(key.clone(), sql.to_string());
        if persist {
            self.persist_ddl(&mut inner, "view", &key, sql)?;
        }
        Ok(ExecResult::Created(name.to_string()))
    }

    fn create_derived(
        &self,
        name: &str,
        query: &Query,
        sql: &str,
        persist: bool,
    ) -> Result<ExecResult> {
        let mut inner = self.inner.lock();
        let key = name.to_ascii_lowercase();
        self.check_name_free(&inner, &key)?;
        let analyzed = {
            let provider = self.provider(&inner);
            Analyzer::new(&provider).analyze(query)?
        };
        if !analyzed.is_continuous {
            return Err(Error::analysis(
                "CREATE STREAM ... AS requires a continuous query \
                 (use CREATE VIEW or CREATE TABLE AS for snapshot queries)",
            ));
        }
        self.admit_plan(&inner, &analyzed.plan)?;
        let mut cq = ContinuousQuery::new(
            key.clone(),
            &analyzed,
            self.engine.clone(),
            self.options.consistency,
        )?;
        // Slice sharing applies to base-stream aggregates only: derived
        // streams deliver whole result batches, not tuples.
        if self.options.sharing
            && inner
                .streams
                .contains_key(&cq.stream().to_ascii_lowercase())
        {
            cq.try_share(&mut inner.registry);
        }
        let out_schema = analyzed.plan.schema();
        let cqtime = find_cq_close_column(&analyzed.plan);
        let upstream = cq.stream().to_string();
        let cq_id = inner.next_cq;
        inner.next_cq += 1;
        inner.cqs.insert(
            cq_id,
            CqEntry {
                cq,
                sink: Sink::Derived(key.clone()),
                close_hist: self
                    .engine
                    .metrics()
                    .histogram(&format!("cq.close_us.{key}")),
            },
        );
        self.attach_cq(&mut inner, &upstream, cq_id)?;
        inner.deriveds.insert(
            key.clone(),
            Derived {
                decl: StreamDecl {
                    schema: out_schema,
                    cqtime,
                },
                cq_id,
                channels: Vec::new(),
                downstream_cqs: Vec::new(),
            },
        );
        if persist {
            self.persist_ddl(&mut inner, "derived", &key, sql)?;
        }
        Ok(ExecResult::Created(name.to_string()))
    }

    fn create_channel(
        &self,
        name: &str,
        from_stream: &str,
        into_table: &str,
        mode: ChannelMode,
        sql: &str,
        persist: bool,
    ) -> Result<ExecResult> {
        let mut inner = self.inner.lock();
        let key = name.to_ascii_lowercase();
        if inner.channels.contains_key(&key) {
            return Err(Error::catalog(format!("channel `{name}` already exists")));
        }
        let from_key = from_stream.to_ascii_lowercase();
        let table_schema = self.engine.table_schema(into_table)?;
        // Validate schema compatibility (arity; types are coerced at
        // insert, so a count/arity check catches the real mistakes).
        let src_schema = if let Some(d) = inner.deriveds.get(&from_key) {
            d.decl.schema.clone()
        } else if let Some(s) = inner.streams.get(&from_key) {
            s.decl.schema.clone()
        } else {
            return Err(Error::catalog(format!(
                "channel source `{from_stream}` is not a stream"
            )));
        };
        if src_schema.len() != table_schema.len() {
            return Err(Error::analysis(format!(
                "channel source has {} columns but table `{into_table}` has {}",
                src_schema.len(),
                table_schema.len()
            )));
        }
        inner.channels.insert(
            key.clone(),
            Channel {
                table: into_table.to_string(),
                mode,
                rows_written: 0,
            },
        );
        if let Some(d) = inner.deriveds.get_mut(&from_key) {
            d.channels.push(key.clone());
        } else if let Some(s) = inner.streams.get_mut(&from_key) {
            s.raw_channels.push(key.clone());
        }
        if persist {
            self.persist_ddl(&mut inner, "channel", &key, sql)?;
        }
        Ok(ExecResult::Created(name.to_string()))
    }

    fn drop_object(&self, kind: ObjectKind, name: &str, if_exists: bool) -> Result<ExecResult> {
        let key = name.to_ascii_lowercase();
        let missing = |what: &str| {
            if if_exists {
                Ok(ExecResult::Dropped(name.to_string()))
            } else {
                Err(Error::catalog(format!("{what} `{name}` does not exist")))
            }
        };
        match kind {
            ObjectKind::Table => {
                if !self.engine.has_table(&key) {
                    return missing("table");
                }
                self.engine.drop_table(&key)?;
                Ok(ExecResult::Dropped(name.to_string()))
            }
            ObjectKind::View => {
                let mut inner = self.inner.lock();
                if inner.views.remove(&key).is_none() {
                    return missing("view");
                }
                self.unpersist_ddl(&mut inner, "view", &key)?;
                Ok(ExecResult::Dropped(name.to_string()))
            }
            ObjectKind::Stream => {
                let mut inner = self.inner.lock();
                if let Some(d) = inner.deriveds.get(&key) {
                    if !d.downstream_cqs.is_empty() || !d.channels.is_empty() {
                        return Err(Error::catalog(format!(
                            "derived stream `{name}` has dependents; drop them first"
                        )));
                    }
                    let cq_id = d.cq_id;
                    inner.deriveds.remove(&key);
                    inner.cqs.remove(&cq_id);
                    self.engine.metrics().remove(&format!("cq.close_us.{key}"));
                    // Detach from upstream lists.
                    for s in inner.streams.values_mut() {
                        s.cq_ids.retain(|&id| id != cq_id);
                    }
                    for d in inner.deriveds.values_mut() {
                        d.downstream_cqs.retain(|&id| id != cq_id);
                    }
                    self.unpersist_ddl(&mut inner, "derived", &key)?;
                    return Ok(ExecResult::Dropped(name.to_string()));
                }
                if let Some(s) = inner.streams.get(&key) {
                    if !s.cq_ids.is_empty() || !s.raw_channels.is_empty() {
                        return Err(Error::catalog(format!(
                            "stream `{name}` has dependents; drop them first"
                        )));
                    }
                    inner.streams.remove(&key);
                    self.unpersist_ddl(&mut inner, "stream", &key)?;
                    return Ok(ExecResult::Dropped(name.to_string()));
                }
                missing("stream")
            }
            ObjectKind::Channel => {
                let mut inner = self.inner.lock();
                if inner.channels.remove(&key).is_none() {
                    return missing("channel");
                }
                for d in inner.deriveds.values_mut() {
                    d.channels.retain(|c| c != &key);
                }
                for s in inner.streams.values_mut() {
                    s.raw_channels.retain(|c| c != &key);
                }
                self.unpersist_ddl(&mut inner, "channel", &key)?;
                Ok(ExecResult::Dropped(name.to_string()))
            }
            ObjectKind::Index => {
                if self.engine.drop_index(&key)? {
                    Ok(ExecResult::Dropped(name.to_string()))
                } else {
                    missing("index")
                }
            }
        }
    }

    fn insert(
        &self,
        target: &str,
        columns: Option<&[String]>,
        value_rows: &[Vec<Expr>],
    ) -> Result<ExecResult> {
        // Evaluate constant expressions.
        let analyzer_rows: Vec<Row> = {
            let inner = self.inner.lock();
            let provider = self.provider(&inner);
            let analyzer = Analyzer::new(&provider);
            let mut out = Vec::with_capacity(value_rows.len());
            for exprs in value_rows {
                let mut row = Vec::with_capacity(exprs.len());
                for e in exprs {
                    let bound = analyzer.bind_constant(e)?;
                    row.push(streamrel_exec::eval(
                        &bound,
                        &[],
                        &streamrel_exec::EvalContext::default(),
                    )?);
                }
                out.push(row);
            }
            out
        };
        let key = target.to_ascii_lowercase();
        // Stream ingest path.
        let stream_schema = {
            let inner = self.inner.lock();
            inner.streams.get(&key).map(|s| s.decl.schema.clone())
        };
        if let Some(schema) = stream_schema {
            let rows = reorder_columns(&schema, columns, analyzer_rows)?;
            let n = rows.len() as u64;
            self.ingest_batch(&key, rows)?;
            return Ok(ExecResult::Inserted(n));
        }
        // Table path.
        let schema = self.engine.table_schema(target)?;
        let rows = reorder_columns(&schema, columns, analyzer_rows)?;
        let id = self.engine.table_id(target)?;
        let n = self
            .engine
            .with_txn(|x| self.engine.insert_many(x, id, rows))?;
        Ok(ExecResult::Inserted(n))
    }

    fn delete(&self, table: &str, filter: Option<&Expr>) -> Result<ExecResult> {
        let schema = self.engine.table_schema(table)?;
        let id = self.engine.table_id(table)?;
        let bound = match filter {
            Some(f) => {
                let inner = self.inner.lock();
                let provider = self.provider(&inner);
                Some(Analyzer::new(&provider).bind_over_schema(f, &schema)?)
            }
            None => None,
        };
        let n = self.engine.with_txn(|x| {
            let snap = self.engine.snapshot_for(x);
            let victims = self.engine.scan(id, &snap)?;
            let mut n = 0;
            for (tid, row) in victims {
                let hit = match &bound {
                    Some(p) => streamrel_exec::eval_predicate(
                        p,
                        &row,
                        &streamrel_exec::EvalContext::default(),
                    )?,
                    None => true,
                };
                if hit {
                    self.engine.delete(x, tid)?;
                    n += 1;
                }
            }
            Ok(n)
        })?;
        Ok(ExecResult::Deleted(n))
    }

    fn select(&self, query: &Query) -> Result<ExecResult> {
        let mut inner = self.inner.lock();
        let analyzed = {
            let provider = self.provider(&inner);
            Analyzer::new(&provider).analyze(query)?
        };
        if !analyzed.is_continuous {
            // Snapshot query: fresh snapshot, run to completion (§3.1 SQ).
            let source = streamrel_cq::SnapshotSource::pin(self.engine.clone());
            let ctx = ExecContext::snapshot(&source).with_metrics(&self.metrics.exec);
            let rel = execute(&analyzed.plan, &ctx)?;
            return Ok(ExecResult::Rows(rel));
        }
        // Continuous query: register a subscription-backed CQ.
        self.admit_plan(&inner, &analyzed.plan)?;
        let sub_id = SubscriptionId(inner.next_sub);
        inner.next_sub += 1;
        let mut cq = ContinuousQuery::new(
            format!("sub_{}", sub_id.0),
            &analyzed,
            self.engine.clone(),
            self.options.consistency,
        )?;
        if self.options.sharing
            && inner
                .streams
                .contains_key(&cq.stream().to_ascii_lowercase())
        {
            cq.try_share(&mut inner.registry);
        }
        let upstream = cq.stream().to_string();
        let cq_id = inner.next_cq;
        inner.next_cq += 1;
        inner.cqs.insert(
            cq_id,
            CqEntry {
                cq,
                sink: Sink::Client(sub_id),
                close_hist: self
                    .engine
                    .metrics()
                    .histogram(&format!("cq.close_us.sub_{}", sub_id.0)),
            },
        );
        self.attach_cq(&mut inner, &upstream, cq_id)?;
        inner.subs.insert(
            sub_id,
            Subscription::bounded(self.options.sub_queue_capacity, self.options.sub_overflow),
        );
        Ok(ExecResult::Subscribed(sub_id))
    }

    /// Terminate a continuous query / subscription (§3.1: "CQs run until
    /// they are explicitly terminated").
    pub fn unsubscribe(&self, sub: SubscriptionId) -> Result<()> {
        let mut inner = self.inner.lock();
        let removed = inner
            .subs
            .remove(&sub)
            .ok_or_else(|| Error::stream(format!("unknown subscription {sub:?}")))?;
        // Undelivered results leave the queue with the subscription.
        self.metrics.sub_queue_depth.sub(removed.pending() as i64);
        self.engine
            .metrics()
            .remove(&format!("cq.close_us.sub_{}", sub.0));
        let ids: Vec<u64> = inner
            .cqs
            .iter()
            .filter(|(_, e)| matches!(e.sink, Sink::Client(s) if s == sub))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            inner.cqs.remove(&id);
            for s in inner.streams.values_mut() {
                s.cq_ids.retain(|&c| c != id);
            }
            for d in inner.deriveds.values_mut() {
                d.downstream_cqs.retain(|&c| c != id);
            }
        }
        drop(inner);
        // Wake blocked deliverers so they notice the subscription is gone.
        self.notify.notify();
        Ok(())
    }

    // ---- internals ------------------------------------------------------------

    fn check_name_free(&self, inner: &Inner, key: &str) -> Result<()> {
        check_reserved(key)?;
        if inner.streams.contains_key(key)
            || inner.deriveds.contains_key(key)
            || inner.views.contains_key(key)
            || self.engine.has_table(key)
        {
            return Err(Error::catalog(format!("name `{key}` is already in use")));
        }
        Ok(())
    }

    fn provider<'a>(&'a self, inner: &'a Inner) -> ProviderView<'a> {
        ProviderView {
            engine: &self.engine,
            streams: &inner.streams,
            deriveds: &inner.deriveds,
            views: &inner.views,
        }
    }

    fn attach_cq(&self, inner: &mut Inner, upstream: &str, cq_id: u64) -> Result<()> {
        let key = upstream.to_ascii_lowercase();
        if let Some(s) = inner.streams.get_mut(&key) {
            s.cq_ids.push(cq_id);
            return Ok(());
        }
        if let Some(d) = inner.deriveds.get_mut(&key) {
            d.downstream_cqs.push(cq_id);
            return Ok(());
        }
        Err(Error::stream(format!("unknown stream `{upstream}`")))
    }

    fn ingest_locked(
        &self,
        inner: &mut Inner,
        stream: &str,
        rows: Vec<Row>,
        start: Instant,
    ) -> Result<()> {
        let key = stream.to_ascii_lowercase();
        let (schema, has_reorder) = {
            let s = inner
                .streams
                .get(&key)
                .ok_or_else(|| Error::stream(format!("unknown stream `{stream}`")))?;
            (s.decl.schema.clone(), s.reorder.is_some())
        };
        // Coerce rows against the stream schema (streams enforce their
        // declared types exactly like tables do).
        let mut coerced = Vec::with_capacity(rows.len());
        for r in rows {
            coerced.push(schema.coerce_row(r)?);
        }
        // Out-of-order slack.
        let released = if has_reorder {
            let rb = inner
                .streams
                .get_mut(&key)
                .and_then(|s| s.reorder.as_mut())
                .ok_or_else(|| Error::stream(format!("reorder buffer for `{key}` vanished")))?;
            let before = rb.late_drops();
            let mut released = Vec::new();
            for r in coerced {
                released.extend(rb.push(r)?);
            }
            let dropped = rb.late_drops() - before;
            inner.stats.late_drops += dropped;
            self.metrics.late_drops.add(dropped);
            released
        } else {
            coerced
        };
        if released.is_empty() {
            return Ok(());
        }
        inner.stats.tuples_in += released.len() as u64;
        self.metrics.tuples_in.add(released.len() as u64);

        // Raw archive channels (one transaction per batch).
        let raw_channels = inner.streams[&key].raw_channels.clone();
        for ch_name in &raw_channels {
            let (table, mode) = {
                let ch = &inner.channels[ch_name];
                (ch.table.clone(), ch.mode)
            };
            let tid = self.engine.table_id(&table)?;
            let n = self.engine.with_txn(|x| {
                if mode == ChannelMode::Replace {
                    self.engine.delete_all_visible(x, tid)?;
                }
                self.engine.insert_many(x, tid, released.clone())
            })?;
            if let Some(ch) = inner.channels.get_mut(ch_name) {
                ch.rows_written += n;
            }
            inner.stats.rows_archived += n;
            self.metrics.rows_archived.add(n);
        }

        // Shared groups: fold each tuple once per group.
        let groups = inner.registry.groups_on_stream(&key);
        for g in &groups {
            let mut g = g.lock();
            for r in &released {
                g.on_tuple(r)?;
            }
        }

        // Per-CQ window advancement. Shared CQs take the timestamp-only
        // fast path: the group already aggregated each tuple once.
        let cqtime = inner.streams[&key].decl.cqtime;
        let timestamps: Option<Vec<i64>> = cqtime.map(|c| {
            released
                .iter()
                .map(|r| r[c].as_timestamp().unwrap_or(i64::MIN))
                .collect()
        });
        let cq_ids = inner.streams[&key].cq_ids.clone();
        let mut emitted = Vec::new();
        for id in cq_ids {
            let entry = inner
                .cqs
                .get_mut(&id)
                .ok_or_else(|| Error::stream(format!("cq {id} not registered")))?;
            let mut outs = Vec::new();
            if entry.cq.is_shared() {
                let ts_list = timestamps
                    .as_ref()
                    .ok_or_else(|| Error::stream("shared CQ without CQTIME"))?;
                for &ts in ts_list {
                    outs.extend(entry.cq.note_shared_tuple(ts)?);
                }
            } else {
                for r in &released {
                    outs.extend(entry.cq.on_tuple(r.clone())?);
                }
            }
            if !outs.is_empty() {
                emitted.push((id, outs));
            }
        }
        self.pump(inner, emitted, start)
    }

    /// Propagate CQ outputs through sinks: client queues, channels and
    /// downstream CQs (derived-stream composition, §3.2), breadth-first.
    /// `start` is the one timestamp taken when the triggering batch or
    /// heartbeat arrived; each CQ's close-latency histogram observes the
    /// elapsed time when its result is enqueued.
    fn pump(
        &self,
        inner: &mut Inner,
        emitted: Vec<(u64, Vec<CqOutput>)>,
        start: Instant,
    ) -> Result<()> {
        let mut queue: VecDeque<(u64, CqOutput)> = emitted
            .into_iter()
            .flat_map(|(id, outs)| outs.into_iter().map(move |o| (id, o)))
            .collect();
        let mut published = false;
        while let Some((cq_id, out)) = queue.pop_front() {
            inner.stats.windows_out += 1;
            self.metrics.windows_out.inc();
            if let Some(entry) = inner.cqs.get(&cq_id) {
                entry.close_hist.observe_from(start);
            }
            let sink_target = match &inner.cqs.get(&cq_id).map(|e| &e.sink) {
                Some(Sink::Client(s)) => {
                    let s = *s;
                    if let Some(sub) = inner.subs.get_mut(&s) {
                        let drops = sub.offer(out);
                        inner.stats.sub_drops += drops;
                        self.metrics.sub_drops.add(drops);
                        // Net queue growth: +1 unless a drop made room
                        // (both overflow policies leave the length as-is).
                        self.metrics.sub_queue_depth.add(1 - drops as i64);
                        published = true;
                    }
                    continue;
                }
                Some(Sink::Derived(name)) => name.clone(),
                None => continue, // dropped mid-flight
            };
            let (channels, downstream) = {
                let d = &inner.deriveds[&sink_target];
                (d.channels.clone(), d.downstream_cqs.clone())
            };
            // One transaction covers every channel's rows AND the resume
            // watermark, so recovery can never observe a watermark without
            // its archived window or vice versa (exactly-once archiving
            // across crashes — the §4 recovery contract).
            let mut written: Vec<(String, u64)> = Vec::new();
            self.engine.with_txn(|x| {
                for ch_name in &channels {
                    let (table, mode) = {
                        let ch = &inner.channels[ch_name];
                        (ch.table.clone(), ch.mode)
                    };
                    let tid = self.engine.table_id(&table)?;
                    if mode == ChannelMode::Replace {
                        self.engine.delete_all_visible(x, tid)?;
                    }
                    let n = self
                        .engine
                        .insert_many(x, tid, out.relation.rows().to_vec())?;
                    written.push((ch_name.clone(), n));
                }
                save_watermark_txn(&self.engine, x, &sink_target, out.close)
            })?;
            for (ch_name, n) in written {
                if let Some(ch) = inner.channels.get_mut(&ch_name) {
                    ch.rows_written += n;
                }
                inner.stats.rows_archived += n;
                self.metrics.rows_archived.add(n);
            }
            for ds in downstream {
                if let Some(entry) = inner.cqs.get_mut(&ds) {
                    let outs = entry.cq.on_batch(out.close, out.relation.rows().to_vec())?;
                    for o in outs {
                        queue.push_back((ds, o));
                    }
                }
            }
        }
        if published {
            self.notify.notify();
        }
        Ok(())
    }

    fn persist_ddl(&self, inner: &mut Inner, kind: &str, key: &str, sql: &str) -> Result<()> {
        let seq = inner.ddl_seq;
        inner.ddl_seq += 1;
        let ddl_key = format!("ddl.{seq:020}");
        self.engine.catalog_put(&ddl_key, sql)?;
        self.engine
            .catalog_put(&format!("ddlref.{kind}.{key}"), &ddl_key)?;
        Ok(())
    }

    fn unpersist_ddl(&self, inner: &mut Inner, kind: &str, key: &str) -> Result<()> {
        let _ = inner;
        let ref_key = format!("ddlref.{kind}.{key}");
        if let Some(ddl_key) = self.engine.catalog_get(&ref_key) {
            self.engine.catalog_del(&ddl_key)?;
            self.engine.catalog_del(&ref_key)?;
        }
        Ok(())
    }

    fn replay_ddl(&self) -> Result<()> {
        let entries = self.engine.catalog_scan("ddl.");
        let mut max_seq = 0u64;
        for (k, sql) in entries {
            if let Some(seq) = k.strip_prefix("ddl.").and_then(|s| s.parse::<u64>().ok()) {
                max_seq = max_seq.max(seq);
            }
            let stmt = parse_statement(&sql)?;
            self.execute_stmt(stmt, &sql, false)?;
        }
        self.inner.lock().ddl_seq = max_seq + 1;
        Ok(())
    }

    fn restore_watermarks(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let names: Vec<(String, u64)> = inner
            .deriveds
            .iter()
            .map(|(n, d)| (n.clone(), d.cq_id))
            .collect();
        for (name, cq_id) in names {
            if let Some(wm) = load_watermark(&self.engine, &name)? {
                if let Some(entry) = inner.cqs.get_mut(&cq_id) {
                    entry.cq.resume_after(wm);
                }
            }
        }
        Ok(())
    }

    /// Rows written by a channel so far.
    pub fn channel_rows_written(&self, channel: &str) -> Option<u64> {
        self.inner
            .lock()
            .channels
            .get(&channel.to_ascii_lowercase())
            .map(|c| c.rows_written)
    }
}

struct ProviderView<'a> {
    engine: &'a Arc<StorageEngine>,
    streams: &'a HashMap<String, BaseStream>,
    deriveds: &'a HashMap<String, Derived>,
    views: &'a HashMap<String, String>,
}

impl streamrel_sql::analyzer::SchemaProvider for ProviderView<'_> {
    fn relation(
        &self,
        name: &str,
    ) -> Option<(
        streamrel_sql::plan::SchemaRef,
        streamrel_sql::analyzer::RelKind,
    )> {
        let streams: HashMap<String, StreamDecl> = self
            .streams
            .iter()
            .map(|(k, v)| (k.clone(), v.decl.clone()))
            .collect();
        let deriveds: HashMap<String, StreamDecl> = self
            .deriveds
            .iter()
            .map(|(k, v)| (k.clone(), v.decl.clone()))
            .collect();
        let p = CatalogProvider {
            engine: self.engine,
            streams: &streams,
            deriveds: &deriveds,
            views: self.views,
        };
        streamrel_sql::analyzer::SchemaProvider::relation(&p, name)
    }
}

/// Locate the output column whose projection expression is `cq_close(*)`
/// (gives derived streams their time column for downstream time windows).
fn find_cq_close_column(plan: &LogicalPlan) -> Option<usize> {
    let top_schema = plan.schema();
    let mut found = None;
    plan.visit(&mut |p| {
        if let LogicalPlan::Project { exprs, schema, .. } = p {
            if Arc::ptr_eq(schema, &top_schema) || **schema == *top_schema {
                for (i, e) in exprs.iter().enumerate() {
                    if matches!(e, BoundExpr::CqClose) {
                        found = Some(i);
                    }
                }
            }
        }
    });
    found
}

/// User DDL may not claim the engine's `streamrel_` namespace: the virtual
/// relations (`streamrel_metrics`, `streamrel_trace`) must never be
/// shadowed by a real table or stream.
fn check_reserved(name: &str) -> Result<()> {
    if name
        .to_ascii_lowercase()
        .starts_with(streamrel_obs::RESERVED_PREFIX)
    {
        return Err(Error::catalog(format!(
            "name `{name}` uses the reserved `{}` prefix",
            streamrel_obs::RESERVED_PREFIX
        )));
    }
    Ok(())
}

fn column_defs_to_schema(columns: &[ColumnDef]) -> Result<Schema> {
    Schema::new(
        columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                ty: c.ty,
                nullable: !c.not_null,
            })
            .collect(),
    )
}

/// Rearrange INSERT values into schema order, filling omitted columns with
/// NULL.
fn reorder_columns(
    schema: &Schema,
    columns: Option<&[String]>,
    rows: Vec<Row>,
) -> Result<Vec<Row>> {
    match columns {
        None => Ok(rows),
        Some(cols) => {
            let mut positions = Vec::with_capacity(cols.len());
            for c in cols {
                positions.push(schema.index_of(c)?);
            }
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if row.len() != positions.len() {
                    return Err(Error::analysis(format!(
                        "INSERT has {} values for {} columns",
                        row.len(),
                        positions.len()
                    )));
                }
                let mut full = vec![Value::Null; schema.len()];
                for (v, &p) in row.into_iter().zip(&positions) {
                    full[p] = v;
                }
                out.push(full);
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamrel_types::row;
    use streamrel_types::time::MINUTES;

    fn db() -> Db {
        Db::in_memory(DbOptions::default())
    }

    fn setup_paper_objects(db: &Db) {
        // Paper Example 1.
        db.execute(
            "CREATE STREAM url_stream ( url varchar(1024), \
             atime timestamp CQTIME USER, client_ip varchar(50) )",
        )
        .unwrap();
        // Paper Example 3 (adjusted: cq_close aliased for the archive).
        db.execute(
            "CREATE STREAM urls_now as SELECT url, count(*) as scnt, \
             cq_close(*) as stime FROM url_stream \
             <VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP by url",
        )
        .unwrap();
        // Paper Example 4.
        db.execute(
            "CREATE TABLE urls_archive (url varchar(1024), scnt integer, \
             stime timestamp)",
        )
        .unwrap();
        db.execute("CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND")
            .unwrap();
    }

    fn click(url: &str, ts: i64) -> Row {
        row![url, Value::Timestamp(ts), "10.0.0.1"]
    }

    #[test]
    fn paper_examples_1_3_4_active_table_fills() {
        let db = db();
        setup_paper_objects(&db);
        for m in 0..3i64 {
            db.ingest("url_stream", click("/home", m * MINUTES + 1))
                .unwrap();
            db.ingest("url_stream", click("/buy", m * MINUTES + 2))
                .unwrap();
            db.ingest("url_stream", click("/home", m * MINUTES + 3))
                .unwrap();
        }
        db.heartbeat("url_stream", 3 * MINUTES).unwrap();
        // 3 windows closed, each emitting 2 groups → 6 archived rows.
        let rel = db
            .execute("SELECT url, scnt, stime FROM urls_archive ORDER BY stime, url")
            .unwrap()
            .rows();
        assert_eq!(rel.len(), 6);
        assert_eq!(rel.rows()[0], row!["/buy", 1i64, Value::Timestamp(MINUTES)]);
        assert_eq!(
            rel.rows()[1],
            row!["/home", 2i64, Value::Timestamp(MINUTES)]
        );
        // Cumulative over the sliding 5-minute window.
        assert_eq!(
            rel.rows()[5],
            row!["/home", 6i64, Value::Timestamp(3 * MINUTES)]
        );
        assert_eq!(db.stats().rows_archived, 6);
        assert_eq!(db.channel_rows_written("urls_channel"), Some(6));
    }

    #[test]
    fn active_table_is_a_regular_table() {
        let db = db();
        setup_paper_objects(&db);
        db.ingest("url_stream", click("/a", 1)).unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        // Index it, aggregate it, join it: it is just SQL (§3.3).
        db.execute("CREATE INDEX arch_by_url ON urls_archive (url)")
            .unwrap();
        let rel = db
            .execute("SELECT count(*) FROM urls_archive WHERE url = '/a'")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row![1i64]);
    }

    #[test]
    fn subscription_receives_windows() {
        let db = db();
        setup_paper_objects(&db);
        // Paper Example 2 as a client subscription.
        let sub = db
            .execute(
                "SELECT url, count(*) url_count FROM url_stream \
                 <VISIBLE '5 minutes' ADVANCE '1 minute'> \
                 GROUP by url ORDER by url_count desc LIMIT 10",
            )
            .unwrap()
            .subscription();
        db.ingest("url_stream", click("/top", 1)).unwrap();
        db.ingest("url_stream", click("/top", 2)).unwrap();
        db.ingest("url_stream", click("/other", 3)).unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        let outs = db.poll(sub).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].relation.rows()[0], row!["/top", 2i64]);
        assert!(db.poll(sub).unwrap().is_empty(), "drained");
        db.unsubscribe(sub).unwrap();
        assert!(db.poll(sub).is_err());
    }

    #[test]
    fn paper_example_5_historical_comparison() {
        let db = db();
        setup_paper_objects(&db);
        // Subscribe to the stream-table join comparing now vs 1 week ago.
        let sub = db
            .execute(
                "select c.scnt, h.scnt, c.stime from \
                 (select sum(scnt) as scnt, cq_close(*) as stime \
                  from urls_now <slices 1 windows>) c, urls_archive h \
                 where c.stime - '1 week'::interval = h.stime",
            )
            .unwrap()
            .subscription();
        // Seed last week's archive row directly (history).
        let week = streamrel_types::time::WEEKS;
        db.execute(&format!(
            "INSERT INTO urls_archive VALUES ('TOTAL', 42, '{}')",
            streamrel_types::format_timestamp(MINUTES - week)
        ))
        .unwrap();
        // Current traffic: 3 clicks in the first minute.
        for i in 0..3 {
            db.ingest("url_stream", click("/x", i + 1)).unwrap();
        }
        db.heartbeat("url_stream", MINUTES).unwrap();
        let outs = db.poll(sub).unwrap();
        assert_eq!(outs.len(), 1, "one comparison per window");
        let r = &outs[0].relation;
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.rows()[0],
            row![3i64, 42i64, Value::Timestamp(MINUTES)],
            "current=3 vs historical=42"
        );
    }

    #[test]
    fn insert_into_stream_is_ingest() {
        let db = db();
        setup_paper_objects(&db);
        db.execute("INSERT INTO url_stream VALUES ('/sql', '1970-01-01 00:00:05', '1.2.3.4')")
            .unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        let rel = db.execute("SELECT url FROM urls_archive").unwrap().rows();
        assert_eq!(rel.rows()[0], row!["/sql"]);
        assert_eq!(db.stats().tuples_in, 1);
    }

    #[test]
    fn replace_channel_keeps_latest_window_only() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        db.execute("CREATE TABLE latest (total bigint, w timestamp)")
            .unwrap();
        db.execute(
            "CREATE STREAM agg AS SELECT sum(v) total, cq_close(*) w \
             FROM s <TUMBLING '1 minute'>",
        )
        .unwrap();
        db.execute("CREATE CHANNEL ch FROM agg INTO latest REPLACE")
            .unwrap();
        db.ingest("s", row![5i64, Value::Timestamp(1)]).unwrap();
        db.heartbeat("s", MINUTES).unwrap();
        db.ingest("s", row![7i64, Value::Timestamp(MINUTES + 1)])
            .unwrap();
        db.heartbeat("s", 2 * MINUTES).unwrap();
        let rel = db.execute("SELECT total FROM latest").unwrap().rows();
        assert_eq!(rel.len(), 1, "REPLACE overwrites prior window");
        assert_eq!(rel.rows()[0], row![7i64]);
    }

    #[test]
    fn raw_channel_archives_base_stream() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        db.execute("CREATE TABLE raw (v integer, ts timestamp)")
            .unwrap();
        db.execute("CREATE CHANNEL raw_ch FROM s INTO raw APPEND")
            .unwrap();
        for i in 0..5i64 {
            db.ingest("s", row![i, Value::Timestamp(i)]).unwrap();
        }
        let rel = db.execute("SELECT count(*) FROM raw").unwrap().rows();
        assert_eq!(rel.rows()[0], row![5i64]);
    }

    #[test]
    fn cascaded_derived_streams() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        // First level: per-minute sums.
        db.execute(
            "CREATE STREAM minute_sums AS SELECT sum(v) sv, cq_close(*) w \
             FROM s <TUMBLING '1 minute'>",
        )
        .unwrap();
        // Second level: 3-minute rolling sum over the minute sums.
        db.execute(
            "CREATE STREAM rolling AS SELECT sum(sv) total, cq_close(*) w3 \
             FROM minute_sums <VISIBLE '3 minutes' ADVANCE '1 minute'>",
        )
        .unwrap();
        db.execute("CREATE TABLE out3 (total bigint, w3 timestamp)")
            .unwrap();
        db.execute("CREATE CHANNEL c3 FROM rolling INTO out3 APPEND")
            .unwrap();
        for m in 0..4i64 {
            db.ingest("s", row![m + 1, Value::Timestamp(m * MINUTES + 1)])
                .unwrap();
        }
        db.heartbeat("s", 4 * MINUTES).unwrap();
        let rel = db
            .execute("SELECT total, w3 FROM out3 ORDER BY w3")
            .unwrap()
            .rows();
        // minute sums: 1,2,3,4 at closes 1..4 min.
        // rolling(3): close 1min→1? Depends on the derived stream's time
        // window over batches: batch at close 1min has w=1min... rolling
        // windows close at 2,3,4 min with sums 1+2=3? See assertion:
        assert!(!rel.is_empty());
        // The final row must cover minutes 2..4: 2+3+4 = 9.
        let last = rel.rows().last().unwrap();
        assert_eq!(last[0], Value::Int(9));
    }

    #[test]
    fn views_over_streams_instantiate_per_subscription() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        db.execute("CREATE VIEW busy AS SELECT count(*) c FROM s <TUMBLING '1 minute'>")
            .unwrap();
        let sub = db.execute("SELECT c FROM busy").unwrap().subscription();
        db.ingest("s", row![1i64, Value::Timestamp(5)]).unwrap();
        db.heartbeat("s", MINUTES).unwrap();
        let outs = db.poll(sub).unwrap();
        assert_eq!(outs[0].relation.rows()[0], row![1i64]);
    }

    #[test]
    fn snapshot_queries_still_plain_sql() {
        let db = db();
        db.execute("CREATE TABLE t (a integer, b varchar(10))")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')")
            .unwrap();
        let rel = db
            .execute("SELECT b, count(*) c, sum(a) s FROM t GROUP BY b ORDER BY b")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row!["x", 2i64, 4i64]);
        assert_eq!(rel.rows()[1], row!["y", 1i64, 2i64]);
        let n = db.execute("DELETE FROM t WHERE b = 'x'").unwrap();
        assert!(matches!(n, ExecResult::Deleted(2)));
        let rel = db.execute("SELECT count(*) FROM t").unwrap().rows();
        assert_eq!(rel.rows()[0], row![1i64]);
    }

    #[test]
    fn insert_with_column_list_and_defaults() {
        let db = db();
        db.execute("CREATE TABLE t (a integer, b varchar(10), c float)")
            .unwrap();
        db.execute("INSERT INTO t (b, a) VALUES ('z', 9)").unwrap();
        let rel = db.execute("SELECT a, b, c FROM t").unwrap().rows();
        assert_eq!(
            rel.rows()[0],
            vec![Value::Int(9), Value::text("z"), Value::Null]
        );
    }

    #[test]
    fn name_collisions_rejected() {
        let db = db();
        db.execute("CREATE TABLE x (a integer)").unwrap();
        assert!(db
            .execute("CREATE STREAM x (v integer, ts timestamp CQTIME USER)")
            .is_err());
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        assert!(db.execute("CREATE VIEW s AS SELECT 1").is_err());
    }

    #[test]
    fn drop_order_enforced() {
        let db = db();
        setup_paper_objects(&db);
        assert!(
            db.execute("DROP STREAM urls_now").is_err(),
            "channel depends on it"
        );
        db.execute("DROP CHANNEL urls_channel").unwrap();
        db.execute("DROP STREAM urls_now").unwrap();
        db.execute("DROP STREAM url_stream").unwrap();
        assert!(db.execute("DROP STREAM url_stream").is_err());
        db.execute("DROP STREAM IF EXISTS url_stream").unwrap();
    }

    #[test]
    fn durable_recovery_resumes_cq_from_active_table() {
        let dir =
            std::env::temp_dir().join(format!("streamrel-db-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            setup_paper_objects(&db);
            for m in 0..2i64 {
                db.ingest("url_stream", click("/a", m * MINUTES + 1))
                    .unwrap();
            }
            db.heartbeat("url_stream", 2 * MINUTES).unwrap();
            let rel = db
                .execute("SELECT count(*) FROM urls_archive")
                .unwrap()
                .rows();
            assert_eq!(rel.rows()[0], row![2i64]);
            // Crash (drop without clean shutdown).
        }
        {
            let db = Db::open(&dir, DbOptions::default()).unwrap();
            // Archive survived; DDL was replayed; CQ resumed past window 2.
            let rel = db
                .execute("SELECT count(*) FROM urls_archive")
                .unwrap()
                .rows();
            assert_eq!(rel.rows()[0], row![2i64]);
            // New traffic continues where we left off — no duplicate
            // windows for minutes 1-2.
            db.ingest("url_stream", click("/a", 2 * MINUTES + 1))
                .unwrap();
            db.heartbeat("url_stream", 3 * MINUTES).unwrap();
            let rel = db
                .execute("SELECT count(*) FROM urls_archive")
                .unwrap()
                .rows();
            assert_eq!(rel.rows()[0], row![3i64], "exactly one new window row");
            let rel = db
                .execute("SELECT max(stime) FROM urls_archive")
                .unwrap()
                .rows();
            assert_eq!(rel.rows()[0], row![Value::Timestamp(3 * MINUTES)]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharing_enabled_by_default_for_aggregate_cqs() {
        let db = db();
        db.execute("CREATE STREAM s (k varchar(10), ts timestamp CQTIME USER)")
            .unwrap();
        let subs: Vec<SubscriptionId> = (0..4)
            .map(|_| {
                db.execute(
                    "SELECT k, count(*) c FROM s \
                     <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY k",
                )
                .unwrap()
                .subscription()
            })
            .collect();
        for i in 0..120i64 {
            db.ingest("s", row!["a", Value::Timestamp(i * 1_000_000)])
                .unwrap();
        }
        db.heartbeat("s", 2 * MINUTES).unwrap();
        for sub in subs {
            let outs = db.poll(sub).unwrap();
            assert_eq!(outs.len(), 2, "two windows closed");
            assert_eq!(outs[1].relation.rows()[0], row!["a", 120i64]);
        }
        // Sharing pooled all four CQs into one group.
        let inner = db.inner.lock();
        assert_eq!(inner.registry.len(), 1);
    }

    #[test]
    fn slack_reorders_and_drops_late() {
        let db = Db::in_memory(DbOptions::default().with_slack(10 * 1_000_000));
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        let sub = db
            .execute("SELECT count(*) c FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        // Slightly out of order, within 10s slack.
        for ts in [5_000_000i64, 15_000_000, 12_000_000, 30_000_000, 25_000_000] {
            db.ingest("s", row![1i64, Value::Timestamp(ts)]).unwrap();
        }
        // Very late tuple: dropped.
        db.ingest("s", row![1i64, Value::Timestamp(1_000_000)])
            .unwrap();
        db.ingest("s", row![1i64, Value::Timestamp(80_000_000)])
            .unwrap();
        db.heartbeat("s", 2 * MINUTES).unwrap();
        assert_eq!(db.stats().late_drops, 1);
        let outs = db.poll(sub).unwrap();
        // Window 1 contains the 5 in-slack tuples... those ≤ 50s released
        // when watermark passed; the 80s tuple is in window 2 but was held
        // by slack until... heartbeat doesn't flush the reorder buffer, so
        // count what arrived: window[0] has the first-minute tuples that
        // were released.
        assert!(!outs.is_empty());
        assert_eq!(outs[0].relation.rows()[0], row![5i64]);
    }

    #[test]
    fn execute_script_runs_statements_in_order() {
        let db = db();
        let results = db
            .execute_script(
                "create table t (a integer); \
                 insert into t values (1), (2); \
                 select sum(a) from t;",
            )
            .unwrap();
        assert_eq!(results.len(), 3);
        match &results[2] {
            ExecResult::Rows(r) => assert_eq!(r.rows()[0], row![3i64]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_relation_is_selectable_and_live() {
        let db = db();
        setup_paper_objects(&db);
        db.ingest("url_stream", click("/a", 1)).unwrap();
        db.ingest("url_stream", click("/b", 2)).unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        // Ordinary SELECT over the virtual relation.
        let rel = db
            .execute("SELECT value FROM streamrel_metrics WHERE name = 'db.tuples_in'")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row![2i64]);
        // Aggregation works too — it is just a relation.
        let rel = db
            .execute("SELECT count(*) FROM streamrel_metrics")
            .unwrap()
            .rows();
        let n = rel.rows()[0][0].as_int().unwrap();
        assert!(n > 5, "expected several registered instruments, got {n}");
        // It is live: more traffic moves the counter.
        db.ingest("url_stream", click("/c", MINUTES + 1)).unwrap();
        let rel = db
            .execute("SELECT value FROM streamrel_metrics WHERE name = 'db.tuples_in'")
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row![3i64]);
        // SHOW METRICS serves the identical relation (same schema + path).
        let shown = db.execute("SHOW METRICS").unwrap().rows();
        assert_eq!(**shown.schema(), streamrel_obs::metrics::metrics_schema());
        assert_eq!(shown.len(), db.metrics_relation().len());
    }

    #[test]
    fn per_cq_close_latency_histogram_populates() {
        let db = db();
        setup_paper_objects(&db);
        let sub = db
            .execute("SELECT count(*) c FROM url_stream <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        db.ingest("url_stream", click("/a", 1)).unwrap();
        db.heartbeat("url_stream", 2 * MINUTES).unwrap();
        // Both the derived-stream CQ and the subscription CQ closed
        // windows; each must have a populated latency histogram.
        let rel = db
            .execute(
                "SELECT name, value FROM streamrel_metrics \
                 WHERE kind = 'histogram' ORDER BY name",
            )
            .unwrap()
            .rows();
        let find = |n: &str| {
            rel.rows()
                .iter()
                .find(|r| r[0] == Value::text(n))
                .unwrap_or_else(|| panic!("missing histogram `{n}`"))[1]
                .as_int()
                .unwrap()
        };
        assert_eq!(find("cq.close_us.urls_now"), 2, "two windows closed");
        assert_eq!(find(&format!("cq.close_us.sub_{}", sub.0)), 2);
        db.unsubscribe(sub).unwrap();
        let rel = db
            .execute(&format!(
                "SELECT count(*) FROM streamrel_metrics \
                 WHERE name = 'cq.close_us.sub_{}'",
                sub.0
            ))
            .unwrap()
            .rows();
        assert_eq!(rel.rows()[0], row![0i64], "instrument removed with sub");
    }

    #[test]
    fn trace_relation_records_runtime_decisions() {
        let db = db();
        setup_paper_objects(&db);
        db.ingest("url_stream", click("/a", 1)).unwrap();
        db.heartbeat("url_stream", MINUTES).unwrap();
        let rel = db
            .execute("SELECT kind, scope FROM streamrel_trace WHERE kind = 'cq.close'")
            .unwrap()
            .rows();
        assert!(!rel.is_empty(), "window close must be traced");
        assert_eq!(rel.rows()[0][1], Value::text("urls_now"));
    }

    #[test]
    fn reserved_prefix_rejected_for_user_objects() {
        let db = db();
        assert!(db
            .execute("CREATE TABLE streamrel_metrics (a integer)")
            .is_err());
        assert!(db
            .execute("CREATE STREAM streamrel_s (v integer, ts timestamp CQTIME USER)")
            .is_err());
        assert!(db.execute("CREATE VIEW streamrel_v AS SELECT 1").is_err());
        assert!(db
            .execute("CREATE TABLE streamrel_anything AS SELECT 1 a")
            .is_err());
    }

    #[test]
    fn queue_depth_gauge_agrees_with_db_stats() {
        let db = db();
        db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)")
            .unwrap();
        let sub = db
            .execute("SELECT count(*) c FROM s <TUMBLING '1 minute'>")
            .unwrap()
            .subscription();
        let gauge = db.engine().metrics().gauge("db.sub_queue_depth");
        db.ingest("s", row![1i64, Value::Timestamp(1)]).unwrap();
        db.heartbeat("s", 3 * MINUTES).unwrap();
        assert_eq!(db.stats().sub_queued, 3);
        assert_eq!(gauge.get(), 3);
        db.poll(sub).unwrap();
        assert_eq!(db.stats().sub_queued, 0);
        assert_eq!(gauge.get(), 0);
        db.heartbeat("s", 4 * MINUTES).unwrap();
        db.unsubscribe(sub).unwrap();
        assert_eq!(gauge.get(), 0, "pending results leave with the sub");
    }

    #[test]
    fn derived_stream_requires_continuous_query() {
        let db = db();
        db.execute("CREATE TABLE t (a integer)").unwrap();
        let e = db
            .execute("CREATE STREAM d AS SELECT a FROM t")
            .unwrap_err();
        assert!(e.to_string().contains("continuous"), "{e}");
    }
}
