//! Client-facing continuous query results.
//!
//! A continuous `SELECT` does not return rows: it returns a
//! [`SubscriptionId`]; window results accumulate in a queue drained with
//! [`crate::Db::poll`]. This is the paper's §3.1 contract — "CQs produce
//! answers incrementally and run until they are explicitly terminated" —
//! and its §3.2 note that results of an always-on derived stream are
//! available as soon as a client reconnects.

use std::collections::VecDeque;

use streamrel_cq::CqOutput;

/// Identifies one client subscription within a [`crate::Db`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// Queue of undelivered window results for one subscription.
#[derive(Debug, Default)]
pub struct Subscription {
    queue: VecDeque<CqOutput>,
    delivered: u64,
}

impl Subscription {
    /// Append a window result.
    pub fn offer(&mut self, out: CqOutput) {
        self.queue.push_back(out);
    }

    /// Drain all queued results.
    pub fn drain(&mut self) -> Vec<CqOutput> {
        let out: Vec<CqOutput> = self.queue.drain(..).collect();
        self.delivered += out.len() as u64;
        out
    }

    /// Undelivered window count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total delivered window count.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use streamrel_types::{Column, DataType, Relation, Schema};

    #[test]
    fn queue_drains_in_order() {
        let mut s = Subscription::default();
        let schema = Arc::new(Schema::new(vec![Column::new("x", DataType::Int)]).unwrap());
        for close in [10, 20] {
            s.offer(CqOutput {
                close,
                relation: Relation::empty(schema.clone()),
            });
        }
        assert_eq!(s.pending(), 2);
        let got = s.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].close, 10);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.delivered(), 2);
    }
}
