//! Client-facing continuous query results.
//!
//! A continuous `SELECT` does not return rows: it returns a
//! [`SubscriptionId`]; window results accumulate in a queue drained with
//! [`crate::Db::poll`]. This is the paper's §3.1 contract — "CQs produce
//! answers incrementally and run until they are explicitly terminated" —
//! and its §3.2 note that results of an always-on derived stream are
//! available as soon as a client reconnects.
//!
//! The queue is **bounded**: a slow (or absent) poller cannot grow memory
//! without limit. On overflow the configured [`OverflowPolicy`] decides
//! which window result is sacrificed, and every drop is counted — both
//! per subscription and in the aggregate [`crate::DbStats`]. This is the
//! same mechanism the network server leans on for per-connection
//! backpressure.

use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use streamrel_cq::CqOutput;
use streamrel_obs::Gauge;

/// Identifies one client subscription within a [`crate::Db`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// What to do when a subscription queue is full and a new window closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Drop the oldest queued window to make room (fresh data wins).
    #[default]
    DropOldest,
    /// Drop the incoming window (history wins).
    DropNewest,
}

/// Bounded queue of undelivered items for one consumer.
///
/// The engine's subscription queues hold shared window results
/// (`Arc<CqOutput>` — one CQ output fanned out to N subscribers is
/// reference-counted, never deep-copied), but the machinery — capacity
/// bound, [`OverflowPolicy`], delivered/dropped accounting, aggregate
/// depth gauge — is item-agnostic: the network server instantiates the
/// same type over encoded frames for its per-subscriber outboxes, and
/// the client over decoded results, so every delivery stage in the
/// system shares one conservation story (delivered + dropped + pending
/// == offered).
#[derive(Debug)]
pub struct Subscription<T = Arc<CqOutput>> {
    queue: VecDeque<T>,
    capacity: usize,
    policy: OverflowPolicy,
    delivered: u64,
    dropped: u64,
    /// Aggregate depth gauge (`db.sub_queue_depth` for engine queues,
    /// `net.outbox.depth` for server outboxes). Every queue length
    /// change — enqueue, overflow drop, drain, teardown — is accounted
    /// here, inside the same critical section that mutates the queue, so
    /// the gauge can never drift from the sum of pending results even
    /// when many shards offer concurrently.
    depth_gauge: Option<Arc<Gauge>>,
}

impl<T> Default for Subscription<T> {
    fn default() -> Subscription<T> {
        Subscription::bounded(DEFAULT_SUB_CAPACITY, OverflowPolicy::default())
    }
}

/// Default queue capacity when none is configured.
pub const DEFAULT_SUB_CAPACITY: usize = 1024;

impl<T> Subscription<T> {
    /// A queue holding at most `capacity` undelivered items.
    pub fn bounded(capacity: usize, policy: OverflowPolicy) -> Subscription<T> {
        Subscription {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            policy,
            delivered: 0,
            dropped: 0,
            depth_gauge: None,
        }
    }

    /// Account this queue's length in `gauge` from now on (and release
    /// whatever is pending when the subscription is dropped).
    pub fn with_depth_gauge(mut self, gauge: Arc<Gauge>) -> Subscription<T> {
        gauge.add(self.queue.len() as i64);
        self.depth_gauge = Some(gauge);
        self
    }

    fn gauge_add(&self, delta: i64) {
        if let Some(g) = &self.depth_gauge {
            g.add(delta);
        }
    }

    /// Append an item. Returns the number of items dropped to honour the
    /// capacity bound (0 or 1).
    pub fn offer(&mut self, out: T) -> u64 {
        if self.queue.len() < self.capacity {
            self.queue.push_back(out);
            self.gauge_add(1);
            return 0;
        }
        self.dropped += 1;
        match self.policy {
            OverflowPolicy::DropOldest => {
                // -1 for the sacrificed item, +1 for the enqueued one.
                self.queue.pop_front();
                self.gauge_add(-1);
                self.queue.push_back(out);
                self.gauge_add(1);
            }
            OverflowPolicy::DropNewest => {}
        }
        1
    }

    /// Drain all queued items.
    pub fn drain(&mut self) -> Vec<T> {
        let out: Vec<T> = self.queue.drain(..).collect();
        self.gauge_add(-(out.len() as i64));
        self.delivered += out.len() as u64;
        out
    }

    /// Remove and return the oldest queued item, counting it delivered.
    pub fn pop(&mut self) -> Option<T> {
        let out = self.queue.pop_front()?;
        self.gauge_add(-1);
        self.delivered += 1;
        Some(out)
    }

    /// Undelivered item count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total delivered item count.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Items dropped on overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<T> Drop for Subscription<T> {
    fn drop(&mut self) {
        // Undelivered results leave the aggregate depth with the sub.
        self.gauge_add(-(self.queue.len() as i64));
    }
}

/// A callback invoked (without any notifier lock held) on every publish.
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// Wakes blocked pollers when any subscription receives a window result.
///
/// Two wake styles coexist:
///
/// * **Blocking** — [`ResultNotifier::wait_newer`] parks a thread on a
///   condvar until the generation advances. The embedded API and simple
///   delivery threads use this.
/// * **Readiness** — a reactor that multiplexes thousands of
///   subscriptions over a handful of sockets cannot park a thread per
///   consumer; it registers a [`Waker`] (typically `Poller::notify`)
///   with [`ResultNotifier::register_waker`] and gets called back on
///   each publish. Wakers are held weakly and pruned lazily, so a
///   departed reactor costs one dead slot, not a leak.
// lock-order: generation < sub
//
// The notifier's generation lock is never taken while holding a
// subscription queue lock. The wakers list lock is private to this
// type, never nested with any other lock (wakers run after it is
// released), and so contributes no lock-graph edges.
pub struct ResultNotifier {
    generation: Mutex<u64>,
    cv: Condvar,
    wakers: Mutex<Vec<Weak<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for ResultNotifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultNotifier")
            .field("generation", &*self.generation.lock())
            .field("wakers", &self.wakers.lock().len())
            .finish()
    }
}

impl Default for ResultNotifier {
    fn default() -> ResultNotifier {
        ResultNotifier {
            // Witness name matches the `// lock-order:` declaration above.
            generation: Mutex::named("core.generation", 0),
            cv: Condvar::new(),
            wakers: Mutex::named("core.wakers", Vec::new()),
        }
    }
}

impl ResultNotifier {
    /// Create a notifier (generation 0).
    pub fn new() -> Arc<ResultNotifier> {
        Arc::new(ResultNotifier::default())
    }

    /// The current generation; bumped every time results are published.
    pub fn generation(&self) -> u64 {
        *self.generation.lock()
    }

    /// Publish: bump the generation and wake all waiters — blocked
    /// [`ResultNotifier::wait_newer`] callers via the condvar, registered
    /// [`Waker`]s by invocation. Wakers run with no notifier lock held,
    /// so a waker may freely call back into the notifier (or into a
    /// poller whose wait loop re-reads the generation).
    pub fn notify(&self) {
        *self.generation.lock() += 1;
        self.cv.notify_all();
        let live: Vec<Waker> = {
            let mut wakers = self.wakers.lock();
            wakers.retain(|w| w.strong_count() > 0);
            wakers.iter().filter_map(Weak::upgrade).collect()
        };
        for waker in live {
            waker();
        }
    }

    /// Register `waker` to be invoked on every subsequent publish. The
    /// notifier holds it weakly: dropping the last strong reference
    /// unregisters it.
    pub fn register_waker(&self, waker: &Waker) {
        let mut wakers = self.wakers.lock();
        wakers.retain(|w| w.strong_count() > 0);
        wakers.push(Arc::downgrade(waker));
    }

    /// Block until the generation exceeds `seen` or `timeout` elapses.
    /// Returns the generation observed on wake-up. Spurious or stolen
    /// wakeups re-enter the wait with the remaining budget, so an early
    /// return really means "newer generation" or "deadline reached".
    pub fn wait_newer(&self, seen: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut gen = self.generation.lock();
        while *gen <= seen {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let _ = self.cv.wait_for(&mut gen, deadline - now);
        }
        *gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use streamrel_types::{Column, DataType, Relation, Schema};

    fn out(close: i64) -> CqOutput {
        let schema = Arc::new(Schema::new(vec![Column::new("x", DataType::Int)]).unwrap());
        CqOutput {
            close,
            relation: Relation::empty(schema),
        }
    }

    #[test]
    fn queue_drains_in_order() {
        let mut s = Subscription::default();
        for close in [10, 20] {
            assert_eq!(s.offer(out(close)), 0);
        }
        assert_eq!(s.pending(), 2);
        let got = s.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].close, 10);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn drop_oldest_keeps_freshest_windows() {
        let mut s = Subscription::bounded(2, OverflowPolicy::DropOldest);
        assert_eq!(s.offer(out(1)) + s.offer(out(2)) + s.offer(out(3)), 1);
        let got = s.drain();
        assert_eq!(
            got.iter().map(|o| o.close).collect::<Vec<_>>(),
            vec![2, 3],
            "oldest window was sacrificed"
        );
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn drop_newest_keeps_history() {
        let mut s = Subscription::bounded(2, OverflowPolicy::DropNewest);
        s.offer(out(1));
        s.offer(out(2));
        assert_eq!(s.offer(out(3)), 1);
        let got = s.drain();
        assert_eq!(got.iter().map(|o| o.close).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut s = Subscription::bounded(0, OverflowPolicy::DropOldest);
        assert_eq!(s.offer(out(1)), 0);
        assert_eq!(s.offer(out(2)), 1);
        assert_eq!(s.drain().len(), 1);
    }

    #[test]
    fn notifier_wakes_on_publish() {
        let n = ResultNotifier::new();
        let seen = n.generation();
        let n2 = n.clone();
        let t = std::thread::spawn(move || n2.wait_newer(seen, std::time::Duration::from_secs(5)));
        // Publish from this thread; the waiter must observe a newer gen.
        std::thread::sleep(std::time::Duration::from_millis(20));
        n.notify();
        assert!(t.join().unwrap() > seen);
    }

    #[test]
    fn waker_fires_on_publish_and_unregisters_on_drop() {
        let n = ResultNotifier::new();
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let waker: Waker = {
            let hits = hits.clone();
            Arc::new(move || {
                hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            })
        };
        n.register_waker(&waker);
        n.notify();
        n.notify();
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 2);
        drop(waker);
        n.notify();
        assert_eq!(
            hits.load(std::sync::atomic::Ordering::Relaxed),
            2,
            "dropped waker must not fire"
        );
    }

    #[test]
    fn notifier_times_out_quietly() {
        let n = ResultNotifier::new();
        let g = n.wait_newer(n.generation(), std::time::Duration::from_millis(10));
        assert_eq!(g, 0);
    }

    // ---- conservation: delivered + dropped + pending == offered ----------

    use proptest::prelude::*;

    proptest! {
        /// Every window offered is accounted for exactly once: delivered,
        /// dropped, or still queued — under any interleaving of offers and
        /// drains, any capacity, and both overflow policies.
        #[test]
        fn offers_are_conserved(
            capacity in 1usize..8,
            drop_newest in any::<bool>(),
            // true = offer a window, false = drain the queue.
            ops in prop::collection::vec(any::<bool>(), 0..200),
        ) {
            let policy = if drop_newest {
                OverflowPolicy::DropNewest
            } else {
                OverflowPolicy::DropOldest
            };
            let mut s = Subscription::bounded(capacity, policy);
            let mut offered = 0u64;
            for (i, op) in ops.into_iter().enumerate() {
                if op {
                    s.offer(out(i as i64));
                    offered += 1;
                } else {
                    s.drain();
                }
                prop_assert_eq!(
                    s.delivered() + s.dropped() + s.pending() as u64,
                    offered
                );
                prop_assert!(s.pending() <= capacity);
            }
        }
    }

    #[test]
    fn conservation_under_concurrent_offer_and_poll() {
        // The Db serializes access behind a mutex; model that contention
        // directly: one thread offers, one drains, both policies.
        for policy in [OverflowPolicy::DropOldest, OverflowPolicy::DropNewest] {
            let sub = Arc::new(Mutex::new(Subscription::bounded(4, policy)));
            let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
            const OFFERS: u64 = 2_000;
            let offerer = {
                let (sub, done) = (sub.clone(), done.clone());
                std::thread::spawn(move || {
                    for i in 0..OFFERS {
                        sub.lock().offer(out(i as i64));
                    }
                    done.store(true, std::sync::atomic::Ordering::Release);
                })
            };
            let drainer = {
                let (sub, done) = (sub.clone(), done.clone());
                std::thread::spawn(move || loop {
                    let finished = done.load(std::sync::atomic::Ordering::Acquire);
                    sub.lock().drain();
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                })
            };
            offerer.join().unwrap();
            drainer.join().unwrap();
            let s = sub.lock();
            assert_eq!(
                s.delivered() + s.dropped() + s.pending() as u64,
                OFFERS,
                "conservation violated under {policy:?}"
            );
        }
    }
}
