//! The streamrel database facade.
//!
//! [`Db`] is the stream-relational system of the paper: one object that
//! accepts the full TruSQL surface — tables, streams, views, derived
//! streams, channels, snapshot queries and continuous queries — and wires
//! the storage engine, executor and CQ runtime together. "A standard
//! database \[is] simply replaced by a SQL-compliant Stream-Relational
//! database system" (§4): this crate is that replacement.
//!
//! ```
//! use streamrel_core::{Db, DbOptions, ExecResult};
//!
//! let db = Db::in_memory(DbOptions::default());
//! db.execute("CREATE STREAM s (v integer, ts timestamp CQTIME USER)").unwrap();
//! db.execute("CREATE TABLE sums (total bigint, w timestamp)").unwrap();
//! db.execute("CREATE STREAM sums_now AS SELECT sum(v) total, cq_close(*) w \
//!             FROM s <TUMBLING '1 minute'>").unwrap();
//! db.execute("CREATE CHANNEL c FROM sums_now INTO sums APPEND").unwrap();
//! db.execute("INSERT INTO s VALUES (2, '1970-01-01 00:00:10')").unwrap();
//! db.execute("INSERT INTO s VALUES (3, '1970-01-01 00:00:30')").unwrap();
//! db.heartbeat("s", 60_000_000).unwrap(); // close the first window
//! let ExecResult::Rows(rel) = db.execute("SELECT total FROM sums").unwrap() else {
//!     panic!()
//! };
//! assert_eq!(rel.rows()[0][0], streamrel_types::Value::Int(5));
//! ```

#![deny(unsafe_code)]

mod csv;
mod db;
mod options;
mod provider;
mod script;
mod shard;
mod subscription;

pub use db::{Db, DbStats, ExecResult};
pub use options::DbOptions;
pub use script::split_statements;
pub use subscription::{
    OverflowPolicy, ResultNotifier, Subscription, SubscriptionId, Waker, DEFAULT_SUB_CAPACITY,
};
