//! Per-stream execution shards.
//!
//! The sharded core splits what used to be one `Mutex<Inner>` in two:
//! catalog/DDL state stays behind the `Db`'s single catalog lock, while
//! the *runtime* state of each base stream — its reorder buffer, the CQ
//! runtimes rooted at it (including those over derived streams it feeds),
//! and its channel sinks — lives in a [`Shard`] with its own lock.
//! Ingest and heartbeat on distinct streams therefore never contend; the
//! whole CQ DAG rooted at one base stream stays in one shard, so
//! propagation (`pump`) never needs a second shard's lock.
//!
//! This module holds only data; every lock acquisition happens in
//! `db.rs`, where the file-level `// lock-order:` declaration covers it.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use parking_lot::Mutex;

use streamrel_cq::{ContinuousQuery, ReorderBuffer, SharedGroup};
use streamrel_obs::Histogram;
use streamrel_sql::ast::ChannelMode;

use crate::provider::StreamDecl;
use crate::subscription::SubscriptionId;

/// Where a CQ's window results go.
pub(crate) enum Sink {
    /// Feed a derived stream's subscribers.
    Derived(String),
    /// Queue for one or more client subscriptions sharing this CQ. The
    /// first entry is the *primary* (the subscription `SELECT` returned);
    /// later entries attached via [`crate::Db::subscribe_attach`]. Each
    /// member has its own bounded queue; the CQ itself — window state,
    /// close schedule, budget — runs once regardless of membership.
    Clients(Vec<SubscriptionId>),
}

/// A running CQ plus its delivery target.
pub(crate) struct CqEntry {
    pub cq: ContinuousQuery,
    pub sink: Sink,
    /// Window-close latency (tuple arrival → result enqueued), µs. One
    /// instrument per CQ, registered as `cq.close_us.<name>`.
    pub close_hist: Arc<Histogram>,
}

/// A channel's write target, mirrored into the shard that produces its
/// rows. `rows_written` is shared with the catalog's channel definition
/// so `SHOW CHANNELS` needs no shard lock.
#[derive(Clone)]
pub(crate) struct ChannelSink {
    pub name: String,
    pub table: String,
    pub mode: ChannelMode,
    pub rows_written: Arc<AtomicU64>,
}

/// Runtime state of one base stream.
pub(crate) struct StreamRuntime {
    pub decl: StreamDecl,
    pub reorder: Option<ReorderBuffer>,
    /// CQs consuming this stream directly, in registration order.
    pub cq_ids: Vec<u64>,
    /// Channels archiving raw tuples.
    pub raw_channels: Vec<ChannelSink>,
    /// Distinct shared groups fed by this stream (mirrored from the
    /// catalog's `SharedRegistry` at share time), so the ingest hot path
    /// folds tuples without touching the catalog lock.
    pub groups: Vec<Arc<Mutex<SharedGroup>>>,
}

/// Runtime state of one derived stream (rooted at a base stream in the
/// same shard).
#[derive(Default)]
pub(crate) struct DerivedRuntime {
    pub channels: Vec<ChannelSink>,
    pub downstream_cqs: Vec<u64>,
}

/// Everything one shard's lock protects.
#[derive(Default)]
pub(crate) struct ShardState {
    pub streams: HashMap<String, StreamRuntime>,
    pub deriveds: HashMap<String, DerivedRuntime>,
    pub cqs: HashMap<u64, CqEntry>,
    /// WAL commit domain this shard's durable writes (raw archives,
    /// channel writes, watermarks) are routed to — `shard index %
    /// engine.wal_shards()`, fixed at assignment time so a shard always
    /// fsyncs the same log (DESIGN.md §13).
    pub domain: usize,
}

/// One execution shard. With `DbOptions::shards == 0` each base stream
/// owns a shard of its own; with a fixed shard count streams are assigned
/// round-robin at CREATE time.
pub(crate) struct Shard {
    pub state: Mutex<ShardState>,
}

impl Shard {
    pub fn new(domain: usize) -> Arc<Shard> {
        let shard = Shard {
            // Witness name matches db.rs's `// lock-order:` declaration.
            state: Mutex::named("core.state", ShardState::default()),
        };
        shard.state.lock().domain = domain;
        Arc::new(shard)
    }
}
