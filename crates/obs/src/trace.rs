//! Ring-buffered structured trace events.
//!
//! The CQ runtime records one event per *decision* (window close, shared
//! advance, recovery resume) — not per tuple — so the ring is a cheap,
//! bounded flight recorder. Events are dumped on demand via the
//! `streamrel_trace` virtual relation.

use std::collections::VecDeque;

use parking_lot::Mutex;

use streamrel_types::relation::schema_ref;
use streamrel_types::{Column, DataType, Relation, Row, Schema, Timestamp, Value};

/// One recorded engine decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number (never reused, survives ring eviction).
    pub seq: u64,
    /// Event class, e.g. `cq.close`, `cq.advance`, `cq.resume`.
    pub kind: String,
    /// The object the event concerns, e.g. a CQ or stream name.
    pub scope: String,
    /// Free-form detail.
    pub detail: String,
    /// Stream time the decision was made at (window close, watermark, …).
    pub ts: Timestamp,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
}

/// A fixed-capacity ring of [`TraceEvent`]s; old events are evicted as
/// new ones arrive.
pub struct TraceRing {
    inner: Mutex<Ring>,
    capacity: usize,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl TraceRing {
    /// Default number of retained events.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A ring retaining the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                next_seq: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Record an event; returns its sequence number.
    pub fn record(
        &self,
        kind: impl Into<String>,
        scope: impl Into<String>,
        detail: impl Into<String>,
        ts: Timestamp,
    ) -> u64 {
        let mut ring = self.inner.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(TraceEvent {
            seq,
            kind: kind.into(),
            scope: scope.into(),
            detail: detail.into(),
            ts,
        });
        seq
    }

    /// Copy out the retained events, oldest first.
    pub fn dump(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Snapshot as the `streamrel_trace` relation.
    pub fn to_relation(&self) -> Relation {
        let rows: Vec<Row> = self
            .dump()
            .into_iter()
            .map(|e| {
                vec![
                    Value::Int(e.seq as i64),
                    Value::text(e.kind),
                    Value::text(e.scope),
                    Value::text(e.detail),
                    Value::Timestamp(e.ts),
                ]
            })
            .collect();
        Relation::new(schema_ref(trace_schema()), rows)
    }
}

/// Schema of the `streamrel_trace` virtual relation.
pub fn trace_schema() -> Schema {
    Schema::new(vec![
        Column::not_null("seq", DataType::Int),
        Column::not_null("kind", DataType::Text),
        Column::not_null("scope", DataType::Text),
        Column::not_null("detail", DataType::Text),
        Column::not_null("ts", DataType::Timestamp),
    ])
    .expect("trace schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let ring = TraceRing::new(8);
        ring.record("cq.close", "top_urls", "close=60000000", 60_000_000);
        ring.record("cq.close", "top_urls", "close=120000000", 120_000_000);
        let events = ring.dump();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].ts, 120_000_000);
    }

    #[test]
    fn ring_evicts_oldest_but_seq_survives() {
        let ring = TraceRing::new(3);
        for i in 0..10 {
            ring.record("k", "s", format!("event {i}"), i);
        }
        let events = ring.dump();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 7);
        assert_eq!(events[2].seq, 9);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn relation_snapshot() {
        let ring = TraceRing::new(4);
        ring.record("cq.resume", "urls_now", "watermark=5", 5);
        let rel = ring.to_relation();
        assert_eq!(**rel.schema(), trace_schema());
        assert_eq!(rel.rows()[0][1], Value::text("cq.resume"));
        assert_eq!(rel.rows()[0][4], Value::Timestamp(5));
    }
}
