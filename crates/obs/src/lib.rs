//! Observability layer for the streamrel engine.
//!
//! A continuous query is *always on* (paper §2, §4): there is no batch job
//! whose completion tells you the system is healthy, so the engine itself
//! must report whether windows close on time, queues back up, and recovery
//! replayed correctly. This crate provides that substrate:
//!
//! - a lock-cheap [`Registry`] of named instruments ([`Counter`], [`Gauge`],
//!   [`Histogram`]) built on atomics — hot paths touch no locks and take at
//!   most one timestamp per event;
//! - a ring-buffered [`TraceRing`] of structured [`TraceEvent`]s recording
//!   the CQ runtime's close/advance/recovery decisions, dumpable on demand;
//! - relation builders so both surfaces are self-hosted in TruSQL: the
//!   virtual relations `streamrel_metrics` and `streamrel_trace` are
//!   ordinary `SELECT` targets (the paper's "everything is a table" stance).

#![deny(unsafe_code)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, IvmMetrics, Registry};
pub use trace::{TraceEvent, TraceRing};

use std::sync::Arc;

use streamrel_types::relation::schema_ref;
use streamrel_types::{Relation, Schema};

/// Name of the virtual relation exposing the metrics registry.
pub const METRICS_RELATION: &str = "streamrel_metrics";
/// Name of the virtual relation exposing the trace ring.
pub const TRACE_RELATION: &str = "streamrel_trace";

/// Prefix reserved for engine-provided virtual relations; user DDL may not
/// create objects under it.
pub const RESERVED_PREFIX: &str = "streamrel_";

/// True if `name` is one of the engine's virtual relations.
pub fn is_virtual_relation(name: &str) -> bool {
    name.eq_ignore_ascii_case(METRICS_RELATION) || name.eq_ignore_ascii_case(TRACE_RELATION)
}

/// Schema of a virtual relation by name, if `name` is one.
pub fn virtual_schema(name: &str) -> Option<Schema> {
    if name.eq_ignore_ascii_case(METRICS_RELATION) {
        Some(metrics::metrics_schema())
    } else if name.eq_ignore_ascii_case(TRACE_RELATION) {
        Some(trace::trace_schema())
    } else {
        None
    }
}

/// Materialize a virtual relation by name against a registry, if `name`
/// is one. This is the single scan path shared by embedded `SELECT`s, CQ
/// window plans, and the wire protocol's `Stats` frame, which is what
/// keeps the schema byte-identical across all three surfaces.
pub fn virtual_relation(name: &str, registry: &Arc<Registry>) -> Option<Relation> {
    if name.eq_ignore_ascii_case(METRICS_RELATION) {
        Some(registry.to_relation())
    } else if name.eq_ignore_ascii_case(TRACE_RELATION) {
        Some(registry.trace().to_relation())
    } else {
        None
    }
}

/// Shared handle to the metrics schema (cached per call site via `Arc`).
pub fn metrics_schema_ref() -> streamrel_types::schema::SchemaRef {
    schema_ref(metrics::metrics_schema())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_names_are_case_insensitive() {
        assert!(is_virtual_relation("STREAMREL_METRICS"));
        assert!(is_virtual_relation("streamrel_trace"));
        assert!(!is_virtual_relation("streamrel_other"));
    }

    #[test]
    fn virtual_relation_matches_virtual_schema() {
        let reg = Arc::new(Registry::new(16));
        reg.counter("a").inc();
        for name in [METRICS_RELATION, TRACE_RELATION] {
            let rel = virtual_relation(name, &reg).unwrap();
            assert_eq!(**rel.schema(), virtual_schema(name).unwrap());
        }
        assert!(virtual_relation("nope", &reg).is_none());
    }
}
