//! Lock-cheap metrics: counters, gauges, and fixed-bucket latency
//! histograms.
//!
//! Every instrument is a handful of atomics updated with `Relaxed`
//! ordering; recording an observation takes no lock and allocates
//! nothing. Registration (name → instrument) goes through a map guarded
//! by an `RwLock`, but call sites hold the returned `Arc` so the map is
//! touched once per instrument lifetime, not per event. Latency is
//! measured by taking a single `Instant` at the start of the event and
//! observing the elapsed microseconds — never wall-clock time in a hot
//! path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use streamrel_types::relation::schema_ref;
use streamrel_types::{Column, DataType, Relation, Row, Schema, Value};

use crate::trace::TraceRing;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A signed level that can rise and fall (queue depth, open connections).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtract a delta.
    pub fn sub(&self, d: i64) {
        self.v.fetch_sub(d, Ordering::Relaxed);
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i < BUCKETS-1` counts values
/// `<= 2^i` µs (so the finite range tops out at 2^30 µs ≈ 18 minutes);
/// the last bucket is the overflow.
const BUCKETS: usize = 32;

/// A fixed-bucket latency histogram over microseconds.
///
/// Buckets have power-of-two upper bounds, so quantiles are estimates
/// with at most 2× resolution error — plenty to tell a 100 µs fsync
/// from a 10 ms one, with zero allocation and no locking.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the smallest bucket whose upper bound holds `us`.
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        return 0;
    }
    // ceil(log2(us)) for us > 1.
    let idx = 64 - (us - 1).leading_zeros() as usize;
    idx.min(BUCKETS - 1)
}

impl Histogram {
    /// Record one observation, in microseconds.
    pub fn observe(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.min.fetch_min(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Record the time elapsed since `start` — the one-timestamp-per-event
    /// idiom: callers take `Instant::now()` once when the event begins.
    pub fn observe_from(&self, start: Instant) {
        self.observe(start.elapsed().as_micros() as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, µs.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (v != u64::MAX).then_some(v)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        let c = self.count();
        (c > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Estimated quantile (`q` in 0..=1): the upper bound of the bucket
    /// containing the rank-`q` observation, clamped to the recorded max.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let bound = if i < BUCKETS - 1 { 1u64 << i } else { u64::MAX };
                return Some(bound.min(self.max.load(Ordering::Relaxed)));
            }
        }
        self.max()
    }
}

/// A named instrument held by a [`Registry`].
#[derive(Debug, Clone)]
pub enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// Engine-wide instrument registry plus the trace ring.
///
/// One `Registry` is owned by the storage engine and shared (via `Arc`)
/// with every layer above it. `counter`/`gauge`/`histogram` get-or-create
/// by name; callers cache the returned `Arc` so steady-state recording
/// never touches the registry lock.
#[derive(Debug)]
pub struct Registry {
    instruments: RwLock<BTreeMap<String, Instrument>>,
    trace: TraceRing,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new(TraceRing::DEFAULT_CAPACITY)
    }
}

impl Registry {
    /// A registry whose trace ring keeps the last `trace_capacity` events.
    pub fn new(trace_capacity: usize) -> Registry {
        Registry {
            instruments: RwLock::new(BTreeMap::new()),
            trace: TraceRing::new(trace_capacity),
        }
    }

    /// The trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    fn get_or_insert<T, F, G>(&self, name: &str, get: F, make: G) -> Arc<T>
    where
        F: Fn(&Instrument) -> Option<Arc<T>>,
        G: Fn(Arc<T>) -> Instrument,
        T: Default,
    {
        if let Some(inst) = self.instruments.read().get(name) {
            if let Some(v) = get(inst) {
                return v;
            }
            panic!(
                "metrics instrument `{name}` already registered as a {}",
                inst.kind()
            );
        }
        let mut map = self.instruments.write();
        // Re-check under the write lock: another thread may have won.
        if let Some(inst) = map.get(name) {
            return get(inst).unwrap_or_else(|| {
                panic!(
                    "metrics instrument `{name}` already registered as a {}",
                    inst.kind()
                )
            });
        }
        let v = Arc::new(T::default());
        map.insert(name.to_string(), make(v.clone()));
        v
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Instrument::Counter,
        )
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Instrument::Gauge,
        )
    }

    /// Get or register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Instrument::Histogram,
        )
    }

    /// Drop the instrument named `name` (e.g. when a CQ is dropped).
    pub fn remove(&self, name: &str) {
        self.instruments.write().remove(name);
    }

    /// Drop every instrument whose name starts with `prefix` (e.g. all
    /// per-connection counters when a connection closes).
    pub fn remove_prefix(&self, prefix: &str) {
        self.instruments
            .write()
            .retain(|name, _| !name.starts_with(prefix));
    }

    /// Snapshot all instruments as the `streamrel_metrics` relation.
    pub fn to_relation(&self) -> Relation {
        let map = self.instruments.read();
        let rows: Vec<Row> = map.iter().map(|(name, inst)| row_for(name, inst)).collect();
        drop(map);
        Relation::new(schema_ref(metrics_schema()), rows)
    }
}

/// Schema of the `streamrel_metrics` virtual relation. `value` is the
/// counter total, gauge level, or histogram observation count; the
/// remaining columns are NULL except for histograms (all in µs).
pub fn metrics_schema() -> Schema {
    Schema::new(vec![
        Column::not_null("name", DataType::Text),
        Column::not_null("kind", DataType::Text),
        Column::not_null("value", DataType::Int),
        Column::new("sum", DataType::Int),
        Column::new("min", DataType::Int),
        Column::new("max", DataType::Int),
        Column::new("p50", DataType::Int),
        Column::new("p95", DataType::Int),
        Column::new("p99", DataType::Int),
    ])
    .expect("metrics schema is well-formed")
}

/// Arc-cached handles for the IVM subsystem's instruments.
///
/// Registered once per lowering decision (get-or-create, like every
/// registry access); the CQ runtime clones the per-tuple handles into
/// each lowered CQ so delta accounting never touches the registry lock.
pub struct IvmMetrics {
    /// CQs lowered to incremental view maintenance.
    pub lowered: Arc<Counter>,
    /// CQs that fell back to per-window re-evaluation.
    pub fallback: Arc<Counter>,
    /// Stream tuples folded into IVM slice state.
    pub delta_rows: Arc<Counter>,
    /// Approximate bytes of live IVM state across CQs.
    pub state_bytes: Arc<Gauge>,
}

impl IvmMetrics {
    /// Register (or re-attach to) the `ivm.*` instruments in `registry`.
    pub fn register(registry: &Registry) -> IvmMetrics {
        IvmMetrics {
            lowered: registry.counter("ivm.lowered"),
            fallback: registry.counter("ivm.fallback"),
            delta_rows: registry.counter("ivm.delta.rows"),
            state_bytes: registry.gauge("ivm.state.bytes"),
        }
    }
}

fn opt_int(v: Option<u64>) -> Value {
    match v {
        Some(v) => Value::Int(v as i64),
        None => Value::Null,
    }
}

fn row_for(name: &str, inst: &Instrument) -> Row {
    let (value, sum, min, max, p50, p95, p99) = match inst {
        Instrument::Counter(c) => (
            c.get() as i64,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ),
        Instrument::Gauge(g) => (
            g.get(),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ),
        Instrument::Histogram(h) => (
            h.count() as i64,
            Value::Int(h.sum() as i64),
            opt_int(h.min()),
            opt_int(h.max()),
            opt_int(h.quantile(0.50)),
            opt_int(h.quantile(0.95)),
            opt_int(h.quantile(0.99)),
        ),
    };
    vec![
        Value::text(name),
        Value::text(inst.kind()),
        Value::Int(value),
        sum,
        min,
        max,
        p50,
        p95,
        p99,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::default();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("g");
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn registry_returns_same_instrument() {
        let reg = Registry::default();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::default();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 30), 30);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        for us in [100u64, 200, 400, 800, 100_000] {
            h.observe(us);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 101_500);
        assert_eq!(h.min(), Some(100));
        assert_eq!(h.max(), Some(100_000));
        // p50 is the 3rd of 5 observations (400 µs) → bucket bound 512.
        assert_eq!(h.quantile(0.5), Some(512));
        // p99 lands in the top bucket, clamped to the recorded max.
        assert_eq!(h.quantile(0.99), Some(100_000));
    }

    #[test]
    fn histogram_concurrent_observations() {
        let h = Arc::new(Histogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(3999));
    }

    #[test]
    fn relation_snapshot_is_sorted_and_typed() {
        let reg = Registry::default();
        reg.counter("z.count").add(7);
        reg.gauge("a.depth").set(3);
        reg.histogram("m.lat_us").observe(50);
        let rel = reg.to_relation();
        assert_eq!(**rel.schema(), metrics_schema());
        let names: Vec<String> = rel.rows().iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["a.depth", "m.lat_us", "z.count"]);
        let hist = &rel.rows()[1];
        assert_eq!(hist[1], Value::text("histogram"));
        assert_eq!(hist[2], Value::Int(1));
        assert_eq!(hist[3], Value::Int(50));
        let counter = &rel.rows()[2];
        assert_eq!(counter[2], Value::Int(7));
        assert_eq!(counter[3], Value::Null);
    }

    #[test]
    fn remove_prefix_drops_instruments() {
        let reg = Registry::default();
        reg.counter("net.conn.1.frames_in");
        reg.counter("net.conn.1.frames_out");
        reg.counter("net.conn.2.frames_in");
        reg.remove_prefix("net.conn.1.");
        assert_eq!(reg.to_relation().len(), 1);
        reg.remove("net.conn.2.frames_in");
        assert!(reg.to_relation().is_empty());
    }
}
