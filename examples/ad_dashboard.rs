//! Ad-network spend tracking: stream-table enrichment plus a REPLACE
//! channel maintaining a "current spend" table — the paper's §6 claim that
//! stream-relational systems "support workloads that need to combine
//! streaming and table-based data, both for enriching fact data with
//! table-based dimension data and for comparing current metrics with
//! historical ones."
//!
//! Run with: `cargo run --release --example ad_dashboard`

use streamrel::types::time::MINUTES;
use streamrel::workload::AdImpressionGen;
use streamrel::{Db, DbOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Db::in_memory(DbOptions::default());
    db.execute(&AdImpressionGen::create_stream_sql("impressions"))?;

    // Dimension table: campaign budgets (updatable while CQs run; updates
    // become visible at window boundaries — window consistency, §4).
    db.execute(
        "CREATE TABLE campaign_budgets (campaign_id integer, \
         name varchar(32), budget_micros bigint)",
    )?;
    for c in 0..20 {
        db.execute(&format!(
            "INSERT INTO campaign_budgets VALUES ({c}, 'campaign-{c:02}', {})",
            // Budgets between 2 and 20 dollars for the demo window.
            2_000_000 + c as i64 * 1_000_000
        ))?;
    }

    // Per-minute spend per campaign, enriched with the budget dimension.
    db.execute(
        "CREATE STREAM spend_now AS \
         SELECT i.campaign_id, b.name, sum(i.cost_micros) spent, \
                min(b.budget_micros) budget, cq_close(*) w \
         FROM impressions <TUMBLING '1 minute'> i \
         JOIN campaign_budgets b ON i.campaign_id = b.campaign_id \
         GROUP BY i.campaign_id, b.name",
    )?;

    // Active Table in REPLACE mode: always holds the latest minute only.
    db.execute(
        "CREATE TABLE current_spend (campaign_id integer, name varchar(32), \
         spent bigint, budget bigint, w timestamp)",
    )?;
    db.execute("CREATE CHANNEL spend_ch FROM spend_now INTO current_spend REPLACE")?;

    // Cumulative history in APPEND mode alongside it.
    db.execute(
        "CREATE TABLE spend_history (campaign_id integer, name varchar(32), \
         spent bigint, budget bigint, w timestamp)",
    )?;
    db.execute("CREATE CHANNEL hist_ch FROM spend_now INTO spend_history APPEND")?;

    // Alert subscription: campaigns whose cumulative minute spend exceeds
    // half their budget.
    let alerts = db
        .execute(
            "SELECT campaign_id, name, spent, budget FROM \
             spend_now <SLICES 1 WINDOWS> WHERE spent * 2 > budget",
        )?
        .subscription();

    // Five minutes of impressions at 2k/sec event time.
    let mut gen = AdImpressionGen::new(99, 20, 0, 2_000);
    db.ingest_batch("impressions", gen.take_rows(2_000 * 60 * 5))?;
    // Punctuate only up to the generator clock: more data follows below.
    db.heartbeat("impressions", gen.clock())?;

    println!("current minute spend (REPLACE channel → latest window only):");
    let rel = db
        .execute(
            "SELECT name, spent, budget FROM current_spend \
             ORDER BY spent DESC LIMIT 5",
        )?
        .rows();
    print!("{}", rel.to_table());

    println!("\ncumulative spend vs budget (SQL over the APPEND history):");
    let rel = db
        .execute(
            "SELECT name, sum(spent) total_spent, min(budget) budget, \
             sum(spent) * 100 / min(budget) pct \
             FROM spend_history GROUP BY name \
             ORDER BY pct DESC LIMIT 5",
        )?
        .rows();
    print!("{}", rel.to_table());

    let alert_windows = db.poll(alerts)?;
    let alert_count: usize = alert_windows.iter().map(|w| w.relation.len()).sum();
    println!(
        "\nover-pace alerts fired: {alert_count} (across {} windows)",
        alert_windows.len()
    );

    // Mid-flight budget update: visible to the NEXT window (window
    // consistency), never mid-window.
    db.execute("DELETE FROM campaign_budgets WHERE campaign_id = 0")?;
    db.execute("INSERT INTO campaign_budgets VALUES (0, 'campaign-00', 99000000)")?;
    db.ingest_batch("impressions", gen.take_rows(2_000 * 30))?;
    db.heartbeat("impressions", gen.clock() + MINUTES)?;
    let rel = db
        .execute("SELECT budget FROM current_spend WHERE campaign_id = 0")?
        .rows();
    println!(
        "\nafter budget update, next window sees budget = {}",
        rel.rows()[0][0]
    );
    Ok(())
}
