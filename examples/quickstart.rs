//! Quickstart: the paper's five TruSQL examples, end to end.
//!
//! Run with: `cargo run --example quickstart`

use streamrel::types::time::MINUTES;
use streamrel::types::{format_timestamp, Value};
use streamrel::{Db, DbOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Db::in_memory(DbOptions::default());

    println!("== Example 1: CREATE STREAM (an ordered unbounded relation) ==");
    db.execute(
        "CREATE STREAM url_stream ( \
            url        varchar(1024), \
            atime      timestamp CQTIME USER, \
            client_ip  varchar(50) )",
    )?;
    println!("   created stream url_stream\n");

    println!("== Example 2: a simple continuous query (top URLs) ==");
    let top_urls = db
        .execute(
            "SELECT url, count(*) url_count \
             FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
             GROUP by url ORDER by url_count desc LIMIT 10",
        )?
        .subscription();
    println!("   subscribed; results arrive once per minute of stream time\n");

    println!("== Example 3: a derived stream (always-on CQ) ==");
    db.execute(
        "CREATE STREAM urls_now as \
         SELECT url, count(*) as scnt, cq_close(*) as stime \
         FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
         GROUP by url",
    )?;
    println!("   created derived stream urls_now\n");

    println!("== Example 4: persistence — a channel into an Active Table ==");
    db.execute(
        "CREATE TABLE urls_archive (url varchar(1024), scnt integer, \
         stime timestamp)",
    )?;
    db.execute("CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND")?;
    println!("   urls_archive is now continuously maintained\n");

    println!("== Example 5: stream-table join for historical comparison ==");
    let comparison = db
        .execute(
            "select c.scnt, h.scnt, c.stime from \
             (select sum(scnt) as scnt, cq_close(*) as stime \
              from urls_now <slices 1 windows>) c, urls_archive h \
             where c.stime - '1 week'::interval = h.stime",
        )?
        .subscription();
    println!("   subscribed to current-vs-last-week comparison\n");

    // ---- drive the system: simulate a few minutes of clicks ----
    println!("== Streaming clicks ==");
    let urls = ["/home", "/products", "/home", "/checkout", "/home"];
    for minute in 0..3i64 {
        for (i, url) in urls.iter().enumerate() {
            let ts = minute * MINUTES + (i as i64 + 1) * 1_000_000;
            db.execute(&format!(
                "INSERT INTO url_stream VALUES ('{url}', '{}', '192.168.0.{}')",
                format_timestamp(ts),
                i + 1
            ))?;
        }
    }
    // Punctuate: tell the stream that time has reached minute 3.
    db.heartbeat("url_stream", 3 * MINUTES)?;

    println!("-- Example 2 output (one relation per window close):");
    for out in db.poll(top_urls)? {
        println!("window closing at {}:", format_timestamp(out.close));
        print!("{}", out.relation.to_table());
    }

    println!("-- The Active Table is ordinary SQL (Example 4):");
    let rel = db
        .execute(
            "SELECT stime, url, scnt FROM urls_archive \
             ORDER BY stime, scnt DESC",
        )?
        .rows();
    print!("{}", rel.to_table());

    println!("-- Ad-hoc analytics over precomputed metrics, not raw data:");
    let rel = db
        .execute(
            "SELECT url, max(scnt) peak FROM urls_archive \
             GROUP BY url ORDER BY peak DESC LIMIT 3",
        )?
        .rows();
    print!("{}", rel.to_table());

    // The historical comparison emits once per window too (it joins
    // against last week's rows; none exist in this short demo).
    let history = db.poll(comparison)?;
    println!(
        "-- Example 5 emitted {} comparison windows (no data from a week \
         ago in this 3-minute demo, so each is empty)",
        history.len()
    );

    let stats = db.stats();
    println!(
        "\nstats: {} tuples in, {} windows out, {} rows archived",
        stats.tuples_in, stats.windows_out, stats.rows_archived
    );
    assert_eq!(rel.rows()[0][0], Value::text("/home"));
    Ok(())
}
