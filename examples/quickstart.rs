//! Quickstart: the paper's five TruSQL examples, end to end.
//!
//! Run embedded (in-process engine):  `cargo run --example quickstart`
//! Run over the wire protocol:        `cargo run --example quickstart -- --remote`
//!
//! Remote mode spins up a TCP server on an ephemeral port and drives the
//! exact same five examples through the blocking client — continuous
//! query results are *pushed* to the client as windows close, not
//! polled. Set `STREAMREL_ADDR` to point at an already-running
//! `streamrel-serve` instead.

use std::sync::Arc;
use std::time::Duration;

use streamrel::net::{Client, Server};
use streamrel::types::time::MINUTES;
use streamrel::types::{format_timestamp, Value};
use streamrel::{Db, DbOptions};

const EX1_DDL: &str = "CREATE STREAM url_stream ( \
    url        varchar(1024), \
    atime      timestamp CQTIME USER, \
    client_ip  varchar(50) )";

const EX2_CQ: &str = "SELECT url, count(*) url_count \
    FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
    GROUP by url ORDER by url_count desc LIMIT 10";

const EX3_DDL: &str = "CREATE STREAM urls_now as \
    SELECT url, count(*) as scnt, cq_close(*) as stime \
    FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> \
    GROUP by url";

const EX4_TABLE: &str = "CREATE TABLE urls_archive (url varchar(1024), scnt integer, \
    stime timestamp)";
const EX4_CHANNEL: &str = "CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive APPEND";

const EX5_CQ: &str = "select c.scnt, h.scnt, c.stime from \
    (select sum(scnt) as scnt, cq_close(*) as stime \
     from urls_now <slices 1 windows>) c, urls_archive h \
    where c.stime - '1 week'::interval = h.stime";

const ARCHIVE_SQL: &str = "SELECT stime, url, scnt FROM urls_archive ORDER BY stime, scnt DESC";
const PEAKS_SQL: &str =
    "SELECT url, max(scnt) peak FROM urls_archive GROUP BY url ORDER BY peak DESC LIMIT 3";

/// The demo click workload: three minutes of page views.
fn clicks() -> Vec<(String, i64)> {
    let urls = ["/home", "/products", "/home", "/checkout", "/home"];
    let mut out = Vec::new();
    for minute in 0..3i64 {
        for (i, url) in urls.iter().enumerate() {
            let ts = minute * MINUTES + (i as i64 + 1) * 1_000_000;
            out.push((
                format!(
                    "INSERT INTO url_stream VALUES ('{url}', '{}', '192.168.0.{}')",
                    format_timestamp(ts),
                    i + 1
                ),
                ts,
            ));
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--remote") {
        remote()
    } else {
        embedded()
    }
}

fn embedded() -> Result<(), Box<dyn std::error::Error>> {
    let db = Db::in_memory(DbOptions::default());

    println!("== Example 1: CREATE STREAM (an ordered unbounded relation) ==");
    db.execute(EX1_DDL)?;
    println!("   created stream url_stream\n");

    println!("== Example 2: a simple continuous query (top URLs) ==");
    let top_urls = db.execute(EX2_CQ)?.subscription();
    println!("   subscribed; results arrive once per minute of stream time\n");

    println!("== Example 3: a derived stream (always-on CQ) ==");
    db.execute(EX3_DDL)?;
    println!("   created derived stream urls_now\n");

    println!("== Example 4: persistence — a channel into an Active Table ==");
    db.execute(EX4_TABLE)?;
    db.execute(EX4_CHANNEL)?;
    println!("   urls_archive is now continuously maintained\n");

    println!("== Example 5: stream-table join for historical comparison ==");
    let comparison = db.execute(EX5_CQ)?.subscription();
    println!("   subscribed to current-vs-last-week comparison\n");

    println!("== Streaming clicks ==");
    for (sql, _) in clicks() {
        db.execute(&sql)?;
    }
    // Punctuate: tell the stream that time has reached minute 3.
    db.heartbeat("url_stream", 3 * MINUTES)?;

    println!("-- Example 2 output (one relation per window close):");
    for out in db.poll(top_urls)? {
        println!("window closing at {}:", format_timestamp(out.close));
        print!("{}", out.relation.to_table());
    }

    println!("-- The Active Table is ordinary SQL (Example 4):");
    print!("{}", db.execute(ARCHIVE_SQL)?.rows().to_table());

    println!("-- Ad-hoc analytics over precomputed metrics, not raw data:");
    let rel = db.execute(PEAKS_SQL)?.rows();
    print!("{}", rel.to_table());

    // The historical comparison emits once per window too (it joins
    // against last week's rows; none exist in this short demo).
    let history = db.poll(comparison)?;
    println!(
        "-- Example 5 emitted {} comparison windows (no data from a week \
         ago in this 3-minute demo, so each is empty)",
        history.len()
    );

    let stats = db.stats();
    println!(
        "\nstats: {} tuples in, {} windows out, {} rows archived",
        stats.tuples_in, stats.windows_out, stats.rows_archived
    );
    assert_eq!(rel.rows()[0][0], Value::text("/home"));
    Ok(())
}

fn remote() -> Result<(), Box<dyn std::error::Error>> {
    // Connect to STREAMREL_ADDR if set, else serve in-process.
    let (local, addr) = match std::env::var("STREAMREL_ADDR") {
        Ok(addr) => (None, addr),
        Err(_) => {
            let db = Arc::new(Db::in_memory(DbOptions::default()));
            let server = Server::serve(db.clone(), "127.0.0.1:0")?;
            let addr = server.local_addr().to_string();
            (Some((db, server)), addr)
        }
    };
    println!("== remote mode: wire protocol against {addr} ==\n");
    let client = Client::connect(&addr)?;

    println!("== Example 1: CREATE STREAM over the wire ==");
    client.execute(EX1_DDL)?;

    println!("== Example 2: continuous query; results are pushed ==");
    let top_urls = client.subscribe(EX2_CQ)?;

    println!("== Examples 3+4: derived stream archived via a channel ==");
    client.execute(EX3_DDL)?;
    client.execute(EX4_TABLE)?;
    client.execute(EX4_CHANNEL)?;

    println!("== Example 5: stream-table join for historical comparison ==");
    let comparison = client.subscribe(EX5_CQ)?;

    println!("\n== Streaming clicks ==");
    for (sql, _) in clicks() {
        client.execute(&sql)?;
    }
    client.heartbeat("url_stream", 3 * MINUTES)?;

    println!("-- Example 2 output (pushed over TCP as each window closes):");
    while let Some(out) = top_urls.next_timeout(Duration::from_secs(2)) {
        println!("window closing at {}:", format_timestamp(out.close));
        print!("{}", out.relation.to_table());
    }

    println!("-- The Active Table is ordinary SQL (Example 4):");
    print!("{}", client.execute(ARCHIVE_SQL)?.to_table());

    println!("-- Ad-hoc analytics over precomputed metrics, not raw data:");
    let rel = client.execute(PEAKS_SQL)?;
    print!("{}", rel.to_table());

    let mut history = 0;
    while comparison
        .next_timeout(Duration::from_millis(200))
        .is_some()
    {
        history += 1;
    }
    println!(
        "-- Example 5 pushed {history} comparison windows (no data from a \
         week ago in this 3-minute demo, so each is empty)"
    );

    assert_eq!(rel.rows()[0][0], Value::text("/home"));
    drop((top_urls, comparison));
    client.close()?;
    if let Some((db, server)) = local {
        let stats = db.stats();
        println!(
            "\nstats: {} tuples in, {} windows out, {} rows archived, \
             {} live subscriptions after close",
            stats.tuples_in, stats.windows_out, stats.rows_archived, stats.live_subs
        );
        server.shutdown();
    }
    Ok(())
}
