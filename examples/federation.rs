//! Federation quickstart: one stream, two serving nodes, one consumer.
//!
//! Run self-contained (two in-process nodes):
//! `cargo run --example federation`
//!
//! Run against two already-running `streamrel-serve` processes (the CI
//! federation-smoke lane does this):
//! `STREAMREL_NODE1=127.0.0.1:7878 STREAMREL_NODE2=127.0.0.1:7879 \
//!  cargo run --example federation`
//!
//! The paper's network-effect deployment (§1/§4) in miniature: a click
//! stream is hash-partitioned by url across two serving nodes, each
//! node runs the same per-minute count CQ over its slice, and a consumer
//! node bridges both partial streams back together — merged in
//! watermark order — and re-aggregates. The merged result is asserted
//! **byte-identical** to the same pipeline run unpartitioned in one
//! process: partitioning is a deployment choice, not a semantics change.

use std::sync::Arc;
use std::time::Duration;

use streamrel::cq::Partitioner;
use streamrel::net::{wire, Bridge, BridgeOptions, Client, Server, UnionIngest};
use streamrel::types::time::MINUTES;
use streamrel::types::{Relation, Row, Value};
use streamrel::{Db, DbOptions, ExecResult, SubscriptionId};

const NODE_DDL: &[&str] = &[
    "CREATE STREAM hits (url varchar(100), htime timestamp CQTIME USER)",
    "CREATE TABLE hit_archive (url varchar(100), scnt integer, stime timestamp)",
    "CREATE STREAM hit_partials AS SELECT url, count(*) scnt, cq_close(*) stime \
     FROM hits <TUMBLING '1 minute'> GROUP BY url ORDER BY url",
    "CREATE CHANNEL hit_chan FROM hit_partials INTO hit_archive APPEND",
];
const CONSUMER_STREAM: &str =
    "CREATE STREAM partials (url varchar(100), scnt integer, stime timestamp CQTIME USER)";
const MERGED_CQ: &str = "SELECT url, sum(scnt) total, cq_close(*) w \
     FROM partials <TUMBLING '1 minute'> GROUP BY url ORDER BY url";

const WINDOWS: i64 = 4;

/// Three pages of clicks per minute — every url shows up in every
/// window, so both partitions carry data throughout.
fn feed(w: i64) -> Vec<Row> {
    (0..12)
        .map(|i| {
            vec![
                Value::text(format!("/page{}", i % 3)),
                Value::Timestamp(w * MINUTES + i * 5_000_000),
            ]
        })
        .collect()
}

fn canonical(close: i64, relation: &Relation) -> (i64, Vec<u8>) {
    (close, wire::encode_rows(relation))
}

fn subscribe(db: &Db, sql: &str) -> SubscriptionId {
    match db.execute(sql).unwrap() {
        ExecResult::Subscribed(s) => s,
        other => panic!("expected subscription from {sql}, got {other:?}"),
    }
}

/// The unpartitioned reference: identical pipeline, one process.
fn reference() -> Vec<(i64, Vec<u8>)> {
    let producer = Db::in_memory(DbOptions::default());
    for stmt in NODE_DDL {
        producer.execute(stmt).unwrap();
    }
    let partials = producer.subscribe_stream("hit_partials").unwrap();
    let consumer = Db::in_memory(DbOptions::default());
    consumer.execute(CONSUMER_STREAM).unwrap();
    let merged = subscribe(&consumer, MERGED_CQ);
    for w in 0..WINDOWS {
        producer.ingest_batch("hits", feed(w)).unwrap();
    }
    producer.heartbeat("hits", (WINDOWS + 1) * MINUTES).unwrap();
    for out in producer.poll(partials).unwrap() {
        if !out.relation.rows().is_empty() {
            consumer
                .ingest_batch("partials", out.relation.rows().to_vec())
                .unwrap();
        }
        consumer.heartbeat("partials", out.close).unwrap();
    }
    consumer
        .poll(merged)
        .unwrap()
        .iter()
        .map(|o| canonical(o.close, &o.relation))
        .collect()
}

fn main() {
    let expect = reference();

    // Two serving nodes: external (`STREAMREL_NODE1`/`STREAMREL_NODE2`
    // pointing at running `streamrel-serve` processes) or in-process.
    let external = (
        std::env::var("STREAMREL_NODE1").ok(),
        std::env::var("STREAMREL_NODE2").ok(),
    );
    let mut local_servers: Vec<Server> = Vec::new();
    let addrs: Vec<String> = match external {
        (Some(a), Some(b)) => {
            println!("federation: external nodes {a} and {b}");
            vec![a, b]
        }
        _ => {
            println!("federation: two in-process nodes");
            (0..2)
                .map(|_| {
                    let db = Arc::new(Db::in_memory(DbOptions::default()));
                    let server = Server::serve(db, "127.0.0.1:0").expect("bind node");
                    let addr = server.local_addr().to_string();
                    local_servers.push(server);
                    addr
                })
                .collect()
        }
    };

    // Apply the node pipeline over the wire on both nodes.
    let clients: Vec<Client> = addrs
        .iter()
        .map(|a| Client::connect(a.as_str()).expect("connect node"))
        .collect();
    for client in &clients {
        for stmt in NODE_DDL {
            client.execute(stmt).expect("node DDL");
        }
    }

    // The consumer node: bridges both partition streams into one local
    // stream through a shared watermark-ordered union.
    let consumer = Arc::new(Db::in_memory(DbOptions::default()));
    consumer.execute(CONSUMER_STREAM).unwrap();
    let merged = subscribe(&consumer, MERGED_CQ);
    let union = UnionIngest::new(2);
    let bridges: Vec<Bridge> = addrs
        .iter()
        .enumerate()
        .map(|(p, addr)| {
            Bridge::start_partition(
                consumer.clone(),
                addr.clone(),
                "hit_partials",
                "partials",
                union.clone(),
                p,
                BridgeOptions::default(),
            )
            .expect("start bridge")
        })
        .collect();
    for bridge in &bridges {
        assert!(
            bridge.wait_until_up(Duration::from_secs(10)),
            "bridge never attached"
        );
    }

    // Partition the click feed by url and drive each node's slice.
    let partitioner = Partitioner::new(0, 2).unwrap();
    for w in 0..WINDOWS {
        for (client, rows) in clients.iter().zip(partitioner.split(feed(w)).unwrap()) {
            if !rows.is_empty() {
                client.ingest_batch("hits", &rows).expect("ingest");
            }
        }
    }
    // Both partitions must hear the closing watermark.
    for client in &clients {
        client
            .heartbeat("hits", (WINDOWS + 1) * MINUTES)
            .expect("heartbeat");
    }

    // Drain the merged CQ until it has produced the reference's windows.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let mut got = Vec::new();
    while got.len() < expect.len() {
        assert!(
            std::time::Instant::now() < deadline,
            "merged output stalled: {} of {} windows",
            got.len(),
            expect.len()
        );
        for out in consumer.poll(merged).unwrap() {
            println!(
                "merged window close={} ({} urls)",
                out.close,
                out.relation.len()
            );
            got.push(canonical(out.close, &out.relation));
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    assert_eq!(
        got, expect,
        "partitioned merge diverged from the unpartitioned reference"
    );
    for bridge in bridges {
        assert_eq!(bridge.reconnects(), 0, "link dropped during the demo");
        bridge.shutdown();
    }
    for client in clients {
        let _ = client.close();
    }
    for server in local_servers {
        server.shutdown();
    }
    println!(
        "federation quickstart PASS: 2-node partitioned result is \
         byte-identical to the single-node reference ({} windows)",
        expect.len()
    );
}
