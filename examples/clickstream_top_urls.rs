//! A live "top URLs" dashboard over a Zipf-skewed clickstream — the
//! paper's running example (Example 2) at realistic scale, with many
//! concurrent dashboards sharing one pass over the data (§2.2 "Jellybean
//! processing").
//!
//! Run with: `cargo run --release --example clickstream_top_urls`

use std::time::Instant;

use streamrel::types::format_timestamp;
use streamrel::workload::ClickstreamGen;
use streamrel::{Db, DbOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Db::in_memory(DbOptions::default());
    db.execute(&ClickstreamGen::create_stream_sql("url_stream"))?;

    // Sixteen dashboards watch the same stream with different windows:
    // identical grouping and aggregation, so all sixteen share one
    // slice-aggregation pass.
    let mut dashboards = Vec::new();
    for i in 0..16 {
        let visible = 1 + (i % 4); // 1..4 minute windows
        let sub = db
            .execute(&format!(
                "SELECT url, count(*) hits FROM url_stream \
                 <VISIBLE '{visible} minutes' ADVANCE '1 minute'> \
                 GROUP BY url ORDER BY hits DESC LIMIT 10"
            ))?
            .subscription();
        dashboards.push((visible, sub));
    }

    // Ten minutes of traffic at ~5k clicks/sec of event time.
    let mut gen = ClickstreamGen::new(2026, 10_000, 0, 5_000);
    let n = 5_000usize * 60 * 10;
    println!("streaming {n} clicks across 10k URLs into 16 dashboards...");
    let t = Instant::now();
    let batch = 10_000;
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(batch);
        db.ingest_batch("url_stream", gen.take_rows(take))?;
        remaining -= take;
    }
    db.heartbeat("url_stream", gen.clock() + 60_000_000)?;
    let elapsed = t.elapsed();
    println!(
        "processed in {elapsed:?} ({:.0} tuples/sec wall-clock)\n",
        n as f64 / elapsed.as_secs_f64()
    );

    // Show the final window of the first 4 dashboards.
    for (visible, sub) in dashboards.iter().take(4) {
        let outs = db.poll(*sub)?;
        let last = outs.last().expect("windows closed");
        println!(
            "dashboard VISIBLE {visible}min — window closing {}:",
            format_timestamp(last.close)
        );
        for row in last.relation.rows().iter().take(3) {
            println!("  {:<16} {}", row[0], row[1]);
        }
        println!();
    }

    let stats = db.stats();
    println!(
        "stats: {} tuples in, {} windows out (16 dashboards x ~11 closes)",
        stats.tuples_in, stats.windows_out
    );
    Ok(())
}
