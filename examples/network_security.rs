//! The paper's §4 scenario as an application: a network-security
//! reporting pipeline where a batch report over raw events is replaced by
//! a continuous query into an Active Table — "the overall architecture of
//! the solution remained unchanged; a standard database was simply
//! replaced by a SQL-compliant Stream-Relational database system."
//!
//! Run with: `cargo run --release --example network_security`

use std::time::Instant;

use streamrel::baseline::StoreFirst;
use streamrel::types::format_timestamp;
use streamrel::workload::NetsecGen;
use streamrel::{Db, DbOptions};

const EVENTS: usize = 200_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("network security reporting: batch vs continuous ({EVENTS} events)\n");

    // ---------------------------------------------------------------
    // The OLD architecture: store first, query later.
    // ---------------------------------------------------------------
    let mut store_first =
        StoreFirst::new(&NetsecGen::create_table_sql("raw_events"), "raw_events")?;
    let mut gen = NetsecGen::new(7, 5_000, 0, 10_000);
    let rows = gen.take_rows(EVENTS);
    let t = Instant::now();
    store_first.load(rows.clone())?;
    let load_time = t.elapsed();

    let report_sql = NetsecGen::report_sql("raw_events");
    let t = Instant::now();
    let batch_report = store_first.run_report(&report_sql)?;
    let batch_query_time = t.elapsed();
    println!("store-first: load {load_time:?}, report query {batch_query_time:?}");
    println!("top offender (batch): {}", batch_report.rows()[0][0]);

    // ---------------------------------------------------------------
    // The NEW architecture: the same report, continuously computed.
    // ---------------------------------------------------------------
    let db = Db::in_memory(DbOptions::default());
    db.execute(&NetsecGen::create_stream_sql("events"))?;
    db.execute(
        "CREATE TABLE deny_report (src_ip varchar(40), denies bigint, \
         total_bytes bigint, w timestamp)",
    )?;
    // One minute tumbling windows; per-window offender stats.
    db.execute(&NetsecGen::continuous_sql("events", "deny_now", "1 minute"))?;
    db.execute("CREATE CHANNEL deny_ch FROM deny_now INTO deny_report APPEND")?;

    let t = Instant::now();
    db.ingest_batch("events", rows)?;
    db.heartbeat("events", gen.clock() + 60_000_000)?;
    let ingest_time = t.elapsed();

    // The "report" is now a lookup over precomputed metrics.
    let t = Instant::now();
    let cont_report = db
        .execute(
            "SELECT src_ip, sum(denies) denies, sum(total_bytes) total_bytes \
             FROM deny_report GROUP BY src_ip ORDER BY denies DESC LIMIT 20",
        )?
        .rows();
    let lookup_time = t.elapsed();
    println!("\ncontinuous: ingest+process {ingest_time:?}, report lookup {lookup_time:?}");
    println!("top offender (continuous): {}", cont_report.rows()[0][0]);

    // Same answer, different architecture.
    assert_eq!(batch_report.rows()[0][0], cont_report.rows()[0][0]);
    assert_eq!(batch_report.rows()[0][1], cont_report.rows()[0][1]);

    let speedup = batch_query_time.as_secs_f64() / lookup_time.as_secs_f64().max(1e-9);
    println!("\nreport-latency speedup (query vs lookup): {speedup:.0}x");
    println!(
        "(the paper's §4 anecdote reports ~5 orders of magnitude at \
         warehouse scale; the gap grows with raw-data volume — see \
         benches e1/e2)"
    );

    // The per-minute report history is queryable SQL as well:
    let windows = db.execute("SELECT count(*) FROM deny_report")?.rows();
    println!(
        "\ndeny_report holds {} per-window offender rows through {}",
        windows.rows()[0][0],
        format_timestamp(gen.clock())
    );
    Ok(())
}
